package hmg

import (
	"hmg/internal/consist"
	"hmg/internal/gsim"
)

// LitmusThread is one thread of a litmus program, pinned to a CTA slot
// (slot i runs on GPM i when Slots equals the GPM count).
type LitmusThread = consist.Thread

// LitmusProgram is a small multi-threaded program for probing the
// scoped memory model.
type LitmusProgram = consist.Program

// LitmusObservation records one load's observed value.
type LitmusObservation = consist.Observation

// RunLitmus executes a litmus program on a functional (value-tracking)
// system under the given configuration and returns every load's
// observation plus the run results.
func RunLitmus(cfg Config, prog LitmusProgram) ([]LitmusObservation, *Results, error) {
	return consist.Run(gsim.Config(cfg), prog)
}

// LitmusValue extracts the value thread ti's op oi observed.
func LitmusValue(obs []LitmusObservation, ti, oi int) (uint64, bool) {
	return consist.Value(obs, ti, oi)
}
