package hmg

import (
	"hmg/internal/consist"
	"hmg/internal/gsim"
	"hmg/internal/topo"
)

// LitmusThread is one thread of a litmus program, pinned to a CTA slot
// (slot i runs on GPM i when Slots equals the GPM count).
type LitmusThread = consist.Thread

// LitmusProgram is a small multi-threaded program for probing the
// scoped memory model. Build one with NewLitmus.
type LitmusProgram = consist.Program

// LitmusObservation records one load's observed value.
type LitmusObservation = consist.Observation

// LitmusResult is a completed litmus run. Query observed values with
// Value(thread, op) and Observations().
type LitmusResult = consist.Result

// LitmusBuilder assembles a litmus program fluently:
//
//	prog := hmg.NewLitmus("mp").
//		Thread(0, storeData, releaseFlag).
//		Thread(3, acquireFlag, loadData).
//		Build()
type LitmusBuilder = consist.Builder

// NewLitmus starts a litmus program builder.
func NewLitmus(name string) *LitmusBuilder { return consist.New(name) }

// LitmusConfig is the conformance-testing configuration: a small
// 2 GPU × 2 GPM × 2 SM machine with value tracking enabled — the system
// the litmus suites and the conformance fuzzer run on.
func LitmusConfig(p Protocol) Config { return consist.SmallConfig(p) }

// RunLitmus executes a litmus program on a functional (value-tracking)
// system under the given configuration. Options apply to the underlying
// system, so a litmus run can carry the invariant checker:
//
//	res, err := hmg.RunLitmus(cfg, prog, hmg.WithInvariantChecks())
func RunLitmus(cfg Config, prog LitmusProgram, opts ...Option) (*LitmusResult, error) {
	o := buildOptions(opts)
	var attachErr error
	res, err := consist.Run(gsim.Config(cfg), prog, func(sys *gsim.System) {
		attachErr = o.apply(sys)
	})
	if err != nil {
		return nil, err
	}
	if attachErr != nil {
		return nil, attachErr
	}
	if o.checker != nil {
		if cerr := o.checker.Err(); cerr != nil {
			return res, cerr
		}
	}
	return res, nil
}

// LitmusValues extracts every value any thread of the program stores to
// addr (including 0, the initial memory value).
func LitmusValues(prog LitmusProgram, addr topo.Addr) map[uint64]bool {
	return consist.WrittenValues(prog, addr)
}
