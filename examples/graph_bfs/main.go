// graph_bfs profiles the graph workloads (bfs, mst) whose fine-grained,
// conflicting access patterns cause false sharing at the coherence
// directory's 4-line tracking granularity — the one pathology where the
// paper finds hardware coherence can cost more than hierarchical
// software coherence (Section VII-A, the mst discussion).
package main

import (
	"fmt"
	"log"

	"hmg"
)

func main() {
	for _, b := range []string{"bfs", "mst"} {
		fmt.Printf("== %s ==\n", b)
		cfg := hmg.DefaultConfig(hmg.ProtocolHMG)
		sys, err := hmg.NewSystem(cfg)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := hmg.GenerateBenchmark(b, cfg, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  cycles: %d over %d kernels\n", res.Cycles, len(res.KernelCycles))
		fmt.Printf("  stores consulting the directory:   %d\n", res.DirStoresSeen)
		fmt.Printf("  stores that hit shared data:       %d\n", res.DirStoresShared)
		fmt.Printf("  lines invalidated per such store:  %.2f   (paper Fig. 9)\n", res.InvLinesPerStore())
		fmt.Printf("  directory evictions:               %d\n", res.DirEvicts)
		fmt.Printf("  lines invalidated per eviction:    %.2f   (paper Fig. 10)\n", res.InvLinesPerDirEvict())
		fmt.Printf("  invalidation bandwidth:            %.2f GB/s (paper Fig. 11)\n", res.InvBandwidthGBs())

		// Compare the hardware protocol against hierarchical software
		// coherence, which simply writes false-shared data through
		// without invalidating.
		hw, err := hmg.Speedup(b, cfg, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		swCfg := hmg.DefaultConfig(hmg.ProtocolSWHier)
		sw, err := hmg.Speedup(b, swCfg, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  speedup: HMG %.2fx vs hierarchical SW %.2fx\n\n", hw, sw)
	}
}
