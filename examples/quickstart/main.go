// Quickstart: simulate one benchmark on the paper's Table II system
// under the HMG protocol and print the headline metrics.
package main

import (
	"fmt"
	"log"

	"hmg"
)

func main() {
	// The Table II machine: 4 GPUs × 4 GPU modules, 12MB of L2 and 12K
	// directory entries per GPU, 200 GB/s inter-GPU links at 1.3 GHz.
	cfg := hmg.DefaultConfig(hmg.ProtocolHMG)

	sys, err := hmg.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The Needleman-Wunsch benchmark: 20 dependent kernel launches over
	// a shared wavefront — the workload where hierarchical hardware
	// coherence shines (paper Fig. 8).
	tr, err := hmg.GenerateBenchmark("nw-16K", cfg, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %s under %v\n", tr.Name, cfg.Policy.Kind)
	fmt.Printf("  %d memory ops over %d kernels\n", res.Ops, len(res.KernelCycles))
	fmt.Printf("  %d cycles (%.3f ms at 1.3 GHz)\n", res.Cycles, res.Seconds*1e3)
	fmt.Printf("  L2 hit rate %.2f, inter-GPU traffic %.1f GB/s\n", res.L2HitRate(), res.InterGPUGBs())
	fmt.Printf("  invalidation traffic %.2f GB/s (paper Fig. 11 metric)\n", res.InvBandwidthGBs())

	// Normalized speedup over a system that cannot cache remote-GPU
	// data, the metric every figure of the paper reports.
	sp, err := hmg.Speedup("nw-16K", cfg, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  speedup over no-remote-caching baseline: %.2fx\n", sp)

	// The Section VII-C hardware-cost analysis.
	cost := hmg.HardwareCost(cfg)
	fmt.Printf("directory cost: %d bits/entry, %d KB per GPM (%.1f%% of the L2 slice)\n",
		cost.BitsPerEntry, cost.BytesPerGPM/1024, 100*cost.L2Fraction)
}
