// litmus demonstrates the scoped, non-multi-copy-atomic memory model on
// the functional simulator: message passing succeeds through a
// release/acquire pair at matching scope, while unsynchronized readers
// are allowed to observe stale values — the relaxation HMG exploits to
// eliminate transient states and invalidation acknowledgments.
package main

import (
	"fmt"
	"log"

	"hmg"
	"hmg/internal/trace"
)

const (
	dataAddr = 0x100
	flagAddr = 0x200
)

func run(p hmg.Protocol, scope trace.Scope, readerSlot int, delay uint32) (flag, data uint64) {
	cfg := hmg.DefaultConfig(p)
	cfg.TrackValues = true
	prog := hmg.NewLitmus("mp").
		Warmup(readerSlot, dataAddr, flagAddr).
		Thread(0,
			trace.Op{Kind: trace.Store, Addr: dataAddr, Val: 42},
			trace.Op{Kind: trace.StoreRel, Scope: scope, Addr: flagAddr, Val: 1}).
		Thread(readerSlot,
			trace.Op{Kind: trace.LoadAcq, Scope: scope, Addr: flagAddr, Gap: delay},
			trace.Op{Kind: trace.Load, Addr: dataAddr}).
		Build()
	res, err := hmg.RunLitmus(cfg, prog, hmg.WithInvariantChecks())
	if err != nil {
		log.Fatal(err)
	}
	flag, _ = res.Value(1, 0)
	data, _ = res.Value(1, 1)
	return flag, data
}

func main() {
	fmt.Println("message-passing litmus: T0 stores data=42 then release-stores flag=1;")
	fmt.Println("T1 acquire-loads flag then loads data. The reader warms stale copies first.")
	fmt.Println()
	for _, p := range []hmg.Protocol{hmg.ProtocolNHCC, hmg.ProtocolHMG, hmg.ProtocolSWHier} {
		// Late acquire: the writer's release has completed, so the
		// acquire must see flag=1 and then data=42.
		f, d := run(p, trace.ScopeSys, 12, 5_000_000)
		fmt.Printf("%-12v .sys scope, cross-GPU reader, late acquire:  flag=%d data=%d  %s\n",
			p, f, d, verdict(f == 1 && d == 42))
		f, d = run(p, trace.ScopeGPU, 1, 5_000_000)
		fmt.Printf("%-12v .gpu scope, same-GPU reader,  late acquire:  flag=%d data=%d  %s\n",
			p, f, d, verdict(f == 1 && d == 42))
		// Early race: the reader may legally observe flag=0 (and then
		// any data value) — the model is not multi-copy-atomic.
		f, d = run(p, trace.ScopeSys, 12, 0)
		fmt.Printf("%-12v .sys scope, racing reader (no guarantee):    flag=%d data=%d\n\n", p, f, d)
	}
}

func verdict(ok bool) string {
	if ok {
		return "(required: PASS)"
	}
	return "(required: FAIL!)"
}
