// rnn_sync compares all six coherence configurations on the RNN
// workloads the paper's introduction motivates: many small dependent
// kernels whose timestep-to-timestep neuron connections re-read the same
// weights, so cross-kernel cache retention — exactly what hardware
// coherence provides and bulk-invalidating software coherence destroys —
// decides performance.
package main

import (
	"fmt"
	"log"

	"hmg"
)

func main() {
	benches := []string{"RNN_FW", "RNN_DGRAD", "RNN_WGRAD", "lstm"}

	fmt.Printf("%-10s", "bench")
	for _, p := range hmg.Protocols() {
		fmt.Printf("  %12v", p)
	}
	fmt.Println()

	for _, b := range benches {
		fmt.Printf("%-10s", b)
		for _, p := range hmg.Protocols() {
			cfg := hmg.DefaultConfig(p)
			sp, err := hmg.Speedup(b, cfg, 0.5)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %11.2fx", sp)
		}
		fmt.Println()
	}
	fmt.Println("\nspeedups are normalized to the no-remote-caching baseline (paper Fig. 8).")
	fmt.Println("Hierarchical protocols coalesce each GPU's redundant remote reads at the")
	fmt.Println("GPU home node; hardware coherence additionally retains L2 contents across")
	fmt.Println("the dependent kernel launches.")
}
