package hmg

import (
	"testing"

	"hmg/internal/trace"
)

// TestTableII verifies the public default configuration matches the
// paper's Table II.
func TestTableII(t *testing.T) {
	cfg := DefaultConfig(ProtocolHMG)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if cfg.Topo.NumGPUs != 4 || cfg.Topo.GPMsPerGPU != 4 {
		t.Error("not a 4-GPU × 4-GPM system")
	}
	if got := cfg.L2Slice.CapacityBytes * cfg.Topo.GPMsPerGPU; got != 12<<20 {
		t.Errorf("L2 per GPU = %d, want 12MB", got)
	}
	if cfg.Dir.Entries != 12*1024 || cfg.Dir.GranLines != 4 {
		t.Error("directory is not 12K entries × 4 lines")
	}
	if cfg.Net.NVLinkGBs != 200 {
		t.Error("inter-GPU links are not 200 GB/s")
	}
	if cfg.FrequencyHz != 1.3e9 {
		t.Error("clock is not 1.3 GHz")
	}
	if cfg.Topo.PageSize != 2<<20 {
		t.Error("page size is not 2MB")
	}
	if cfg.Topo.LineSize != 128 {
		t.Error("line size is not 128B")
	}
}

// TestHardwareCost reproduces the Section VII-C numbers: 6 sharers, 55
// bits per entry, ~84KB per GPM, ~2.7% of the L2 slice.
func TestHardwareCost(t *testing.T) {
	rep := HardwareCost(DefaultConfig(ProtocolHMG))
	if rep.MaxSharers != 6 {
		t.Errorf("MaxSharers = %d, want 6 (M+N-2)", rep.MaxSharers)
	}
	if rep.BitsPerEntry != 55 {
		t.Errorf("BitsPerEntry = %d, want 55", rep.BitsPerEntry)
	}
	if rep.BytesPerGPM < 82*1024 || rep.BytesPerGPM > 86*1024 {
		t.Errorf("BytesPerGPM = %d, want ≈84KB", rep.BytesPerGPM)
	}
	if rep.L2Fraction < 0.025 || rep.L2Fraction > 0.029 {
		t.Errorf("L2Fraction = %.4f, want ≈2.7%%", rep.L2Fraction)
	}
}

func TestProtocols(t *testing.T) {
	ps := Protocols()
	if len(ps) != 6 {
		t.Fatalf("protocols = %d, want 6", len(ps))
	}
	for _, p := range ps {
		back, err := ParseProtocol(p.String())
		if err != nil || back != p {
			t.Errorf("ParseProtocol(%q) = %v, %v", p.String(), back, err)
		}
	}
	if _, err := ParseProtocol("bogus"); err == nil {
		t.Error("ParseProtocol accepted bogus name")
	}
}

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 20 {
		t.Fatalf("benchmark count = %d, want Table III's 20", len(bs))
	}
}

func TestGenerateBenchmark(t *testing.T) {
	cfg := DefaultConfig(ProtocolHMG)
	tr, err := GenerateBenchmark("lstm", cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateBenchmark("nope", cfg, 0.1); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestEndToEndRun(t *testing.T) {
	cfg := DefaultConfig(ProtocolHMG)
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateBenchmark("overfeat", cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Ops == 0 {
		t.Fatalf("empty results: %+v", res)
	}
	if sys.Raw() == nil {
		t.Fatal("Raw() nil")
	}
}

func TestSpeedupAPI(t *testing.T) {
	sp, err := Speedup("overfeat", DefaultConfig(ProtocolIdeal), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 {
		t.Fatalf("speedup = %v", sp)
	}
}

// TestSpeedupBaselineCanonical guards the normalization of Speedup: the
// no-remote-caching baseline runs at the Table II defaults even when the
// measured configuration carries variant options. Before the fix the
// baseline inherited the caller's config, so fields like WriteBack and
// ScatterCTAs leaked into the baseline run and skewed the reported
// speedup.
func TestSpeedupBaselineCanonical(t *testing.T) {
	const bench = "mst" // store-heavy: write-back measurably shifts its cycle count
	const scale = 0.1

	runCycles := func(cfg Config) float64 {
		sys, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := GenerateBenchmark(bench, cfg, scale)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Cycles)
	}

	cfg := DefaultConfig(ProtocolHMG)
	cfg.WriteBack = true
	baseCycles := runCycles(DefaultConfig(ProtocolNoRemoteCaching))
	want := baseCycles / runCycles(cfg)

	got, err := Speedup(bench, cfg, scale)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Speedup = %v, want %v (canonical write-through baseline)", got, want)
	}

	// The leak this guards against is observable: a baseline that
	// inherits the write-back option simulates a different machine.
	leaked := DefaultConfig(ProtocolNoRemoteCaching)
	leaked.WriteBack = true
	if leakCycles := runCycles(leaked); leakCycles == baseCycles {
		t.Fatalf("write-back no longer affects the baseline (%v cycles); pick a benchmark where the old leak was observable", leakCycles)
	}
}

func TestPublicLitmus(t *testing.T) {
	cfg := DefaultConfig(ProtocolHMG)
	prog := NewLitmus("mp").
		Thread(0,
			trace.Op{Kind: trace.Store, Addr: 0x100, Val: 9},
			trace.Op{Kind: trace.StoreRel, Scope: trace.ScopeSys, Addr: 0x200, Val: 1}).
		Thread(8,
			trace.Op{Kind: trace.LoadAcq, Scope: trace.ScopeSys, Addr: 0x200, Gap: 3_000_000},
			trace.Op{Kind: trace.Load, Addr: 0x100}).
		Build()
	res, err := RunLitmus(cfg, prog, WithInvariantChecks())
	if err != nil {
		t.Fatal(err)
	}
	if f, ok := res.Value(1, 0); !ok || f != 1 {
		t.Fatalf("flag = %v, %v", f, ok)
	}
	if d, ok := res.Value(1, 1); !ok || d != 9 {
		t.Fatalf("data = %v, %v", d, ok)
	}
}

func TestNewSystemOptions(t *testing.T) {
	cfg := LitmusConfig(ProtocolHMG)
	events := 0
	sys, err := NewSystem(cfg, WithInvariantChecks(), WithEventSink(func(Event) { events++ }))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateBenchmark("nw-16K", cfg, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(tr); err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("event sink saw no events")
	}
	if err := sys.CheckErr(); err != nil {
		t.Fatalf("invariant violations on trunk: %v", err)
	}
	if v := sys.Violations(); len(v) != 0 {
		t.Fatalf("Violations() = %d, want 0", len(v))
	}

	// Plain construction must keep working and report nothing.
	plain, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Violations() != nil || plain.CheckErr() != nil {
		t.Fatal("plain system should have no checker state")
	}
}
