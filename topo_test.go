package hmg

import (
	"strings"
	"testing"

	"hmg/internal/directory"
)

// scaleTopo reshapes a default configuration to the given spec and
// shrinks capacities so large-machine tests stay fast.
func scaleTopo(t *testing.T, p Protocol, spec string) Config {
	t.Helper()
	sp, err := ParseTopology(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(p)
	cfg.Topo = sp.Apply(cfg.Topo)
	cfg.Topo.SMsPerGPM = 2
	cfg.Topo.PageSize = 64 * 1024
	cfg.L1.CapacityBytes = 16 * 1024
	cfg.L2Slice.CapacityBytes = 64 * 1024
	cfg.Dir.Entries = 256
	cfg.TrackValues = true
	return cfg
}

// TestFlatProtocolBeyond32GPMs is the regression test for the old
// 32-bit sharer word: a flat hardware protocol on a 16x8 machine tracks
// 128 global GPM ids, which used to panic in directory.GPMBit on the
// first remote access. It must now construct, run a real trace under
// the invariant checker, and report zero violations.
func TestFlatProtocolBeyond32GPMs(t *testing.T) {
	for _, spec := range []string{"16x8", "8x8"} {
		cfg := scaleTopo(t, ProtocolNHCC, spec)
		sys, err := NewSystem(cfg, WithInvariantChecks())
		if err != nil {
			t.Fatalf("NewSystem(NHCC %s): %v", spec, err)
		}
		tr, err := GenerateBenchmark("bfs", cfg, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(tr)
		if err != nil {
			t.Fatalf("Run(NHCC %s): %v", spec, err)
		}
		if res.Cycles == 0 || res.Ops == 0 {
			t.Fatalf("NHCC %s ran nothing: %+v", spec, res)
		}
		if err := sys.CheckErr(); err != nil {
			t.Fatalf("NHCC %s invariant violations: %v", spec, err)
		}
		if testing.Short() {
			return // one machine size is enough under -short
		}
	}
}

// TestHierarchicalAt16x8 runs HMG on the largest toposcale machine
// under the checker.
func TestHierarchicalAt16x8(t *testing.T) {
	cfg := scaleTopo(t, ProtocolHMG, "16x8")
	sys, err := NewSystem(cfg, WithInvariantChecks())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := GenerateBenchmark("bfs", cfg, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(tr); err != nil {
		t.Fatal(err)
	}
	if err := sys.CheckErr(); err != nil {
		t.Fatalf("HMG 16x8 invariant violations: %v", err)
	}
}

// TestTopologyValidation pins the constructor errors that replaced the
// GPMBit panic: protocol-aware sharer-id-space checks with descriptive
// messages, and acceptance for software protocols at any shape.
func TestTopologyValidation(t *testing.T) {
	// Flat hardware beyond the id space: 4096 ids is the cap, so a
	// 128x64 machine (8192 GPMs) must be rejected by name.
	cfg := DefaultConfig(ProtocolNHCC)
	cfg.Topo.NumGPUs, cfg.Topo.GPMsPerGPU = 128, 64
	_, err := NewSystem(cfg)
	if err == nil {
		t.Fatal("flat protocol at 8192 GPMs accepted")
	}
	for _, want := range []string{"global GPM ids", "8192", "4096"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("flat-overflow error %q does not mention %q", err, want)
		}
	}

	// The same shape is fine hierarchically (each axis is in range).
	// Validate() alone — actually constructing an 8192-GPM system is
	// pointlessly slow for a validation check.
	hier := DefaultConfig(ProtocolHMG)
	hier.Topo.NumGPUs, hier.Topo.GPMsPerGPU = 128, 64
	if err := hier.Validate(); err != nil {
		t.Fatalf("HMG at 128x64 rejected: %v", err)
	}
	// ...until one axis itself overflows.
	hier.Topo.NumGPUs = directory.MaxSharerIDs + 1
	if _, err := NewSystem(hier); err == nil {
		t.Fatal("HMG with an overflowing GPU axis accepted")
	}

	// Software coherence tracks no sharers and takes any shape.
	sw := DefaultConfig(ProtocolSWHier)
	sw.Topo.NumGPUs, sw.Topo.GPMsPerGPU = directory.MaxSharerIDs+1, 2
	if err := sw.Validate(); err != nil {
		t.Fatalf("software protocol rejected by sharer-space check: %v", err)
	}
}
