#!/usr/bin/env bash
# Repo verification: build, vet, lint, full tests, a race-detector tier,
# and a protocol conformance tier.
#
# The lint tier builds cmd/hmglint and runs the full analyzer suite
# (determinism, eventemit, exhaustive, readonlyhooks) over the module;
# any finding fails the script via the tool's nonzero exit.
#
# The race tier runs the whole module at -short scale (the experiment
# suites are ~10x slower under -race) plus the full experiments package,
# which carries the concurrent campaign runner and must stay race-clean
# at full scale.
#
# The conformance tier runs the hmgcheck sweep (seeded litmus cases plus
# the benchmark suite under every protocol with the invariant checker
# attached) and a short burst of coverage-guided litmus fuzzing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== hmglint"
HMGLINT_BIN="$(mktemp -d)/hmglint"
trap 'rm -rf "$(dirname "$HMGLINT_BIN")"' EXIT
go build -o "$HMGLINT_BIN" ./cmd/hmglint
"$HMGLINT_BIN" ./...

echo "== go test"
go test ./...

echo "== go test -race (short, all packages)"
go test -race -short ./...

echo "== go test -race (full, experiments)"
go test -race ./internal/experiments/...

echo "== conformance sweep (hmgcheck)"
go run ./cmd/hmgcheck -seeds 64 -scale 0.1

echo "== litmus fuzz smoke"
go test ./internal/check -fuzz=FuzzLitmus -fuzztime=10s

echo "verify OK"
