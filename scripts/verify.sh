#!/usr/bin/env bash
# Repo verification: build, vet, lint, full tests, a race-detector tier,
# and a protocol conformance tier.
#
# The lint tier builds cmd/hmglint and runs the full analyzer suite
# (determinism, eventemit, exhaustive, hotalloc, readonlyhooks,
# speccover) over the module, both standalone and through
# `go vet -vettool` (the unitchecker protocol threads facts along
# import edges, so both paths must stay green); any finding fails the
# script via the tool's nonzero exit. The tier then proves the two
# interprocedural analyzers have teeth: in a scratch copy of the repo,
# an injected hot-path allocation and a dropped Table I spec rule must
# each fail with exit 2 naming the responsible analyzer.
#
# The race tier runs the whole module at -short scale (the experiment
# suites are ~10x slower under -race) plus the full experiments package,
# which carries the concurrent campaign runner and must stay race-clean
# at full scale.
#
# The conformance tier runs the hmgcheck sweep (seeded litmus cases plus
# the benchmark suite under every protocol with the invariant checker
# attached) and a short burst of coverage-guided litmus fuzzing.
#
# The scaling smoke tier runs one benchmark on an 8x8 machine (64
# global GPMs — past the 32-id inline sharer word, so flat NHCC runs on
# the promoted sparse sharer sets) under the invariant checker, for both
# the flat and hierarchical hardware protocols.
#
# The spec tier runs cmd/hmgspec: the machine-readable Table I is
# validated, exhaustively enumerated on the small model, and diffed
# against proto.DirCtrl — then each deliberate proto.Mutation bit is
# injected and the diff must FAIL, proving the tier has teeth.
#
# The store tier runs the persistent content-addressed result store
# (internal/resstore) through its acceptance flow at full campaign
# scope: a cold `hmgbench -fig all -scale 0.25 -cachedir` populates a
# scratch store, a warm rerun must execute zero simulations and emit
# byte-identical tables, and a deliberately truncated record must be
# re-simulated (to identical bytes again), never trusted.
#
# The perf tier runs cmd/hmgperf against the newest committed
# BENCH_*.json baseline: simulated cycles, event counts, and
# allocs/event must match exactly (the simulator is deterministic and
# the hot path is zero-alloc); wall-clock drift only warns. It reuses
# the store tier's populated -cachedir, which cross-checks every store
# record it touches against the freshly measured cycles/events — a
# second determinism tripwire.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== hmglint"
HMGLINT_BIN="$(mktemp -d)/hmglint"
trap 'rm -rf "$(dirname "$HMGLINT_BIN")"' EXIT
go build -o "$HMGLINT_BIN" ./cmd/hmglint
"$HMGLINT_BIN" ./...

echo "== go vet -vettool=hmglint"
go vet -vettool="$HMGLINT_BIN" ./...

echo "== hmglint mutation self-tests (hotalloc, speccover)"
LINT_SCRATCH="$(dirname "$HMGLINT_BIN")/scratch"
mkdir -p "$LINT_SCRATCH"
tar -c --exclude=.git . | tar -x -C "$LINT_SCRATCH"

# An allocation on a Handle hot path must be caught by hotalloc.
cat > "$LINT_SCRATCH/internal/gsim/zz_injected.go" <<'EOF'
package gsim

var zzSink []int

type zzHog struct{}

func (h *zzHog) Handle() { zzSink = append(zzSink, 1) }
EOF
set +e
LINT_OUT="$(cd "$LINT_SCRATCH" && "$HMGLINT_BIN" ./... 2>&1)"
LINT_STATUS=$?
set -e
if [ "$LINT_STATUS" -ne 2 ] || ! echo "$LINT_OUT" | grep -q "hotalloc"; then
  echo "hotalloc missed an injected hot-path allocation (exit $LINT_STATUS): the analyzer has no teeth" >&2
  echo "$LINT_OUT" >&2
  exit 1
fi
rm "$LINT_SCRATCH/internal/gsim/zz_injected.go"

# Dropping a Table I rule must leave its DirCtrl arm unlicensed.
sed -i '/State: StateV, Event: Invalidation/d' "$LINT_SCRATCH/internal/proto/spec/spec.go"
set +e
LINT_OUT="$(cd "$LINT_SCRATCH" && "$HMGLINT_BIN" ./... 2>&1)"
LINT_STATUS=$?
set -e
if [ "$LINT_STATUS" -ne 2 ] || ! echo "$LINT_OUT" | grep -q "speccover"; then
  echo "speccover missed a dropped spec rule (exit $LINT_STATUS): the analyzer has no teeth" >&2
  echo "$LINT_OUT" >&2
  exit 1
fi
rm -rf "$LINT_SCRATCH"
echo "hmglint: both injected violations caught (teeth OK)"

echo "== go test"
go test ./...

echo "== go test -race (short, all packages)"
go test -race -short ./...

echo "== go test -race (full, experiments)"
go test -race ./internal/experiments/...

echo "== Table I spec certification (hmgspec)"
HMGSPEC_BIN="$(dirname "$HMGLINT_BIN")/hmgspec"
go build -o "$HMGSPEC_BIN" ./cmd/hmgspec
"$HMGSPEC_BIN"
for bit in 1 2 4; do
  if "$HMGSPEC_BIN" -mutate "$bit" >/dev/null 2>&1; then
    echo "hmgspec -mutate $bit passed: the spec differ has no teeth" >&2
    exit 1
  fi
done
echo "hmgspec: all 3 mutation bits diverge from the spec (teeth OK)"

echo "== conformance sweep (hmgcheck)"
go run ./cmd/hmgcheck -seeds 64 -scale 0.1

echo "== scaling smoke (8x8 machine, promoted sharer sets, checker attached)"
go run ./cmd/hmgsim -bench bfs -protocol NHCC -topo 8x8 -scale 0.1 -check >/dev/null
go run ./cmd/hmgsim -bench bfs -protocol HMG -topo 8x8 -scale 0.1 -check >/dev/null
echo "scaling smoke: NHCC and HMG clean at 8x8 (64 global GPMs)"

echo "== litmus fuzz smoke"
go test ./internal/check -fuzz=FuzzLitmus -fuzztime=10s

echo "== campaign store tier (cold populate, warm serves all from disk, corruption re-simulates)"
HMGBENCH_BIN="$(dirname "$HMGLINT_BIN")/hmgbench"
go build -o "$HMGBENCH_BIN" ./cmd/hmgbench
STORE_SCRATCH="$(dirname "$HMGLINT_BIN")/store"
RESSTORE_DIR="${HMG_RESSTORE_DIR:-$STORE_SCRATCH/resstore}"
mkdir -p "$STORE_SCRATCH"
echo "store stamp: $("$HMGBENCH_BIN" -storeversion)"
"$HMGBENCH_BIN" -fig all -scale 0.25 -cachedir "$RESSTORE_DIR" -v \
  > "$STORE_SCRATCH/cold.txt" 2> "$STORE_SCRATCH/cold.log"
grep "^campaign:" "$STORE_SCRATCH/cold.log"
"$HMGBENCH_BIN" -fig all -scale 0.25 -cachedir "$RESSTORE_DIR" -v \
  > "$STORE_SCRATCH/warm.txt" 2> "$STORE_SCRATCH/warm.log"
grep "^campaign:" "$STORE_SCRATCH/warm.log"
cmp "$STORE_SCRATCH/cold.txt" "$STORE_SCRATCH/warm.txt"
if ! grep -q "^campaign: 0 unique runs" "$STORE_SCRATCH/warm.log"; then
  echo "warm campaign simulated runs the store should have served" >&2
  exit 1
fi
# A damaged record must be a miss: truncate one and the rerun must
# re-simulate exactly that run, to identical output bytes.
VICTIM="$(find "$RESSTORE_DIR" -name '*.res' | sort | head -1)"
truncate -s -1 "$VICTIM"
"$HMGBENCH_BIN" -fig all -scale 0.25 -cachedir "$RESSTORE_DIR" -v \
  > "$STORE_SCRATCH/healed.txt" 2> "$STORE_SCRATCH/healed.log"
grep "^campaign:" "$STORE_SCRATCH/healed.log"
cmp "$STORE_SCRATCH/cold.txt" "$STORE_SCRATCH/healed.txt"
if ! grep -q "^campaign: 1 unique runs" "$STORE_SCRATCH/healed.log"; then
  echo "truncated store record was not re-simulated (or took others with it)" >&2
  exit 1
fi
echo "store: warm campaign byte-identical with 0 simulations; truncated record re-simulated"

echo "== perf gate (hmgperf, cross-checked against the store)"
BENCH_BASELINE="$(ls BENCH_*.json | sort | tail -1)"
if [ -z "$BENCH_BASELINE" ]; then
  echo "no committed BENCH_*.json baseline found" >&2
  exit 1
fi
go run ./cmd/hmgperf -against "$BENCH_BASELINE" -cachedir "$RESSTORE_DIR"

echo "verify OK"
