#!/usr/bin/env bash
# Repo verification: build, vet, full tests, and a race-detector tier.
#
# The race tier runs the whole module at -short scale (the experiment
# suites are ~10x slower under -race) plus the full experiments package,
# which carries the concurrent campaign runner and must stay race-clean
# at full scale.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...

echo "== go vet"
go vet ./...

echo "== go test"
go test ./...

echo "== go test -race (short, all packages)"
go test -race -short ./...

echo "== go test -race (full, experiments)"
go test -race ./internal/experiments/...

echo "verify OK"
