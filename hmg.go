// Package hmg is a from-scratch reproduction of "HMG: Extending Cache
// Coherence Protocols Across Modern Hierarchical Multi-GPU Systems"
// (Ren, Lustig, Bolotin, Jaleel, Villa, Nellans — HPCA 2020).
//
// It provides a cycle-level simulator of hierarchical multi-GPU systems
// (GPUs composed of GPU modules, with distributed L2 slices, coherence
// directories, intra-GPU crossbars and bandwidth-limited inter-GPU
// links), six coherence configurations including the paper's HMG
// protocol, synthetic workload generators for the paper's 20-benchmark
// suite, and an experiment harness that regenerates every table and
// figure of the paper's evaluation.
//
// Quick start:
//
//	cfg := hmg.DefaultConfig(hmg.ProtocolHMG)
//	sys, _ := hmg.NewSystem(cfg)
//	tr, _ := hmg.GenerateBenchmark("nw-16K", cfg, 0.5)
//	res, _ := sys.Run(tr)
//	fmt.Printf("%d cycles, %.1f GB/s inter-GPU\n", res.Cycles, res.InterGPUGBs())
package hmg

import (
	"fmt"

	"hmg/internal/check"
	"hmg/internal/directory"
	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
	"hmg/internal/workload"
)

// Protocol selects a coherence configuration.
type Protocol = proto.Kind

// The six coherence configurations the paper compares (Section VI).
const (
	// ProtocolNoRemoteCaching disallows caching of remote-GPU data; the
	// normalization baseline of every figure.
	ProtocolNoRemoteCaching = proto.NoRemoteCache
	// ProtocolSWNonHier is conventional software coherence with scopes
	// on a flat multi-GPM system.
	ProtocolSWNonHier = proto.SWNonHier
	// ProtocolSWHier is the hierarchical software protocol.
	ProtocolSWHier = proto.SWHier
	// ProtocolNHCC is the non-hierarchical hardware protocol of
	// Section IV.
	ProtocolNHCC = proto.NHCC
	// ProtocolHMG is the paper's contribution (Section V).
	ProtocolHMG = proto.HMG
	// ProtocolIdeal is idealized caching without coherence enforcement.
	ProtocolIdeal = proto.Ideal
)

// Protocols returns all configurations in the paper's order.
func Protocols() []Protocol { return proto.Kinds() }

// ParseProtocol resolves a protocol by its display name.
func ParseProtocol(s string) (Protocol, error) { return proto.ParseKind(s) }

// Config is an alias of the simulator configuration; DefaultConfig
// reproduces Table II.
type Config = gsim.Config

// Results is an alias of the simulation results.
type Results = gsim.Results

// Trace is an alias of the executable program representation.
type Trace = trace.Trace

// Addr is a global-memory byte address.
type Addr = topo.Addr

// TopologySpec is a partial machine shape ("GxM"); see ParseTopology.
type TopologySpec = topo.Spec

// ParseTopology parses a "GxM" machine shape such as "16x8" (16 GPUs of
// 8 GPMs each). Apply the result to a configuration's Topo to reshape
// it:
//
//	cfg := hmg.DefaultConfig(hmg.ProtocolHMG)
//	sp, _ := hmg.ParseTopology("16x8")
//	cfg.Topo = sp.Apply(cfg.Topo)
func ParseTopology(s string) (TopologySpec, error) { return topo.ParseSpec(s) }

// DefaultConfig returns the paper's Table II system (4 GPUs × 4 GPMs,
// 12MB L2 and 12K directory entries per GPU, 200 GB/s inter-GPU links at
// 1.3 GHz) with 8 modeled SMs per GPM.
func DefaultConfig(p Protocol) Config { return gsim.DefaultConfig(8, p) }

// Event is one simulator protocol event (a store reaching its home, an
// invalidation delivery, a cache fill, ...). Subscribe with
// WithEventSink.
type Event = gsim.Event

// EventKind discriminates events.
type EventKind = gsim.EventKind

// The event kinds a sink may observe.
const (
	EvKernelLaunch  = gsim.EvKernelLaunch
	EvKernelDrained = gsim.EvKernelDrained
	EvLoadDone      = gsim.EvLoadDone
	EvStoreIssue    = gsim.EvStoreIssue
	EvHomeStore     = gsim.EvHomeStore
	EvGPUHomeStore  = gsim.EvGPUHomeStore
	EvAtomicApply   = gsim.EvAtomicApply
	EvInvDeliver    = gsim.EvInvDeliver
	EvInvForward    = gsim.EvInvForward
	EvFill          = gsim.EvFill
	EvL2Evict       = gsim.EvL2Evict
	EvAcquire       = gsim.EvAcquire
)

// Violation is one invariant breach reported by the conformance
// checker, with the cycle it was detected at and a trail of the events
// leading up to it.
type Violation = check.Violation

// Option configures a System at construction time.
type Option func(*sysOptions)

type sysOptions struct {
	checks  bool
	sinks   []func(Event)
	checker *check.Checker
}

// WithInvariantChecks attaches the runtime protocol-conformance checker
// (package internal/check) to the system. Detected violations are
// available through (*System).Violations after Run; RunLitmus returns
// them as an error.
func WithInvariantChecks() Option {
	return func(o *sysOptions) { o.checks = true }
}

// WithEventSink subscribes fn to the simulator's protocol event stream.
// Multiple sinks compose; sinks run synchronously on the simulated
// cycle the event occurs.
func WithEventSink(fn func(Event)) Option {
	return func(o *sysOptions) { o.sinks = append(o.sinks, fn) }
}

func buildOptions(opts []Option) *sysOptions {
	o := &sysOptions{}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

// apply wires the options into a constructed simulator: event sinks
// first, then the checker (which chains any existing sink).
func (o *sysOptions) apply(sys *gsim.System) error {
	for _, fn := range o.sinks {
		prev := sys.OnEvent
		fn := fn
		if prev == nil {
			sys.OnEvent = fn
		} else {
			sys.OnEvent = func(ev gsim.Event) { prev(ev); fn(ev) }
		}
	}
	if o.checks {
		o.checker = check.Attach(sys)
	}
	return nil
}

// System is a simulated multi-GPU machine.
type System struct {
	sys *gsim.System
	ck  *check.Checker
}

// NewSystem builds a system; the configuration is validated. Options
// attach optional instrumentation — hmg.NewSystem(cfg) alone builds the
// plain simulator:
//
//	sys, err := hmg.NewSystem(cfg, hmg.WithInvariantChecks(),
//		hmg.WithEventSink(func(ev hmg.Event) { ... }))
func NewSystem(cfg Config, opts ...Option) (*System, error) {
	s, err := gsim.New(cfg)
	if err != nil {
		return nil, err
	}
	o := buildOptions(opts)
	if err := o.apply(s); err != nil {
		return nil, err
	}
	return &System{sys: s, ck: o.checker}, nil
}

// Violations returns the invariant violations detected so far. It is
// nil unless the system was built with WithInvariantChecks.
func (s *System) Violations() []Violation {
	if s.ck == nil {
		return nil
	}
	return s.ck.Violations()
}

// CheckErr summarizes detected violations as an error (nil when checks
// are disabled or clean).
func (s *System) CheckErr() error {
	if s.ck == nil {
		return nil
	}
	return s.ck.Err()
}

// Run executes a trace to completion.
func (s *System) Run(tr *Trace) (*Results, error) { return s.sys.Run(tr) }

// Raw exposes the underlying simulator for advanced inspection (cache
// contents, DRAM values, per-link statistics).
func (s *System) Raw() *gsim.System { return s.sys }

// Benchmarks returns the Table III benchmark names in figure order.
func Benchmarks() []string { return workload.Names() }

// GenerateBenchmark synthesizes a Table III benchmark trace for the
// given configuration's topology at the given scale in (0, 1].
func GenerateBenchmark(name string, cfg Config, scale float64) (*Trace, error) {
	p, err := workload.Get(name)
	if err != nil {
		return nil, err
	}
	return p.Generate(cfg.Topo, scale), nil
}

// HardwareCost reports the Section VII-C storage analysis of an HMG
// coherence directory: bits per entry and total bytes per GPM for a
// system of the given shape.
type HardwareCostReport struct {
	MaxSharers   int // M + N - 2
	BitsPerEntry int
	BytesPerGPM  int
	L2Fraction   float64
}

// HardwareCost computes the directory storage cost for a configuration.
func HardwareCost(cfg Config) HardwareCostReport {
	const tagBits = 48
	maxSharers := cfg.Topo.GPMsPerGPU - 1 + cfg.Topo.NumGPUs - 1
	bytes := directory.StorageBytes(cfg.Dir.Entries, tagBits, maxSharers)
	return HardwareCostReport{
		MaxSharers:   maxSharers,
		BitsPerEntry: directory.StorageBits(tagBits, maxSharers),
		BytesPerGPM:  bytes,
		L2Fraction:   float64(bytes) / float64(cfg.L2Slice.CapacityBytes),
	}
}

// Speedup runs a benchmark under a protocol and under the no-caching
// baseline on fresh systems, returning baselineCycles / protocolCycles —
// the normalized speedup every figure of the paper reports.
//
// The baseline is canonicalized to the Table II defaults (the paper's
// normalization point): only the machine shape and clock carry over
// from cfg, while variant knobs such as WriteBack, ScatterCTAs,
// Policy.Downgrade, and swept capacities reset to their defaults — a
// write-back experiment is still normalized against the write-through
// no-caching baseline, exactly as the experiment harness does.
func Speedup(name string, cfg Config, scale float64) (float64, error) {
	base := gsim.DefaultConfig(cfg.Topo.SMsPerGPM, proto.NoRemoteCache)
	base.Topo = cfg.Topo
	base.FrequencyHz = cfg.FrequencyHz
	baseSys, err := NewSystem(base)
	if err != nil {
		return 0, err
	}
	tr, err := GenerateBenchmark(name, base, scale)
	if err != nil {
		return 0, err
	}
	baseRes, err := baseSys.Run(tr)
	if err != nil {
		return 0, err
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return 0, err
	}
	tr2, err := GenerateBenchmark(name, cfg, scale)
	if err != nil {
		return 0, err
	}
	res, err := sys.Run(tr2)
	if err != nil {
		return 0, err
	}
	if res.Cycles == 0 {
		return 0, fmt.Errorf("hmg: zero-cycle run")
	}
	return float64(baseRes.Cycles) / float64(res.Cycles), nil
}
