// Package engine implements the discrete-event simulation kernel that
// drives every timing model in this repository.
//
// The kernel is a single-threaded event loop over a binary heap of
// scheduled closures. Components (caches, links, DRAM partitions, SMs)
// never block; they schedule follow-up events at future cycles. Ties at
// the same cycle are broken by insertion order, which makes simulations
// fully deterministic for a given input.
//
// Cycles are the only unit of time inside a simulation. The Engine knows
// the clock frequency solely so that results can be reported in seconds
// and bandwidths in bytes per second.
package engine

import (
	"container/heap"
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in clock cycles since the
// start of the simulation.
type Cycle uint64

// MaxCycle is the largest representable simulation time. Run uses it as
// the default horizon.
const MaxCycle = Cycle(math.MaxUint64)

// Event is a unit of scheduled work. The callback runs exactly once, at
// the event's cycle.
type event struct {
	at  Cycle
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now     Cycle
	seq     uint64
	queue   eventHeap
	freqHz  float64
	stopped bool

	// Executed counts events that have run, for speed reporting.
	Executed uint64
}

// DefaultFrequencyHz is the 1.3 GHz GPU clock from Table II of the paper.
const DefaultFrequencyHz = 1.3e9

// New returns an Engine with the given clock frequency in Hz. A
// non-positive frequency falls back to DefaultFrequencyHz.
func New(freqHz float64) *Engine {
	if freqHz <= 0 {
		freqHz = DefaultFrequencyHz
	}
	return &Engine{freqHz: freqHz}
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// FrequencyHz returns the simulated clock frequency.
func (e *Engine) FrequencyHz() float64 { return e.freqHz }

// Seconds converts a cycle count to wall-clock seconds at the simulated
// frequency.
func (e *Engine) Seconds(c Cycle) float64 { return float64(c) / e.freqHz }

// Cycles converts a duration in seconds to a whole number of cycles,
// rounding up so that a non-zero duration never becomes zero cycles.
func (e *Engine) Cycles(seconds float64) Cycle {
	if seconds <= 0 {
		return 0
	}
	return Cycle(math.Ceil(seconds * e.freqHz))
}

// Schedule runs fn after delay cycles. A zero delay runs fn later in the
// current cycle, after all previously scheduled work for this cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("engine: Schedule called with nil callback")
	}
	at := e.now + delay
	if at < e.now {
		panic(fmt.Sprintf("engine: schedule overflow at cycle %d + %d", e.now, delay))
	}
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn})
}

// ScheduleAt runs fn at the absolute cycle at, which must not be in the
// past.
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("engine: ScheduleAt(%d) in the past (now %d)", at, e.now))
	}
	e.Schedule(at-e.now, fn)
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// Stop makes the current Run call return after the in-flight event
// completes. It may be called from inside an event callback.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains, Stop is
// called, or the next event would be after horizon. It returns the
// simulation time at exit.
func (e *Engine) Run(horizon Cycle) Cycle {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > horizon {
			break
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		e.Executed++
		ev.fn()
	}
	return e.now
}

// Drain runs the queue to exhaustion with no horizon.
func (e *Engine) Drain() Cycle { return e.Run(MaxCycle) }
