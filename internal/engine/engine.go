// Package engine implements the discrete-event simulation kernel that
// drives every timing model in this repository.
//
// The kernel is a single-threaded event loop over a monomorphic 4-ary
// min-heap of scheduled callbacks, stored as a flat []event value slice
// (no per-event heap object, no interface boxing). Components (caches,
// links, DRAM partitions, SMs) never block; they schedule follow-up
// events at future cycles. Ties at the same cycle are broken by
// insertion order (a monotone sequence number), which makes simulations
// fully deterministic for a given input.
//
// Steady-state scheduling is allocation-free: the event slice is grown
// once and reused, and hot callers can avoid closure allocation
// entirely by scheduling a reusable Handler (see ScheduleHandler) drawn
// from their own free list.
//
// Cycles are the only unit of time inside a simulation. The Engine knows
// the clock frequency solely so that results can be reported in seconds
// and bandwidths in bytes per second.
package engine

import (
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in clock cycles since the
// start of the simulation.
type Cycle uint64

// MaxCycle is the largest representable simulation time. Run uses it as
// the default horizon.
const MaxCycle = Cycle(math.MaxUint64)

// Handler is a reusable scheduled callback. Hot paths that would
// otherwise allocate a fresh closure per scheduled hop implement Handle
// on a pooled context struct and pass it to ScheduleHandler: a pointer
// in an interface value schedules without any heap allocation.
type Handler interface {
	Handle()
}

// event is a unit of scheduled work, stored by value in the queue. The
// callback runs exactly once, at the event's cycle: h.Handle() when a
// Handler was scheduled, fn() otherwise.
type event struct {
	at  Cycle
	seq uint64
	fn  func()
	h   Handler
}

// before is the strict ordering of the event queue: time, then
// insertion order within a cycle (same-cycle FIFO).
func (ev *event) before(other *event) bool {
	if ev.at != other.at {
		return ev.at < other.at
	}
	return ev.seq < other.seq
}

// eventQueue is a 4-ary min-heap over event values. A 4-ary layout
// halves the tree depth of a binary heap, trading a slightly wider
// min-child scan (cheap: the children share a cache line or two) for
// fewer levels of sift memory traffic — the classic d-ary heap tradeoff
// that favors push/pop-heavy discrete-event loops. The backing slice is
// the event free list: pops shrink the length but keep capacity, so a
// warmed-up queue never allocates again.
type eventQueue struct {
	evs []event
}

func (q *eventQueue) len() int { return len(q.evs) }

// push appends ev and restores the heap order by sifting it up.
//
//lint:allow hotalloc free-list append; growth is amortized and the backing array is reused in steady state
func (q *eventQueue) push(ev event) {
	q.evs = append(q.evs, ev)
	i := len(q.evs) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.evs[i].before(&q.evs[parent]) {
			break
		}
		q.evs[i], q.evs[parent] = q.evs[parent], q.evs[i]
		i = parent
	}
}

// pop removes and returns the minimum event. The vacated tail slot is
// zeroed so the queue never pins dead closures or contexts for the
// garbage collector.
func (q *eventQueue) pop() event {
	root := q.evs[0]
	n := len(q.evs) - 1
	q.evs[0] = q.evs[n]
	q.evs[n] = event{}
	q.evs = q.evs[:n]
	if n > 1 {
		q.siftDown(0)
	}
	return root
}

// siftDown restores heap order below index i.
func (q *eventQueue) siftDown(i int) {
	n := len(q.evs)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.evs[c].before(&q.evs[min]) {
				min = c
			}
		}
		if !q.evs[min].before(&q.evs[i]) {
			return
		}
		q.evs[i], q.evs[min] = q.evs[min], q.evs[i]
		i = min
	}
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// New.
type Engine struct {
	now     Cycle
	seq     uint64
	queue   eventQueue
	freqHz  float64
	stopped bool

	// Executed counts events that have run, for speed reporting.
	Executed uint64
}

// DefaultFrequencyHz is the 1.3 GHz GPU clock from Table II of the paper.
const DefaultFrequencyHz = 1.3e9

// New returns an Engine with the given clock frequency in Hz. A
// non-positive frequency falls back to DefaultFrequencyHz.
func New(freqHz float64) *Engine {
	if freqHz <= 0 {
		freqHz = DefaultFrequencyHz
	}
	return &Engine{freqHz: freqHz}
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// FrequencyHz returns the simulated clock frequency.
func (e *Engine) FrequencyHz() float64 { return e.freqHz }

// Seconds converts a cycle count to wall-clock seconds at the simulated
// frequency.
func (e *Engine) Seconds(c Cycle) float64 { return float64(c) / e.freqHz }

// Cycles converts a duration in seconds to a whole number of cycles,
// rounding up so that a non-zero duration never becomes zero cycles.
func (e *Engine) Cycles(seconds float64) Cycle {
	if seconds <= 0 {
		return 0
	}
	return Cycle(math.Ceil(seconds * e.freqHz))
}

// Schedule runs fn after delay cycles. A zero delay runs fn later in the
// current cycle, after all previously scheduled work for this cycle.
func (e *Engine) Schedule(delay Cycle, fn func()) {
	if fn == nil {
		panic("engine: Schedule called with nil callback")
	}
	e.seq++
	e.queue.push(event{at: e.deadline(delay), seq: e.seq, fn: fn})
}

// ScheduleHandler runs h.Handle() after delay cycles, with the same
// ordering semantics as Schedule. Unlike Schedule, it performs no heap
// allocation when h is a pooled pointer context, which makes it the
// scheduling path for per-hop continuations in the simulator core.
func (e *Engine) ScheduleHandler(delay Cycle, h Handler) {
	if h == nil {
		panic("engine: ScheduleHandler called with nil handler")
	}
	e.seq++
	e.queue.push(event{at: e.deadline(delay), seq: e.seq, h: h})
}

// deadline converts a delay to an absolute cycle, panicking on overflow.
func (e *Engine) deadline(delay Cycle) Cycle {
	at := e.now + delay
	if at < e.now {
		panic(fmt.Sprintf("engine: schedule overflow at cycle %d + %d", e.now, delay))
	}
	return at
}

// ScheduleAt runs fn at the absolute cycle at, which must not be in the
// past.
func (e *Engine) ScheduleAt(at Cycle, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("engine: ScheduleAt(%d) in the past (now %d)", at, e.now))
	}
	e.Schedule(at-e.now, fn)
}

// ScheduleHandlerAt runs h.Handle() at the absolute cycle at, which must
// not be in the past.
func (e *Engine) ScheduleHandlerAt(at Cycle, h Handler) {
	if at < e.now {
		panic(fmt.Sprintf("engine: ScheduleHandlerAt(%d) in the past (now %d)", at, e.now))
	}
	e.ScheduleHandler(at-e.now, h)
}

// Pending reports the number of events waiting in the queue.
func (e *Engine) Pending() int { return e.queue.len() }

// Stop makes the engine's Run loop return after the in-flight event
// completes. Stop is sticky until observed: if no Run is in flight, the
// next Run call returns immediately without executing anything. The Run
// call that observes the stop consumes it, so subsequent Run calls
// resume normally.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains, Stop is
// observed, or the next event would be after horizon. It returns the
// simulation time at exit:
//
//   - horizon exit: now has advanced to horizon (idle tail included), so
//     callers deriving elapsed time from the return value see the whole
//     window they asked for;
//   - queue drained: now is the time of the last executed event — no
//     further work exists, so simulated time stops with it (Drain
//     depends on this: a MaxCycle horizon must not teleport the clock);
//   - Stop observed: now is the time of the stopping event (or unchanged
//     for a stop pending at entry), and the stop is consumed.
func (e *Engine) Run(horizon Cycle) Cycle {
	for !e.stopped {
		if e.queue.len() == 0 {
			return e.now
		}
		if e.queue.evs[0].at > horizon {
			if horizon > e.now {
				e.now = horizon
			}
			return e.now
		}
		ev := e.queue.pop()
		e.now = ev.at
		e.Executed++
		if ev.h != nil {
			ev.h.Handle()
		} else {
			ev.fn()
		}
	}
	e.stopped = false // the stop is consumed by the Run that observed it
	return e.now
}

// Drain runs the queue to exhaustion with no horizon.
func (e *Engine) Drain() Cycle { return e.Run(MaxCycle) }
