package engine

// Queue-equivalence property tests: the optimized 4-ary value heap must
// execute events in exactly the order the original container/heap
// implementation did — nondecreasing time, same-cycle FIFO by insertion
// sequence — across random schedules, nested scheduling, Stop
// interleavings, and horizon-bounded runs. The reference implementation
// below is the pre-optimization queue, kept verbatim (boxed *refEvent,
// stdlib heap) as the executable specification of the ordering
// contract.

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refEvent / refHeap are the original boxed-pointer event queue.
type refEvent struct {
	at  Cycle
	seq uint64
	id  int
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }

func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *refHeap) Push(x any) { *h = append(*h, x.(*refEvent)) }

func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// refQueue drives refHeap with the same schedule/pop API shape the
// Engine's queue has, assigning sequence numbers on push.
type refQueue struct {
	h   refHeap
	seq uint64
}

func (q *refQueue) push(at Cycle, id int) {
	q.seq++
	heap.Push(&q.h, &refEvent{at: at, seq: q.seq, id: id})
}

func (q *refQueue) pop() *refEvent {
	return heap.Pop(&q.h).(*refEvent)
}

// TestQueueMatchesReferenceHeap feeds identical random push/pop streams
// to the optimized queue and the reference heap and requires identical
// pop order, including same-cycle FIFO ties (many pushes share a cycle
// by construction).
func TestQueueMatchesReferenceHeap(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		var opt eventQueue
		var ref refQueue
		var optSeq uint64
		nextID := 0
		push := func(at Cycle) {
			optSeq++
			// The optimized queue carries its payload in the Handler slot;
			// idHandler lets us read back which logical event popped.
			opt.push(event{at: at, seq: optSeq, h: idHandler(nextID)})
			ref.push(at, nextID)
			nextID++
		}
		for step := 0; step < 2000; step++ {
			switch {
			case opt.len() > 0 && rng.Intn(3) == 0:
				got := opt.pop()
				want := ref.pop()
				if got.at != want.at || int(got.h.(idHandler)) != want.id {
					t.Fatalf("trial %d step %d: pop mismatch: optimized (at=%d id=%d), reference (at=%d id=%d)",
						trial, step, got.at, int(got.h.(idHandler)), want.at, want.id)
				}
			default:
				// Cluster cycles heavily so ties are common.
				push(Cycle(rng.Intn(16)))
			}
		}
		for opt.len() > 0 {
			got := opt.pop()
			want := ref.pop()
			if got.at != want.at || int(got.h.(idHandler)) != want.id {
				t.Fatalf("trial %d drain: pop mismatch: optimized (at=%d id=%d), reference (at=%d id=%d)",
					trial, got.at, int(got.h.(idHandler)), want.at, want.id)
			}
		}
		if len(ref.h) != 0 {
			t.Fatalf("trial %d: reference heap still has %d events", trial, len(ref.h))
		}
	}
}

// idHandler tags queue entries with a logical event id for the
// cross-check; Handle is never invoked by these tests.
type idHandler int

func (idHandler) Handle() {}

// refEngine is an event loop with the reference heap as its queue and
// the Engine's documented Run semantics (sticky Stop, horizon advance),
// used to cross-check full execution traces rather than bare pop order.
type refEngine struct {
	now     Cycle
	q       refQueue
	stopped bool
	fns     map[int]func()
	nextID  int
}

func (e *refEngine) schedule(delay Cycle, fn func()) {
	if e.fns == nil {
		e.fns = make(map[int]func())
	}
	id := e.nextID
	e.nextID++
	e.fns[id] = fn
	e.q.push(e.now+delay, id)
}

func (e *refEngine) run(horizon Cycle) Cycle {
	for !e.stopped {
		if len(e.q.h) == 0 {
			return e.now
		}
		if e.q.h[0].at > horizon {
			if horizon > e.now {
				e.now = horizon
			}
			return e.now
		}
		ev := e.q.pop()
		e.now = ev.at
		e.fns[ev.id]()
	}
	e.stopped = false
	return e.now
}

// TestEngineMatchesReferenceEngine runs the same randomized cascade —
// nested schedules, same-cycle ties, random Stop calls from inside
// callbacks, and horizon-bounded Run windows — on the Engine and on the
// reference loop, and requires identical execution traces (event
// identity and execution cycle) and identical clock positions after
// every window.
func TestEngineMatchesReferenceEngine(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		type rec struct {
			label int
			at    Cycle
		}
		run := func(schedule func(Cycle, func()), clock func() Cycle, stop func(), window func(Cycle) Cycle) []rec {
			var trace []rec
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			var spawn func(label, depth int)
			spawn = func(label, depth int) {
				trace = append(trace, rec{label, clock()})
				if rng.Intn(20) == 0 {
					stop() // random Stop interleavings from inside callbacks
				}
				if depth < 3 {
					n := rng.Intn(3)
					for i := 0; i < n; i++ {
						child := label*10 + i + 1
						schedule(Cycle(rng.Intn(6)), func() { spawn(child, depth+1) })
					}
				}
			}
			for i := 0; i < 6; i++ {
				i := i
				schedule(Cycle(rng.Intn(12)), func() { spawn(i+1, 0) })
			}
			// Alternate bounded windows (re-running after any Stop) and
			// record the clock after each as a pseudo-event, so horizon
			// advance and stop consumption are part of the compared trace.
			for _, h := range []Cycle{4, 9, 17, 17, 30, MaxCycle, MaxCycle} {
				trace = append(trace, rec{label: -1, at: window(h)})
			}
			return trace
		}

		e := New(0)
		got := run(e.Schedule, e.Now, e.Stop, e.Run)
		r := &refEngine{}
		want := run(r.schedule, func() Cycle { return r.now },
			func() { r.stopped = true }, r.run)

		if len(got) != len(want) {
			t.Fatalf("trial %d: trace lengths differ: engine %d, reference %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: traces diverge at %d: engine %+v, reference %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestQueueOverflowPanics pins that both scheduling paths reject a
// delay that would wrap the cycle counter.
func TestQueueOverflowPanics(t *testing.T) {
	for _, name := range []string{"Schedule", "ScheduleHandler"} {
		t.Run(name, func(t *testing.T) {
			e := New(0)
			e.Schedule(10, func() {})
			e.Drain()
			defer func() {
				if recover() == nil {
					t.Errorf("%s past MaxCycle did not panic", name)
				}
			}()
			if name == "Schedule" {
				e.Schedule(MaxCycle, func() {})
			} else {
				e.ScheduleHandler(MaxCycle, idHandler(0))
			}
		})
	}
}
