package engine

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewDefaults(t *testing.T) {
	e := New(0)
	if e.FrequencyHz() != DefaultFrequencyHz {
		t.Fatalf("FrequencyHz = %v, want %v", e.FrequencyHz(), DefaultFrequencyHz)
	}
	if e.Now() != 0 {
		t.Fatalf("Now = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", e.Pending())
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := New(0)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Drain()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	e := New(0)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Drain()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-cycle events ran out of order at %d: %v", i, got[:i+1])
		}
	}
}

func TestZeroDelayRunsThisCycle(t *testing.T) {
	e := New(0)
	var at Cycle
	e.Schedule(7, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Drain()
	if at != 7 {
		t.Fatalf("zero-delay event ran at %d, want 7", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := New(0)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 50 {
			e.Schedule(2, rec)
		}
	}
	e.Schedule(1, rec)
	e.Drain()
	if depth != 50 {
		t.Fatalf("depth = %d, want 50", depth)
	}
	if e.Now() != 1+49*2 {
		t.Fatalf("Now = %d, want %d", e.Now(), 1+49*2)
	}
}

func TestRunHorizon(t *testing.T) {
	e := New(0)
	ran := []Cycle(nil)
	for _, d := range []Cycle{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { ran = append(ran, d) })
	}
	e.Run(12)
	if len(ran) != 2 {
		t.Fatalf("ran %v before horizon 12, want 2 events", ran)
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Drain()
	if len(ran) != 4 {
		t.Fatalf("ran %v after drain, want all 4", ran)
	}
}

func TestStop(t *testing.T) {
	e := New(0)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Cycle(i+1), func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(MaxCycle)
	if count != 3 {
		t.Fatalf("count = %d after Stop, want 3", count)
	}
	// A later Run resumes.
	e.Drain()
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestScheduleAt(t *testing.T) {
	e := New(0)
	var at Cycle
	e.Schedule(10, func() {
		e.ScheduleAt(25, func() { at = e.Now() })
	})
	e.Drain()
	if at != 25 {
		t.Fatalf("event at %d, want 25", at)
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	e := New(0)
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt in the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Drain()
}

func TestNilCallbackPanics(t *testing.T) {
	e := New(0)
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestSecondsCyclesRoundTrip(t *testing.T) {
	e := New(1e9)
	if got := e.Seconds(2_000_000_000); got != 2.0 {
		t.Fatalf("Seconds = %v, want 2.0", got)
	}
	if got := e.Cycles(1.5); got != 1_500_000_000 {
		t.Fatalf("Cycles = %v, want 1.5e9", got)
	}
	if got := e.Cycles(0); got != 0 {
		t.Fatalf("Cycles(0) = %v, want 0", got)
	}
	if got := e.Cycles(1e-12); got == 0 {
		t.Fatalf("Cycles of tiny positive duration rounded to 0")
	}
}

func TestExecutedCounter(t *testing.T) {
	e := New(0)
	for i := 0; i < 17; i++ {
		e.Schedule(Cycle(i), func() {})
	}
	e.Drain()
	if e.Executed != 17 {
		t.Fatalf("Executed = %d, want 17", e.Executed)
	}
}

// TestRandomOrderProperty checks with testing/quick that arbitrary delay
// sets always execute in nondecreasing time order.
func TestRandomOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New(0)
		var ran []Cycle
		for _, d := range delays {
			d := Cycle(d)
			e.Schedule(d, func() { ran = append(ran, e.Now()) })
		}
		e.Drain()
		if !sort.SliceIsSorted(ran, func(i, j int) bool { return ran[i] < ran[j] }) {
			return false
		}
		return len(ran) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminism runs the same randomized event cascade twice and
// requires identical execution sequences.
func TestDeterminism(t *testing.T) {
	run := func() []Cycle {
		e := New(0)
		rng := rand.New(rand.NewSource(42))
		var seq []Cycle
		var spawn func(depth int)
		spawn = func(depth int) {
			seq = append(seq, e.Now())
			if depth < 4 {
				n := rng.Intn(3) + 1
				for i := 0; i < n; i++ {
					e.Schedule(Cycle(rng.Intn(10)), func() { spawn(depth + 1) })
				}
			}
		}
		for i := 0; i < 5; i++ {
			e.Schedule(Cycle(rng.Intn(20)), func() { spawn(0) })
		}
		e.Drain()
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic schedule at event %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestStopStickyBeforeRun pins the sticky-Stop contract: a Stop issued
// with no Run in flight makes the next Run return immediately without
// executing anything, and is consumed by that Run.
func TestStopStickyBeforeRun(t *testing.T) {
	e := New(0)
	count := 0
	for i := 0; i < 5; i++ {
		e.Schedule(Cycle(i+1), func() { count++ })
	}
	e.Stop()
	if at := e.Run(MaxCycle); at != 0 {
		t.Fatalf("stopped Run returned %d, want 0", at)
	}
	if count != 0 {
		t.Fatalf("stopped Run executed %d events, want 0", count)
	}
	// The stop was consumed: the next Run resumes.
	e.Drain()
	if count != 5 {
		t.Fatalf("count = %d after resume, want 5", count)
	}
}

// TestStopStickyBetweenRuns pins that a Stop issued between Run calls is
// not silently discarded by the next Run.
func TestStopStickyBetweenRuns(t *testing.T) {
	e := New(0)
	count := 0
	for i := 0; i < 6; i++ {
		e.Schedule(Cycle(i+1), func() { count++ })
	}
	e.Run(3)
	if count != 3 {
		t.Fatalf("count = %d after Run(3), want 3", count)
	}
	e.Stop()
	e.Run(MaxCycle)
	if count != 3 {
		t.Fatalf("count = %d: Run discarded a pending Stop", count)
	}
	e.Drain()
	if count != 6 {
		t.Fatalf("count = %d after resume, want 6", count)
	}
}

// TestRunHorizonAdvancesNow pins the idle-tail contract: when Run exits
// because the next event is past the horizon, the clock advances to the
// horizon, so elapsed time derived from the return value includes the
// idle tail.
func TestRunHorizonAdvancesNow(t *testing.T) {
	e := New(0)
	ran := 0
	for _, d := range []Cycle{5, 10, 15, 20} {
		e.Schedule(d, func() { ran++ })
	}
	if at := e.Run(12); at != 12 {
		t.Fatalf("Run(12) returned %d, want 12", at)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %d after horizon exit, want 12", e.Now())
	}
	if ran != 2 {
		t.Fatalf("ran %d events before horizon 12, want 2", ran)
	}
	// A drained exit leaves the clock at the last executed event.
	if at := e.Drain(); at != 20 {
		t.Fatalf("Drain returned %d, want 20", at)
	}
	// A horizon behind the clock never moves time backwards.
	e.Schedule(100, func() { ran++ })
	if at := e.Run(12); at != 20 {
		t.Fatalf("Run(12) with now=20 returned %d, want 20", at)
	}
}

// TestScheduleSteadyStateZeroAlloc pins the zero-alloc contract: once
// the queue storage is warm, Schedule with a preallocated callback plus
// dispatch allocates nothing, and neither does the pooled-handler path.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	e := New(0)
	fn := func() {}
	for i := 0; i < 4096; i++ {
		e.Schedule(Cycle(i%64), fn)
	}
	e.Drain()
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.Schedule(Cycle(i%16), fn)
		}
		e.Drain()
	}); allocs != 0 {
		t.Fatalf("steady-state Schedule+Drain allocated %v objects per run, want 0", allocs)
	}
	h := &countHandler{}
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 64; i++ {
			e.ScheduleHandler(Cycle(i%16), h)
		}
		e.Drain()
	}); allocs != 0 {
		t.Fatalf("steady-state ScheduleHandler+Drain allocated %v objects per run, want 0", allocs)
	}
	if h.n == 0 {
		t.Fatal("handler never dispatched")
	}
}

type countHandler struct{ n int }

func (h *countHandler) Handle() { h.n++ }

// selfHandler reschedules itself until its budget runs out — the
// tightest possible schedule/dispatch loop for BenchmarkRunHot.
type selfHandler struct {
	e    *Engine
	left int
}

func (h *selfHandler) Handle() {
	if h.left > 0 {
		h.left--
		h.e.ScheduleHandler(1, h)
	}
}

// BenchmarkSchedule measures steady-state push/pop cost with a warm
// queue and a preallocated callback; allocs/op must be 0.
func BenchmarkSchedule(b *testing.B) {
	e := New(0)
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(Cycle(i%64), fn)
	}
	e.Drain()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycle(i&63), fn)
		if e.Pending() >= 1024 {
			e.Drain()
		}
	}
	e.Drain()
}

// BenchmarkRunHot measures the full schedule+dispatch cycle through a
// self-rescheduling pooled handler; allocs/op must be 0.
func BenchmarkRunHot(b *testing.B) {
	e := New(0)
	h := &selfHandler{e: e, left: b.N}
	e.ScheduleHandler(1, h)
	b.ReportAllocs()
	b.ResetTimer()
	e.Drain()
}

func BenchmarkScheduleDrain(b *testing.B) {
	e := New(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(Cycle(i%64), func() {})
		if e.Pending() > 1024 {
			e.Drain()
		}
	}
	e.Drain()
}
