package directory

import (
	"fmt"
	"math/bits"
)

// Sharers is a hierarchical sharer set over two id spaces: GPM sharers
// and GPU sharers. Which id space the GPM elements use (global GPM ids
// for flat protocols, GPU-local module indices for hierarchical ones)
// is the protocol's choice.
//
// The representation is hybrid and canonical. Sets whose ids all fit
// the paper's 4×4 evaluation box (every id below 32) stay a single
// inline word — bits 0..31 for GPM sharers, bits 32..63 for GPU
// sharers, exactly the dense layout the simulator has always used, with
// zero allocation on every operation. Any id of 32 or above promotes
// the set to a heap form: a sorted small vector of element keys up to
// vectorMax elements, a pair of bitmaps beyond. Every operation
// re-normalizes, so a given membership always has exactly one
// representation; sets containing only small ids are always inline, and
// two such sets are comparable with ==. Sets that may carry large ids
// must be compared with Equal.
//
// Values are immutable: With and Without return new sets and never
// mutate shared state.
type Sharers struct {
	word uint64 // inline form; always 0 when big != nil
	big  *bigSet
}

const (
	// inlineIDs is the per-space id capacity of the inline word.
	inlineIDs = 32
	// gpuShift is the inline-word bit offset of the GPU id space.
	gpuShift = 32
	// vectorMax is the element count above which a promoted set moves
	// from the sorted vector to the bitmap form.
	vectorMax = 64
	// gpuFlag marks GPU elements in promoted-set keys. GPM keys sort
	// below every GPU key, giving the canonical GPMs-then-GPUs order.
	gpuFlag = uint32(1) << 31
)

// MaxSharerIDs bounds both sharer id spaces (exclusive). It exists so
// configuration validation can reject absurd topologies with an error
// instead of letting an id wander into GPMBit's panic mid-simulation;
// at 4096 ids per space it is far beyond any machine the simulator can
// usefully model.
const MaxSharerIDs = 4096

// setForm discriminates the promoted representations.
type setForm uint8

const (
	// formVector is a sorted, duplicate-free vector of element keys.
	formVector setForm = iota
	// formBitmap is a pair of dense bitmaps, one per id space.
	formBitmap
)

// bigSet is the heap form of a promoted set. It is immutable after
// construction and always holds at least one element with id ≥
// inlineIDs (smaller sets normalize back to the inline word).
type bigSet struct {
	form setForm
	vec  []uint32 // formVector: sorted element keys
	gpm  []uint64 // formBitmap: GPM bitmap, trailing zero words trimmed
	gpu  []uint64 // formBitmap: GPU bitmap, trailing zero words trimmed
}

// GPMBit returns the sharer set holding exactly one GPM index.
//
//lint:allow hotalloc promoted (>=32-id) sharer-set path; inline word sets allocate nothing
func GPMBit(i int) Sharers {
	if i < 0 || i >= MaxSharerIDs {
		panic(fmt.Sprintf("directory: GPM sharer index %d out of range [0, %d)", i, MaxSharerIDs))
	}
	if i < inlineIDs {
		return Sharers{word: 1 << uint(i)}
	}
	return Sharers{big: &bigSet{form: formVector, vec: []uint32{uint32(i)}}}
}

// GPUBit returns the sharer set holding exactly one GPU id.
//
//lint:allow hotalloc promoted (>=32-id) sharer-set path; inline word sets allocate nothing
func GPUBit(j int) Sharers {
	if j < 0 || j >= MaxSharerIDs {
		panic(fmt.Sprintf("directory: GPU sharer index %d out of range [0, %d)", j, MaxSharerIDs))
	}
	if j < inlineIDs {
		return Sharers{word: 1 << uint(gpuShift+j)}
	}
	return Sharers{big: &bigSet{form: formVector, vec: []uint32{uint32(j) | gpuFlag}}}
}

// Has reports whether every sharer of b is present in s.
func (s Sharers) Has(b Sharers) bool {
	if s.big == nil && b.big == nil {
		return s.word&b.word == b.word
	}
	if s.big == nil {
		// b holds an id ≥ inlineIDs that an inline set cannot contain.
		return false
	}
	return subsetKeys(b.keys(), s.keys())
}

// With returns s plus the sharers of b.
func (s Sharers) With(b Sharers) Sharers {
	if s.big == nil && b.big == nil {
		return Sharers{word: s.word | b.word}
	}
	return fromKeys(unionKeys(s.keys(), b.keys()))
}

// Without returns s minus the sharers of b.
func (s Sharers) Without(b Sharers) Sharers {
	if s.big == nil && b.big == nil {
		return Sharers{word: s.word &^ b.word}
	}
	return fromKeys(diffKeys(s.keys(), b.keys()))
}

// Count returns the number of sharers recorded.
func (s Sharers) Count() int {
	if s.big == nil {
		return bits.OnesCount64(s.word)
	}
	switch s.big.form {
	case formVector:
		return len(s.big.vec)
	case formBitmap:
		n := 0
		for _, w := range s.big.gpm {
			n += bits.OnesCount64(w)
		}
		for _, w := range s.big.gpu {
			n += bits.OnesCount64(w)
		}
		return n
	default:
		panic(fmt.Sprintf("directory: unknown sharer-set form %d", uint8(s.big.form)))
	}
}

// IsEmpty reports whether no sharer is recorded.
func (s Sharers) IsEmpty() bool { return s.word == 0 && s.big == nil }

// Equal reports whether two sets record the same sharers. Unlike ==,
// it is correct for every representation; == is only meaningful for
// sets guaranteed to hold small ids (which are always inline).
func (s Sharers) Equal(o Sharers) bool {
	if (s.big == nil) != (o.big == nil) {
		return false
	}
	if s.big == nil {
		return s.word == o.word
	}
	return s.big.equal(o.big)
}

// GPMs calls fn for each GPM sharer index in ascending order.
func (s Sharers) GPMs(fn func(int)) {
	if s.big == nil {
		v := s.word & (1<<gpuShift - 1)
		for v != 0 {
			i := bits.TrailingZeros64(v)
			fn(i)
			v &^= 1 << uint(i)
		}
		return
	}
	switch s.big.form {
	case formVector:
		for _, k := range s.big.vec {
			if k&gpuFlag == 0 {
				fn(int(k))
			}
		}
	case formBitmap:
		forEachBit(s.big.gpm, fn)
	default:
		panic(fmt.Sprintf("directory: unknown sharer-set form %d", uint8(s.big.form)))
	}
}

// GPUs calls fn for each GPU sharer id in ascending order.
func (s Sharers) GPUs(fn func(int)) {
	if s.big == nil {
		v := s.word >> gpuShift
		for v != 0 {
			j := bits.TrailingZeros64(v)
			fn(j)
			v &^= 1 << uint(j)
		}
		return
	}
	switch s.big.form {
	case formVector:
		for _, k := range s.big.vec {
			if k&gpuFlag != 0 {
				fn(int(k &^ gpuFlag))
			}
		}
	case formBitmap:
		forEachBit(s.big.gpu, fn)
	default:
		panic(fmt.Sprintf("directory: unknown sharer-set form %d", uint8(s.big.form)))
	}
}

// String implements fmt.Stringer for debugging.
func (s Sharers) String() string {
	out := "["
	first := true
	s.GPMs(func(i int) {
		if !first {
			out += " "
		}
		out += fmt.Sprintf("GPM%d", i)
		first = false
	})
	s.GPUs(func(j int) {
		if !first {
			out += " "
		}
		out += fmt.Sprintf("GPU%d", j)
		first = false
	})
	return out + "]"
}

// ---------------------------------------------------------------------
// Promoted-set machinery
// ---------------------------------------------------------------------

// keys decomposes a set into its sorted element keys: GPM ids as-is,
// GPU ids with gpuFlag set. GPM keys sort below every GPU key, so
// appending the GPM elements then the GPU elements keeps the slice
// sorted.
//
//lint:allow hotalloc promoted sharer-set expansion; inline word sets allocate nothing
func (s Sharers) keys() []uint32 {
	if s.big == nil {
		if s.word == 0 {
			return nil
		}
		out := make([]uint32, 0, bits.OnesCount64(s.word))
		s.GPMs(func(i int) { out = append(out, uint32(i)) })
		s.GPUs(func(j int) { out = append(out, uint32(j)|gpuFlag) })
		return out
	}
	switch s.big.form {
	case formVector:
		return s.big.vec
	case formBitmap:
		out := make([]uint32, 0, s.Count())
		forEachBit(s.big.gpm, func(i int) { out = append(out, uint32(i)) })
		forEachBit(s.big.gpu, func(j int) { out = append(out, uint32(j)|gpuFlag) })
		return out
	default:
		panic(fmt.Sprintf("directory: unknown sharer-set form %d", uint8(s.big.form)))
	}
}

// fromKeys builds the canonical representation of a sorted,
// duplicate-free key slice: the inline word when every id fits it, else
// a vector up to vectorMax elements, else bitmaps. The slice must not
// be mutated afterwards (union/diff always build fresh slices).
//
//lint:allow hotalloc promoted sharer-set construction; inline word sets allocate nothing
func fromKeys(keys []uint32) Sharers {
	if len(keys) == 0 {
		return Sharers{}
	}
	inline := true
	for _, k := range keys {
		if k&^gpuFlag >= inlineIDs {
			inline = false
			break
		}
	}
	if inline {
		var w uint64
		for _, k := range keys {
			if k&gpuFlag != 0 {
				w |= 1 << uint(gpuShift+(k&^gpuFlag))
			} else {
				w |= 1 << uint(k)
			}
		}
		return Sharers{word: w}
	}
	if len(keys) <= vectorMax {
		return Sharers{big: &bigSet{form: formVector, vec: keys}}
	}
	var gpm, gpu []uint64
	for _, k := range keys {
		if k&gpuFlag != 0 {
			gpu = setBit(gpu, int(k&^gpuFlag))
		} else {
			gpm = setBit(gpm, int(k))
		}
	}
	return Sharers{big: &bigSet{form: formBitmap, gpm: gpm, gpu: gpu}}
}

// equal compares two canonical bigSets. Canonicalization guarantees
// equal memberships share a form, so a form mismatch means inequality.
func (b *bigSet) equal(o *bigSet) bool {
	if b.form != o.form {
		return false
	}
	switch b.form {
	case formVector:
		if len(b.vec) != len(o.vec) {
			return false
		}
		for i := range b.vec {
			if b.vec[i] != o.vec[i] {
				return false
			}
		}
		return true
	case formBitmap:
		return wordsEqual(b.gpm, o.gpm) && wordsEqual(b.gpu, o.gpu)
	default:
		panic(fmt.Sprintf("directory: unknown sharer-set form %d", uint8(b.form)))
	}
}

func wordsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// setBit grows the bitmap as needed and sets bit id. Bitmaps are only
// ever built from key slices, so the highest word is always non-zero
// and the length is canonical for the membership.
//
//lint:allow hotalloc promoted sharer-set bitmap append; bounded by MaxSharerIDs
func setBit(words []uint64, id int) []uint64 {
	w := id / 64
	for len(words) <= w {
		words = append(words, 0)
	}
	words[w] |= 1 << uint(id%64)
	return words
}

// forEachBit visits the set bits of a bitmap in ascending order.
func forEachBit(words []uint64, fn func(int)) {
	for w, v := range words {
		for v != 0 {
			i := bits.TrailingZeros64(v)
			fn(64*w + i)
			v &^= 1 << uint(i)
		}
	}
}

// unionKeys merges two sorted key slices into a fresh sorted slice.
//
//lint:allow hotalloc promoted sharer-set union; inline word sets allocate nothing
func unionKeys(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// diffKeys returns a minus b as a fresh sorted slice.
//
//lint:allow hotalloc promoted sharer-set difference; inline word sets allocate nothing
func diffKeys(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a))
	j := 0
	for _, k := range a {
		for j < len(b) && b[j] < k {
			j++
		}
		if j < len(b) && b[j] == k {
			continue
		}
		out = append(out, k)
	}
	return out
}

// subsetKeys reports whether every key of sub is present in super (both
// sorted).
func subsetKeys(sub, super []uint32) bool {
	j := 0
	for _, k := range sub {
		for j < len(super) && super[j] < k {
			j++
		}
		if j >= len(super) || super[j] != k {
			return false
		}
		j++
	}
	return true
}
