package directory

import (
	"fmt"
	"testing"
)

// TestShardCountInvariance drives an identical Ensure/Lookup/Drop
// sequence through directories differing only in shard count (including
// more shards than sets, which clamps) and requires bit-identical
// observable behavior: same victims in the same order, same snapshots,
// same statistics, same live count.
func TestShardCountInvariance(t *testing.T) {
	const ops = 4096
	run := func(shards int) ([]Entry, Stats, []Region, int) {
		d := New(Config{Entries: 32, Ways: 4, GranLines: 4, Shards: shards})
		var victims []Region
		seed := uint64(7)
		for op := 0; op < ops; op++ {
			r := Region(splitmix(&seed) % 64) // 4x the 16-set capacity
			switch splitmix(&seed) % 8 {
			case 0: // drop
				d.Drop(r)
			case 1, 2: // probe
				d.Lookup(r)
			default: // allocate and mutate sharers
				e, victim := d.Ensure(r)
				if victim != nil {
					victims = append(victims, victim.Region)
				}
				id := int(splitmix(&seed) % 40) // crosses the inline boundary
				if splitmix(&seed)%2 == 0 {
					e.Sharers = e.Sharers.With(GPMBit(id))
				} else {
					e.Sharers = e.Sharers.With(GPUBit(id))
				}
			}
		}
		return d.Snapshot(), d.Stats, victims, d.Live()
	}

	baseSnap, baseStats, baseVictims, baseLive := run(0)
	if baseStats.Evicts == 0 || len(baseSnap) == 0 {
		t.Fatal("sequence did not exercise eviction; test is vacuous")
	}
	for _, shards := range []int{1, 3, 8, 16, 1000} {
		snap, stats, victims, live := run(shards)
		if stats != baseStats {
			t.Fatalf("Shards=%d stats %+v differ from unsharded %+v", shards, stats, baseStats)
		}
		if live != baseLive {
			t.Fatalf("Shards=%d live %d != %d", shards, live, baseLive)
		}
		if fmt.Sprint(victims) != fmt.Sprint(baseVictims) {
			t.Fatalf("Shards=%d victim sequence diverged", shards)
		}
		if len(snap) != len(baseSnap) {
			t.Fatalf("Shards=%d snapshot has %d entries, want %d", shards, len(snap), len(baseSnap))
		}
		for i := range snap {
			if snap[i].Region != baseSnap[i].Region || !snap[i].Sharers.Equal(baseSnap[i].Sharers) {
				t.Fatalf("Shards=%d snapshot[%d] = %v/%v, want %v/%v", shards, i,
					snap[i].Region, snap[i].Sharers, baseSnap[i].Region, baseSnap[i].Sharers)
			}
		}
	}
}

// TestShardLazyAllocation checks that untouched address slices never
// materialize backing storage: touching one region allocates exactly
// one shard.
func TestShardLazyAllocation(t *testing.T) {
	d := New(Config{Entries: 64, Ways: 4, GranLines: 4, Shards: 16})
	allocated := func() int {
		n := 0
		for _, sh := range d.shards {
			if sh != nil {
				n++
			}
		}
		return n
	}
	if allocated() != 0 {
		t.Fatalf("fresh directory materialized %d shards", allocated())
	}
	d.Ensure(3)
	if allocated() != 1 {
		t.Fatalf("one region touched %d shards, want 1", allocated())
	}
	if _, ok := d.Lookup(3); !ok {
		t.Fatal("entry lost after shard allocation")
	}
}
