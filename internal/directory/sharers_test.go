package directory

import (
	"fmt"
	"sort"
	"testing"
)

// refSet is the obviously-correct reference model: a map keyed by
// (space, id).
type refSet map[[2]int]bool

func (r refSet) with(o refSet) refSet {
	out := refSet{}
	for k := range r {
		out[k] = true
	}
	for k := range o {
		out[k] = true
	}
	return out
}

func (r refSet) without(o refSet) refSet {
	out := refSet{}
	for k := range r {
		if !o[k] {
			out[k] = true
		}
	}
	return out
}

func (r refSet) has(o refSet) bool {
	for k := range o {
		if !r[k] {
			return false
		}
	}
	return true
}

func (r refSet) ids(space int) []int {
	var out []int
	for k := range r {
		if k[0] == space {
			out = append(out, k[1])
		}
	}
	sort.Ints(out)
	return out
}

// checkAgainstRef verifies every observable of a Sharers value against
// the reference, plus the canonical-representation invariants the
// package promises: all-small-id sets are inline (so == works on them),
// promoted sets are vectors up to vectorMax elements and bitmaps past
// it.
func checkAgainstRef(t *testing.T, s Sharers, ref refSet) {
	t.Helper()
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, ref %d (%v)", s.Count(), len(ref), s)
	}
	if s.IsEmpty() != (len(ref) == 0) {
		t.Fatalf("IsEmpty = %v with %d ref elements", s.IsEmpty(), len(ref))
	}
	var gpms, gpus []int
	s.GPMs(func(i int) { gpms = append(gpms, i) })
	s.GPUs(func(j int) { gpus = append(gpus, j) })
	wantGPMs, wantGPUs := ref.ids(0), ref.ids(1)
	if fmt.Sprint(gpms) != fmt.Sprint(wantGPMs) || fmt.Sprint(gpus) != fmt.Sprint(wantGPUs) {
		t.Fatalf("iteration = GPMs %v GPUs %v, ref GPMs %v GPUs %v", gpms, gpus, wantGPMs, wantGPUs)
	}

	maxID := -1
	for k := range ref {
		if k[1] > maxID {
			maxID = k[1]
		}
	}
	switch {
	case maxID < inlineIDs:
		if s.big != nil {
			t.Fatalf("set with max id %d not inline: %v", maxID, s)
		}
	case len(ref) <= vectorMax:
		if s.big == nil || s.big.form != formVector {
			t.Fatalf("set with max id %d and %d elements not a vector: %v", maxID, len(ref), s)
		}
	default:
		if s.big == nil || s.big.form != formBitmap {
			t.Fatalf("set with %d elements not a bitmap: %v", len(ref), s)
		}
	}
}

// splitmix is the test's deterministic id generator.
func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// TestSharersProperty drives random With/Without/Has sequences against
// the reference model across id ranges chosen to cross the inline→
// vector boundary (ids straddling 31/32/33) and element counts crossing
// the vector→bitmap boundary (past 64 elements).
func TestSharersProperty(t *testing.T) {
	cases := []struct {
		name  string
		maxID int // ids drawn from [0, maxID)
		ops   int
	}{
		{"inline-only", 32, 400},
		{"boundary-33", 33, 400},
		{"boundary-40", 40, 400},
		{"vector-64", 64, 600},
		{"bitmap-200", 200, 1200}, // 2 spaces × 200 ids ≫ vectorMax
		{"sparse-huge", MaxSharerIDs, 600},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seed := uint64(1)
			var s Sharers
			ref := refSet{}
			for op := 0; op < tc.ops; op++ {
				id := int(splitmix(&seed) % uint64(tc.maxID))
				isGPU := splitmix(&seed)%2 == 1
				bit, key := GPMBit(id), [2]int{0, id}
				if isGPU {
					bit, key = GPUBit(id), [2]int{1, id}
				}
				switch splitmix(&seed) % 4 {
				case 0, 1: // add
					s, ref = s.With(bit), ref.with(refSet{key: true})
				case 2: // remove
					s, ref = s.Without(bit), ref.without(refSet{key: true})
				default: // membership probe
					if s.Has(bit) != ref.has(refSet{key: true}) {
						t.Fatalf("op %d: Has(%v) = %v, ref %v", op, bit, s.Has(bit), ref.has(refSet{key: true}))
					}
				}
				checkAgainstRef(t, s, ref)
			}
			// Rebuilding the membership from scratch in a different
			// insertion order must land on an Equal set (canonical form).
			var r Sharers
			for k := range ref {
				if k[0] == 0 {
					r = r.With(GPMBit(k[1]))
				} else {
					r = r.With(GPUBit(k[1]))
				}
			}
			if !r.Equal(s) || !s.Equal(r) {
				t.Fatalf("rebuilt set not Equal: %v vs %v", r, s)
			}
			// And clearing every element must return to the empty value.
			cleared := s
			for k := range ref {
				if k[0] == 0 {
					cleared = cleared.Without(GPMBit(k[1]))
				} else {
					cleared = cleared.Without(GPUBit(k[1]))
				}
			}
			if !cleared.IsEmpty() || cleared != (Sharers{}) {
				t.Fatalf("fully-cleared set not the canonical empty value: %#v", cleared)
			}
		})
	}
}

// TestSharersPromotionBoundaries pins the exact representation changes
// at the 31/32 id edge and the 64/65 element edge.
func TestSharersPromotionBoundaries(t *testing.T) {
	s := GPMBit(31)
	if s.big != nil {
		t.Fatal("GPMBit(31) should be inline")
	}
	s = s.With(GPMBit(32))
	if s.big == nil || s.big.form != formVector {
		t.Fatalf("adding id 32 should promote to vector, got %#v", s)
	}
	if !s.Has(GPMBit(31)) || !s.Has(GPMBit(32)) || s.Count() != 2 {
		t.Fatalf("promoted set lost members: %v", s)
	}
	// Dropping the large id must demote back to the inline word, making
	// == meaningful again.
	if d := s.Without(GPMBit(32)); d != GPMBit(31) {
		t.Fatalf("demotion after Without(32): %#v != GPMBit(31)", d)
	}

	// Fill 65 distinct large elements: 64 stays vector, 65 flips to
	// bitmap, removing one flips back.
	var v Sharers
	for i := 0; i < 64; i++ {
		v = v.With(GPMBit(100 + i))
	}
	if v.big == nil || v.big.form != formVector || v.Count() != 64 {
		t.Fatalf("64-element set should be a vector, got %#v", v)
	}
	v65 := v.With(GPUBit(500))
	if v65.big == nil || v65.big.form != formBitmap || v65.Count() != 65 {
		t.Fatalf("65-element set should be a bitmap, got %#v", v65)
	}
	back := v65.Without(GPUBit(500))
	if back.big == nil || back.big.form != formVector || !back.Equal(v) {
		t.Fatalf("demotion from bitmap to vector failed: %#v", back)
	}
}

// TestSharersMixedRepresentationOps exercises every inline/promoted
// operand pairing of Has/With/Without.
func TestSharersMixedRepresentationOps(t *testing.T) {
	small := GPMBit(1).With(GPUBit(2))
	big := GPMBit(40).With(GPUBit(50))
	mixed := small.With(big)

	if small.Has(big) {
		t.Fatal("inline set claims to contain large ids")
	}
	if !mixed.Has(small) || !mixed.Has(big) {
		t.Fatal("union lost an operand")
	}
	if got := mixed.Without(big); got != small {
		t.Fatalf("mixed minus big = %v, want inline %v", got, small)
	}
	if got := mixed.Without(small); !got.Equal(big) {
		t.Fatalf("mixed minus small = %v, want %v", got, big)
	}
	if mixed.String() != "[GPM1 GPM40 GPU2 GPU50]" {
		t.Fatalf("String = %q", mixed.String())
	}
	// GPM id and GPU id with the same numeric value are distinct.
	if GPMBit(40).Has(GPUBit(40)) || GPUBit(40).Has(GPMBit(40)) {
		t.Fatal("GPM and GPU id spaces collided")
	}
	if GPMBit(40).Equal(GPUBit(40)) {
		t.Fatal("Equal conflated GPM and GPU ids")
	}
}

// TestStorageAt16x8 pins the §VII-C storage accounting at the largest
// toposcale machine: a 16-GPU, 8-GPM-per-GPU system bills M+N-2 = 22
// sharers per hierarchical entry.
func TestStorageAt16x8(t *testing.T) {
	const gpus, gpms, tagBits = 16, 8, 48
	maxSharers := gpms - 1 + gpus - 1
	if maxSharers != 22 {
		t.Fatalf("M+N-2 = %d, want 22", maxSharers)
	}
	if got := StorageBits(tagBits, maxSharers); got != 1+48+22 {
		t.Fatalf("StorageBits = %d, want 71", got)
	}
	flat := StorageBits(tagBits, gpus*gpms-1)
	if flat != 1+48+127 {
		t.Fatalf("flat StorageBits = %d, want 176", flat)
	}
	if StorageBytes(12*1024, tagBits, maxSharers) >= StorageBytes(12*1024, tagBits, gpus*gpms-1) {
		t.Fatal("hierarchical entries should be cheaper than flat at 16x8")
	}
}
