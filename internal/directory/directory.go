// Package directory implements the coherence directories attached to
// every L2 slice. A directory is a set-associative cache of sharer-set
// entries; each entry covers a coarse-grained region of (by default)
// four consecutive cache lines, the optimization the paper evaluates in
// Section VII-B.
//
// The sharer set (sharers.go) is hierarchy-aware (Section V): one id
// space for GPM sharers and another for GPU sharers, so the same
// structure serves NHCC (GPM elements only, global ids) and HMG (local
// GPM elements at both home levels, GPU elements at the system home).
// Entries have exactly the two stable states of paper Table I — an
// entry present in the directory is Valid; transitioning to Invalid
// drops it. No transient states exist.
//
// Directory storage is sharded by address slice (contiguous ranges of
// set indices), sized from the topology by the simulator. Sharding is
// purely organizational — the region→set mapping is unchanged and shard
// backing arrays allocate lazily on first touch — so behavior and
// statistics are bit-for-bit identical at any shard count; only the
// allocation pattern scales with machine size.
package directory

import (
	"fmt"
	"sort"

	"hmg/internal/topo"
)

// Region identifies a directory tracking granule: Line / GranLines.
type Region uint64

// Entry is one Valid directory entry.
type Entry struct {
	Region  Region
	Sharers Sharers
	valid   bool
	lru     uint64
}

// Config sizes a directory.
type Config struct {
	// Entries is the total entry count (12K per GPM in Table II).
	Entries int
	// Ways is the set associativity.
	Ways int
	// GranLines is the number of consecutive cache lines covered by one
	// entry (4 in the paper's evaluation).
	GranLines int
	// Shards is the number of address-sliced shards the set storage is
	// split into (0 means 1). Shard backing arrays allocate lazily on
	// first touch; the value never changes lookup results or statistics.
	Shards int
}

// DefaultConfig returns the Table II directory: 12K entries, 4 lines per
// entry, 8-way set associative.
func DefaultConfig() Config { return Config{Entries: 12 * 1024, Ways: 8, GranLines: 4} }

// Validate reports whether the configuration is realizable.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("directory: Entries %d must be positive", c.Entries)
	case c.Ways <= 0:
		return fmt.Errorf("directory: Ways %d must be positive", c.Ways)
	case c.Entries%c.Ways != 0:
		return fmt.Errorf("directory: Entries %d not divisible by Ways %d", c.Entries, c.Ways)
	case c.GranLines <= 0 || c.GranLines&(c.GranLines-1) != 0:
		return fmt.Errorf("directory: GranLines %d must be a positive power of two", c.GranLines)
	case c.Shards < 0:
		return fmt.Errorf("directory: Shards %d must not be negative", c.Shards)
	}
	return nil
}

// Stats counts directory events.
type Stats struct {
	Allocs uint64 // entries newly allocated
	Evicts uint64 // entries displaced by capacity/conflict
	Drops  uint64 // entries invalidated by protocol transitions
	Hits   uint64
	Misses uint64
	// EvictedSharerLines accumulates sharers × GranLines over evictions,
	// the numerator of paper Fig. 10.
	EvictedSharerLines uint64
}

// shard is one contiguous slice of the directory's sets. Its backing
// array is allocated on first touch.
type shard struct {
	sets [][]Entry
}

// Dir is a set-associative coherence directory.
type Dir struct {
	cfg          Config
	shards       []*shard
	numSets      uint64
	setsPerShard uint64
	clock        uint64
	live         int

	Stats Stats
}

// New builds a directory; it panics on an invalid configuration.
func New(cfg Config) *Dir {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := uint64(cfg.Entries / cfg.Ways)
	shards := uint64(cfg.Shards)
	if shards == 0 {
		shards = 1
	}
	if shards > numSets {
		shards = numSets
	}
	setsPerShard := (numSets + shards - 1) / shards
	return &Dir{
		cfg:          cfg,
		numSets:      numSets,
		setsPerShard: setsPerShard,
		shards:       make([]*shard, (numSets+setsPerShard-1)/setsPerShard),
	}
}

// Config returns the directory's geometry.
func (d *Dir) Config() Config { return d.cfg }

// Live returns the number of Valid entries.
func (d *Dir) Live() int { return d.live }

// RegionOf maps a cache line to its tracking region.
func (d *Dir) RegionOf(l topo.Line) Region { return Region(uint64(l) / uint64(d.cfg.GranLines)) }

// FirstLine returns the first cache line of a region.
func (d *Dir) FirstLine(r Region) topo.Line { return topo.Line(uint64(r) * uint64(d.cfg.GranLines)) }

// setOf resolves a region's set, allocating its shard on first touch.
// The set index is region % numSets exactly as in the unsharded layout;
// the shard is merely which backing array the set lives in.
func (d *Dir) setOf(r Region) []Entry {
	si := uint64(r) % d.numSets
	sh := d.shards[si/d.setsPerShard]
	if sh == nil {
		sh = d.allocShard(si / d.setsPerShard)
	}
	return sh.sets[si%d.setsPerShard]
}

// allocShard materializes one shard's sets. The last shard may cover
// fewer sets when shards do not divide numSets evenly.
//
//lint:allow hotalloc lazy shard materialization; at most once per shard over the run
func (d *Dir) allocShard(idx uint64) *shard {
	local := d.setsPerShard
	if rem := d.numSets - idx*d.setsPerShard; rem < local {
		local = rem
	}
	sh := &shard{sets: make([][]Entry, local)}
	for i := range sh.sets {
		sh.sets[i] = make([]Entry, d.cfg.Ways)
	}
	d.shards[idx] = sh
	return sh
}

// Lookup probes the directory without allocating.
func (d *Dir) Lookup(r Region) (*Entry, bool) {
	set := d.setOf(r)
	for i := range set {
		if set[i].valid && set[i].Region == r {
			d.clock++
			set[i].lru = d.clock
			d.Stats.Hits++
			return &set[i], true
		}
	}
	d.Stats.Misses++
	return nil, false
}

// Ensure returns the entry for region r, allocating it (state I→V) if
// absent. When allocation displaces a Valid entry, a copy of the victim
// is returned so the caller can send invalidations to its sharers, per
// Table I's "Replace Dir Entry" column.
func (d *Dir) Ensure(r Region) (*Entry, *Entry) {
	set := d.setOf(r)
	d.clock++
	for i := range set {
		if set[i].valid && set[i].Region == r {
			set[i].lru = d.clock
			d.Stats.Hits++
			return &set[i], nil
		}
	}
	d.Stats.Misses++
	victimIdx := -1
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
	}
	var victim *Entry
	if victimIdx == -1 {
		victimIdx = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victimIdx].lru {
				victimIdx = i
			}
		}
		v := set[victimIdx]
		victim = &v
		d.Stats.Evicts++
		d.Stats.EvictedSharerLines += uint64(v.Sharers.Count() * d.cfg.GranLines)
		d.live--
	}
	set[victimIdx] = Entry{Region: r, valid: true, lru: d.clock}
	d.live++
	d.Stats.Allocs++
	return &set[victimIdx], victim
}

// Drop transitions an entry to Invalid (removing it), per the V→I
// transitions of Table I. It reports whether the entry was present.
func (d *Dir) Drop(r Region) bool {
	set := d.setOf(r)
	for i := range set {
		if set[i].valid && set[i].Region == r {
			set[i] = Entry{}
			d.live--
			d.Stats.Drops++
			return true
		}
	}
	return false
}

// Snapshot returns a copy of every Valid entry sorted by region — a
// deterministic view of the directory state for differs and tests,
// independent of set/way placement and shard count. Unlike Lookup it
// never touches LRU or hit/miss statistics.
func (d *Dir) Snapshot() []Entry {
	out := make([]Entry, 0, d.live)
	d.ForEach(func(e *Entry) { out = append(out, *e) })
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// ForEach visits every Valid entry in global set-index order (shards
// hold contiguous set ranges, so walking shards in order preserves the
// unsharded iteration order; untouched shards hold nothing).
func (d *Dir) ForEach(fn func(*Entry)) {
	for _, sh := range d.shards {
		if sh == nil {
			continue
		}
		for s := range sh.sets {
			for i := range sh.sets[s] {
				if sh.sets[s][i].valid {
					fn(&sh.sets[s][i])
				}
			}
		}
	}
}

// StorageBits returns the storage cost of one directory entry in bits,
// the Section VII-C hardware-cost model: 1 state bit, the address tag,
// and one bit per trackable sharer.
func StorageBits(tagBits, maxSharers int) int { return 1 + tagBits + maxSharers }

// StorageBytes returns the total directory storage in bytes for the
// given entry count, Section VII-C's 84KB-per-GPM figure.
func StorageBytes(entries, tagBits, maxSharers int) int {
	return entries * StorageBits(tagBits, maxSharers) / 8
}
