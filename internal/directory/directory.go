// Package directory implements the coherence directories attached to
// every L2 slice. A directory is a set-associative cache of sharer-set
// entries; each entry covers a coarse-grained region of (by default)
// four consecutive cache lines, the optimization the paper evaluates in
// Section VII-B.
//
// The sharer set is hierarchy-aware (Section V): one bit space for GPM
// sharers and another for GPU sharers, so the same structure serves NHCC
// (GPM bits only, global ids) and HMG (local GPM bits at both home
// levels, GPU bits at the system home). Entries have exactly the two
// stable states of paper Table I — an entry present in the directory is
// Valid; transitioning to Invalid drops it. No transient states exist.
package directory

import (
	"fmt"
	"math/bits"
	"sort"

	"hmg/internal/topo"
)

// Region identifies a directory tracking granule: Line / GranLines.
type Region uint64

// Sharers is a hierarchical sharer set: bits 0..31 identify GPM sharers,
// bits 32..63 identify GPU sharers. Which id space the GPM bits use
// (global GPM ids for flat protocols, GPU-local module indices for
// hierarchical ones) is the protocol's choice.
type Sharers uint64

const gpuShift = 32

// GPMBit returns the sharer bit for a GPM index.
func GPMBit(i int) Sharers {
	if i < 0 || i >= gpuShift {
		panic(fmt.Sprintf("directory: GPM sharer index %d out of range", i))
	}
	return Sharers(1) << uint(i)
}

// GPUBit returns the sharer bit for a GPU id.
func GPUBit(j int) Sharers {
	if j < 0 || j >= 64-gpuShift {
		panic(fmt.Sprintf("directory: GPU sharer index %d out of range", j))
	}
	return Sharers(1) << uint(gpuShift+j)
}

// Has reports whether all bits of b are present in s.
func (s Sharers) Has(b Sharers) bool { return s&b == b }

// With returns s plus the bits of b.
func (s Sharers) With(b Sharers) Sharers { return s | b }

// Without returns s minus the bits of b.
func (s Sharers) Without(b Sharers) Sharers { return s &^ b }

// Count returns the number of sharers recorded.
func (s Sharers) Count() int { return bits.OnesCount64(uint64(s)) }

// IsEmpty reports whether no sharer is recorded.
func (s Sharers) IsEmpty() bool { return s == 0 }

// GPMs calls fn for each GPM sharer index.
func (s Sharers) GPMs(fn func(int)) {
	v := uint64(s) & (1<<gpuShift - 1)
	for v != 0 {
		i := bits.TrailingZeros64(v)
		fn(i)
		v &^= 1 << uint(i)
	}
}

// GPUs calls fn for each GPU sharer id.
func (s Sharers) GPUs(fn func(int)) {
	v := uint64(s) >> gpuShift
	for v != 0 {
		j := bits.TrailingZeros64(v)
		fn(j)
		v &^= 1 << uint(j)
	}
}

// String implements fmt.Stringer for debugging.
func (s Sharers) String() string {
	out := "["
	first := true
	s.GPMs(func(i int) {
		if !first {
			out += " "
		}
		out += fmt.Sprintf("GPM%d", i)
		first = false
	})
	s.GPUs(func(j int) {
		if !first {
			out += " "
		}
		out += fmt.Sprintf("GPU%d", j)
		first = false
	})
	return out + "]"
}

// Entry is one Valid directory entry.
type Entry struct {
	Region  Region
	Sharers Sharers
	valid   bool
	lru     uint64
}

// Config sizes a directory.
type Config struct {
	// Entries is the total entry count (12K per GPM in Table II).
	Entries int
	// Ways is the set associativity.
	Ways int
	// GranLines is the number of consecutive cache lines covered by one
	// entry (4 in the paper's evaluation).
	GranLines int
}

// DefaultConfig returns the Table II directory: 12K entries, 4 lines per
// entry, 8-way set associative.
func DefaultConfig() Config { return Config{Entries: 12 * 1024, Ways: 8, GranLines: 4} }

// Validate reports whether the configuration is realizable.
func (c Config) Validate() error {
	switch {
	case c.Entries <= 0:
		return fmt.Errorf("directory: Entries %d must be positive", c.Entries)
	case c.Ways <= 0:
		return fmt.Errorf("directory: Ways %d must be positive", c.Ways)
	case c.Entries%c.Ways != 0:
		return fmt.Errorf("directory: Entries %d not divisible by Ways %d", c.Entries, c.Ways)
	case c.GranLines <= 0 || c.GranLines&(c.GranLines-1) != 0:
		return fmt.Errorf("directory: GranLines %d must be a positive power of two", c.GranLines)
	}
	return nil
}

// Stats counts directory events.
type Stats struct {
	Allocs uint64 // entries newly allocated
	Evicts uint64 // entries displaced by capacity/conflict
	Drops  uint64 // entries invalidated by protocol transitions
	Hits   uint64
	Misses uint64
	// EvictedSharerLines accumulates sharers × GranLines over evictions,
	// the numerator of paper Fig. 10.
	EvictedSharerLines uint64
}

// Dir is a set-associative coherence directory.
type Dir struct {
	cfg     Config
	sets    [][]Entry
	numSets uint64
	clock   uint64
	live    int

	Stats Stats
}

// New builds a directory; it panics on an invalid configuration.
func New(cfg Config) *Dir {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.Entries / cfg.Ways
	d := &Dir{cfg: cfg, numSets: uint64(numSets)}
	d.sets = make([][]Entry, numSets)
	for i := range d.sets {
		d.sets[i] = make([]Entry, cfg.Ways)
	}
	return d
}

// Config returns the directory's geometry.
func (d *Dir) Config() Config { return d.cfg }

// Live returns the number of Valid entries.
func (d *Dir) Live() int { return d.live }

// RegionOf maps a cache line to its tracking region.
func (d *Dir) RegionOf(l topo.Line) Region { return Region(uint64(l) / uint64(d.cfg.GranLines)) }

// FirstLine returns the first cache line of a region.
func (d *Dir) FirstLine(r Region) topo.Line { return topo.Line(uint64(r) * uint64(d.cfg.GranLines)) }

func (d *Dir) setOf(r Region) []Entry { return d.sets[uint64(r)%d.numSets] }

// Lookup probes the directory without allocating.
func (d *Dir) Lookup(r Region) (*Entry, bool) {
	set := d.setOf(r)
	for i := range set {
		if set[i].valid && set[i].Region == r {
			d.clock++
			set[i].lru = d.clock
			d.Stats.Hits++
			return &set[i], true
		}
	}
	d.Stats.Misses++
	return nil, false
}

// Ensure returns the entry for region r, allocating it (state I→V) if
// absent. When allocation displaces a Valid entry, a copy of the victim
// is returned so the caller can send invalidations to its sharers, per
// Table I's "Replace Dir Entry" column.
func (d *Dir) Ensure(r Region) (*Entry, *Entry) {
	set := d.setOf(r)
	d.clock++
	for i := range set {
		if set[i].valid && set[i].Region == r {
			set[i].lru = d.clock
			d.Stats.Hits++
			return &set[i], nil
		}
	}
	d.Stats.Misses++
	victimIdx := -1
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
	}
	var victim *Entry
	if victimIdx == -1 {
		victimIdx = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victimIdx].lru {
				victimIdx = i
			}
		}
		v := set[victimIdx]
		victim = &v
		d.Stats.Evicts++
		d.Stats.EvictedSharerLines += uint64(v.Sharers.Count() * d.cfg.GranLines)
		d.live--
	}
	set[victimIdx] = Entry{Region: r, valid: true, lru: d.clock}
	d.live++
	d.Stats.Allocs++
	return &set[victimIdx], victim
}

// Drop transitions an entry to Invalid (removing it), per the V→I
// transitions of Table I. It reports whether the entry was present.
func (d *Dir) Drop(r Region) bool {
	set := d.setOf(r)
	for i := range set {
		if set[i].valid && set[i].Region == r {
			set[i] = Entry{}
			d.live--
			d.Stats.Drops++
			return true
		}
	}
	return false
}

// Snapshot returns a copy of every Valid entry sorted by region — a
// deterministic view of the directory state for differs and tests,
// independent of set/way placement. Unlike Lookup it never touches LRU
// or hit/miss statistics.
func (d *Dir) Snapshot() []Entry {
	out := make([]Entry, 0, d.live)
	d.ForEach(func(e *Entry) { out = append(out, *e) })
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// ForEach visits every Valid entry.
func (d *Dir) ForEach(fn func(*Entry)) {
	for s := range d.sets {
		for i := range d.sets[s] {
			if d.sets[s][i].valid {
				fn(&d.sets[s][i])
			}
		}
	}
}

// StorageBits returns the storage cost of one directory entry in bits,
// the Section VII-C hardware-cost model: 1 state bit, the address tag,
// and one bit per trackable sharer.
func StorageBits(tagBits, maxSharers int) int { return 1 + tagBits + maxSharers }

// StorageBytes returns the total directory storage in bytes for the
// given entry count, Section VII-C's 84KB-per-GPM figure.
func StorageBytes(entries, tagBits, maxSharers int) int {
	return entries * StorageBits(tagBits, maxSharers) / 8
}
