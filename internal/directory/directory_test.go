package directory

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCfg() Config { return Config{Entries: 32, Ways: 4, GranLines: 4} }

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Entries: 0, Ways: 4, GranLines: 4},
		{Entries: 32, Ways: 0, GranLines: 4},
		{Entries: 33, Ways: 4, GranLines: 4},
		{Entries: 32, Ways: 4, GranLines: 3},
		{Entries: 32, Ways: 4, GranLines: 0},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	c := DefaultConfig()
	if c.Entries != 12*1024 {
		t.Errorf("Entries = %d, want 12K", c.Entries)
	}
	if c.GranLines != 4 {
		t.Errorf("GranLines = %d, want 4 (each entry covers 4 cache lines)", c.GranLines)
	}
}

func TestSharerBits(t *testing.T) {
	var s Sharers
	s = s.With(GPMBit(2)).With(GPUBit(1))
	if !s.Has(GPMBit(2)) || !s.Has(GPUBit(1)) {
		t.Fatal("Has failed on set bits")
	}
	if s.Has(GPMBit(1)) || s.Has(GPUBit(2)) {
		t.Fatal("Has true on unset bits")
	}
	if s.Count() != 2 {
		t.Fatalf("Count = %d", s.Count())
	}
	s = s.Without(GPMBit(2))
	if s.Has(GPMBit(2)) || s.Count() != 1 {
		t.Fatal("Without failed")
	}
	if s.IsEmpty() {
		t.Fatal("IsEmpty true with a GPU sharer")
	}
}

func TestSharerIteration(t *testing.T) {
	s := GPMBit(0).With(GPMBit(3)).With(GPUBit(2)).With(GPUBit(5))
	var gpms, gpus []int
	s.GPMs(func(i int) { gpms = append(gpms, i) })
	s.GPUs(func(j int) { gpus = append(gpus, j) })
	if len(gpms) != 2 || gpms[0] != 0 || gpms[1] != 3 {
		t.Fatalf("GPMs = %v", gpms)
	}
	if len(gpus) != 2 || gpus[0] != 2 || gpus[1] != 5 {
		t.Fatalf("GPUs = %v", gpus)
	}
	if s.String() != "[GPM0 GPM3 GPU2 GPU5]" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestSharerBitPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { GPMBit(-1) },
		func() { GPMBit(MaxSharerIDs) },
		func() { GPUBit(-1) },
		func() { GPUBit(MaxSharerIDs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range sharer bit did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestRegionMapping(t *testing.T) {
	d := New(smallCfg())
	if d.RegionOf(0) != 0 || d.RegionOf(3) != 0 || d.RegionOf(4) != 1 {
		t.Fatal("RegionOf wrong at granularity 4")
	}
	if d.FirstLine(2) != 8 {
		t.Fatalf("FirstLine(2) = %d", d.FirstLine(2))
	}
}

func TestEnsureAllocatesAndTracks(t *testing.T) {
	d := New(smallCfg())
	e, victim := d.Ensure(10)
	if victim != nil {
		t.Fatal("victim from empty set")
	}
	e.Sharers = e.Sharers.With(GPMBit(1))
	e2, ok := d.Lookup(10)
	if !ok || !e2.Sharers.Has(GPMBit(1)) {
		t.Fatal("Lookup lost sharer state")
	}
	if d.Live() != 1 {
		t.Fatalf("Live = %d", d.Live())
	}
}

func TestEvictionReturnsVictimWithSharers(t *testing.T) {
	d := New(smallCfg()) // 8 sets × 4 ways
	sets := Region(d.cfg.Entries / d.cfg.Ways)
	// Fill set 0 with 4 regions, each with sharers.
	for i := 0; i < 4; i++ {
		e, v := d.Ensure(Region(i) * sets)
		if v != nil {
			t.Fatal("unexpected victim while filling")
		}
		e.Sharers = GPMBit(i)
	}
	_, victim := d.Ensure(4 * sets)
	if victim == nil {
		t.Fatal("no victim from full set")
	}
	if victim.Region != 0 || !victim.Sharers.Has(GPMBit(0)) {
		t.Fatalf("victim = %+v, want region 0 with GPM0", victim)
	}
	if d.Stats.Evicts != 1 {
		t.Fatalf("Evicts = %d", d.Stats.Evicts)
	}
	// Fig. 10 numerator: 1 sharer × 4 lines.
	if d.Stats.EvictedSharerLines != 4 {
		t.Fatalf("EvictedSharerLines = %d, want 4", d.Stats.EvictedSharerLines)
	}
}

func TestLRUVictimChoice(t *testing.T) {
	d := New(smallCfg())
	sets := Region(d.cfg.Entries / d.cfg.Ways)
	for i := 0; i < 4; i++ {
		d.Ensure(Region(i) * sets)
	}
	d.Lookup(0) // refresh region 0
	_, victim := d.Ensure(9 * sets)
	if victim == nil || victim.Region != 1*sets {
		t.Fatalf("victim = %+v, want region %d (LRU)", victim, sets)
	}
}

func TestDrop(t *testing.T) {
	d := New(smallCfg())
	d.Ensure(5)
	if !d.Drop(5) {
		t.Fatal("Drop missed present entry")
	}
	if d.Drop(5) {
		t.Fatal("Drop hit absent entry")
	}
	if d.Live() != 0 || d.Stats.Drops != 1 {
		t.Fatalf("Live=%d Drops=%d", d.Live(), d.Stats.Drops)
	}
}

func TestForEach(t *testing.T) {
	d := New(smallCfg())
	for r := Region(0); r < 10; r++ {
		d.Ensure(r)
	}
	n := 0
	d.ForEach(func(*Entry) { n++ })
	if n != 10 {
		t.Fatalf("ForEach visited %d, want 10", n)
	}
}

// Property: Live never exceeds capacity and matches a recount.
func TestLiveInvariant(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(smallCfg())
		for i := 0; i < 400; i++ {
			r := Region(rng.Intn(64))
			switch rng.Intn(3) {
			case 0, 1:
				d.Ensure(r)
			case 2:
				d.Drop(r)
			}
			if d.Live() > d.cfg.Entries {
				return false
			}
		}
		n := 0
		d.ForEach(func(*Entry) { n++ })
		return n == d.Live()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestStorageCost reproduces Section VII-C: 48-bit tags + 1 state bit +
// 6 sharer bits = 55 bits per entry; 12K entries ≈ 84KB per GPM; ~2.7%
// of a 3MB L2 slice.
func TestStorageCost(t *testing.T) {
	if got := StorageBits(48, 6); got != 55 {
		t.Fatalf("StorageBits = %d, want 55", got)
	}
	total := StorageBytes(12*1024, 48, 6)
	if total < 82*1024 || total > 86*1024 {
		t.Fatalf("StorageBytes = %d, want ≈84KB", total)
	}
	l2Slice := 3 << 20 // 12MB per GPU / 4 GPMs
	frac := float64(total) / float64(l2Slice)
	if frac < 0.025 || frac > 0.029 {
		t.Fatalf("directory cost fraction = %.4f, want ≈2.7%%", frac)
	}
}

// TestSnapshot: region-sorted copies of the valid entries, no stat or
// LRU side effects.
func TestSnapshot(t *testing.T) {
	d := New(Config{Entries: 8, Ways: 2, GranLines: 1})
	for _, r := range []Region{9, 2, 5} {
		e, _ := d.Ensure(r)
		e.Sharers = GPMBit(int(r % 3))
	}
	pre := d.Stats
	snap := d.Snapshot()
	if d.Stats != pre {
		t.Fatalf("Snapshot changed stats: %+v → %+v", pre, d.Stats)
	}
	if len(snap) != 3 || snap[0].Region != 2 || snap[1].Region != 5 || snap[2].Region != 9 {
		t.Fatalf("snapshot = %+v, want regions 2,5,9 in order", snap)
	}
	for _, e := range snap {
		if !e.Sharers.Has(GPMBit(int(e.Region % 3))) {
			t.Fatalf("entry %d lost its sharers: %v", e.Region, e.Sharers)
		}
	}
	// Mutating the copies must not touch the directory.
	snap[0].Sharers = Sharers{}
	if e, ok := d.Lookup(2); !ok || e.Sharers.IsEmpty() {
		t.Fatal("snapshot aliases directory storage")
	}
}

func BenchmarkEnsure(b *testing.B) {
	d := New(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Ensure(Region(i % 20000))
	}
}
