package proto

import (
	"testing"

	"hmg/internal/directory"
	"hmg/internal/topo"
)

func ctrl() *DirCtrl {
	return NewDirCtrl(directory.Config{Entries: 16, Ways: 4, GranLines: 4})
}

// TestTableI_RemoteLoadFromI covers: state I, remote load → add s, →V.
func TestTableI_RemoteLoadFromI(t *testing.T) {
	c := ctrl()
	_, evs := c.RemoteLoad(0, GPMRequester(2))
	if evs != nil {
		t.Fatal("eviction from empty directory")
	}
	e, ok := c.Dir.Lookup(0)
	if !ok {
		t.Fatal("entry not allocated (I→V)")
	}
	if !e.Sharers.Has(directory.GPMBit(2)) || e.Sharers.Count() != 1 {
		t.Fatalf("sharers = %v, want [GPM2]", e.Sharers)
	}
}

// TestTableI_RemoteLoadFromV covers: state V, remote load → add s.
func TestTableI_RemoteLoadFromV(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	c.RemoteLoad(1, GPMRequester(3)) // same region (granularity 4)
	e, _ := c.Dir.Lookup(0)
	if e.Sharers.Count() != 2 || !e.Sharers.Has(directory.GPMBit(1)) || !e.Sharers.Has(directory.GPMBit(3)) {
		t.Fatalf("sharers = %v, want [GPM1 GPM3]", e.Sharers)
	}
	if c.Dir.Live() != 1 {
		t.Fatalf("Live = %d; lines 0 and 1 share one region", c.Dir.Live())
	}
}

// TestTableI_RemoteStoreFromI covers: state I, remote store → add s, →V,
// no invalidations.
func TestTableI_RemoteStoreFromI(t *testing.T) {
	c := ctrl()
	inv, _, _ := c.RemoteStore(0, GPMRequester(2))
	if inv != nil {
		t.Fatalf("invalidations from state I: %v", inv)
	}
	e, ok := c.Dir.Lookup(0)
	if !ok || !e.Sharers.Has(directory.GPMBit(2)) {
		t.Fatal("store did not allocate and track requester")
	}
	if c.StoresSeen != 1 || c.StoresSharedData != 0 || c.StoresWithInvs != 0 {
		t.Fatalf("stats = seen %d shared %d withInvs %d", c.StoresSeen, c.StoresSharedData, c.StoresWithInvs)
	}
}

// TestTableI_RemoteStoreFromV covers: state V, remote store → add s, inv
// other sharers (but not the requester).
func TestTableI_RemoteStoreFromV(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	c.RemoteLoad(0, GPMRequester(3))
	c.RemoteLoad(0, GPURequester(2)) // HMG sys-home mixes GPM and GPU sharers
	inv, _, _ := c.RemoteStore(0, GPMRequester(1))
	if len(inv) != 2 {
		t.Fatalf("invalidated %v, want GPM3 and GPU2", inv)
	}
	seenGPM3, seenGPU2 := false, false
	for _, tg := range inv {
		if !tg.IsGPU && tg.ID == 3 {
			seenGPM3 = true
		}
		if tg.IsGPU && tg.ID == 2 {
			seenGPU2 = true
		}
		if !tg.IsGPU && tg.ID == 1 {
			t.Fatal("requester invalidated itself")
		}
	}
	if !seenGPM3 || !seenGPU2 {
		t.Fatalf("targets = %v", inv)
	}
	e, _ := c.Dir.Lookup(0)
	if e.Sharers.Count() != 1 || !e.Sharers.Has(directory.GPMBit(1)) {
		t.Fatalf("post-store sharers = %v, want only requester", e.Sharers)
	}
	if c.StoresWithInvs != 1 || c.LinesInvByStores != 2*4 {
		t.Fatalf("inv stats: withInvs %d lines %d", c.StoresWithInvs, c.LinesInvByStores)
	}
}

// TestTableI_LocalStoreFromV covers: state V, local store → inv all
// sharers, →I.
func TestTableI_LocalStoreFromV(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	c.RemoteLoad(0, GPURequester(3))
	inv := c.LocalStore(0)
	if len(inv) != 2 {
		t.Fatalf("invalidated %d sharers, want 2", len(inv))
	}
	if _, ok := c.Dir.Lookup(0); ok {
		t.Fatal("entry survived local store (want →I)")
	}
}

// TestTableI_LocalStoreFromI covers: state I, local store → no action.
func TestTableI_LocalStoreFromI(t *testing.T) {
	c := ctrl()
	if inv := c.LocalStore(0); inv != nil {
		t.Fatalf("invalidations from state I: %v", inv)
	}
	if c.Dir.Live() != 0 {
		t.Fatal("local store allocated an entry")
	}
}

// TestTableI_ReplaceDirEntry covers: eviction → inv all sharers, →I.
func TestTableI_ReplaceDirEntry(t *testing.T) {
	c := ctrl() // 4 sets × 4 ways
	sets := uint64(4)
	gran := uint64(4)
	// Fill set 0 with 4 regions (lines spaced region-stride × numSets).
	for i := uint64(0); i < 4; i++ {
		c.RemoteLoad(lineOfRegion(i*sets, gran), GPMRequester(int(i)))
	}
	evRegion, evTargets := c.RemoteLoad(lineOfRegion(4*sets, gran), GPMRequester(7))
	if len(evTargets) != 1 || evTargets[0].ID != 0 {
		t.Fatalf("eviction targets = %v, want [GPM0]", evTargets)
	}
	if evRegion != 0 {
		t.Fatalf("evicted region = %d, want 0", evRegion)
	}
	if c.LinesInvByEvicts != 4 {
		t.Fatalf("LinesInvByEvicts = %d, want 4 (1 sharer × 4 lines)", c.LinesInvByEvicts)
	}
}

func lineOfRegion(r, gran uint64) topo.Line { return topo.Line(r * gran) }

// TestTableI_InvalidationHMGForward covers the HMG-only transition: an
// invalidation arriving at a GPU home forwards to all GPM sharers, →I.
func TestTableI_InvalidationHMGForward(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(0))
	c.RemoteLoad(0, GPMRequester(2))
	fw := c.Invalidation(c.Dir.RegionOf(0))
	if len(fw) != 2 {
		t.Fatalf("forwarded to %v, want 2 GPM sharers", fw)
	}
	if _, ok := c.Dir.Lookup(0); ok {
		t.Fatal("entry survived invalidation (want →I)")
	}
	if c.InvMsgsForwarded != 2 {
		t.Fatalf("InvMsgsForwarded = %d", c.InvMsgsForwarded)
	}
}

// TestTableI_InvalidationUntracked: invalidation of an untracked region
// forwards nothing.
func TestTableI_InvalidationUntracked(t *testing.T) {
	c := ctrl()
	if fw := c.Invalidation(9); fw != nil {
		t.Fatalf("forwarded %v for untracked region", fw)
	}
}

// TestNoTransientStates verifies the structural claim of the paper: the
// directory entry carries exactly a sharer set; every transition
// completes synchronously with no intermediate state.
func TestNoTransientStates(t *testing.T) {
	c := ctrl()
	// Interleave operations arbitrarily; after each, the entry is either
	// absent (I) or present (V) — there is nothing else to observe.
	ops := []func(){
		func() { c.RemoteLoad(0, GPMRequester(1)) },
		func() { c.RemoteStore(0, GPMRequester(2)) },
		func() { c.LocalStore(0) },
		func() { c.RemoteLoad(0, GPURequester(1)) },
		func() { c.Invalidation(c.Dir.RegionOf(0)) },
	}
	for i, op := range ops {
		op()
		_, present := c.Dir.Lookup(0)
		wantPresent := []bool{true, true, false, true, false}[i]
		if present != wantPresent {
			t.Fatalf("after op %d: present=%v, want %v", i, present, wantPresent)
		}
	}
}

func TestDropSharerDowngrade(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	c.RemoteLoad(0, GPMRequester(2))
	c.DropSharer(0, GPMRequester(1))
	e, _ := c.Dir.Lookup(0)
	if e.Sharers.Has(directory.GPMBit(1)) {
		t.Fatal("downgrade did not drop sharer")
	}
	if !e.Sharers.Has(directory.GPMBit(2)) {
		t.Fatal("downgrade dropped wrong sharer")
	}
	// Downgrade of untracked line is a no-op.
	c.DropSharer(999, GPMRequester(1))
}

// TestStoreToOwnSharedLine: a store by the only sharer must not
// invalidate anyone.
func TestStoreToOwnSharedLine(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	inv, _, _ := c.RemoteStore(0, GPMRequester(1))
	if len(inv) != 0 {
		t.Fatalf("self-store invalidated %v", inv)
	}
	if c.StoresSharedData != 1 {
		t.Fatalf("StoresSharedData = %d (entry existed)", c.StoresSharedData)
	}
}

// TestStoresSharedDataEmptySharers pins the Fig. 9 semantics for
// entries whose sharer set was emptied by DropSharer downgrades: the
// entry is still Valid, but it tracks no remote copy, so stores to it
// are not stores to shared data — on the local path and the remote
// path alike.
func TestStoresSharedDataEmptySharers(t *testing.T) {
	t.Run("LocalStore", func(t *testing.T) {
		c := ctrl()
		c.RemoteLoad(0, GPMRequester(1))
		c.DropSharer(0, GPMRequester(1))
		if e, ok := c.Dir.Lookup(0); !ok || !e.Sharers.IsEmpty() {
			t.Fatal("setup: want a valid entry with zero sharers")
		}
		inv := c.LocalStore(0)
		if len(inv) != 0 {
			t.Fatalf("invalidations for an empty sharer set: %v", inv)
		}
		if c.StoresSharedData != 0 {
			t.Fatalf("StoresSharedData = %d, want 0 (nobody tracked)", c.StoresSharedData)
		}
		if _, ok := c.Dir.Lookup(0); ok {
			t.Fatal("local store must still transition V→I")
		}
	})
	t.Run("RemoteStore", func(t *testing.T) {
		c := ctrl()
		c.RemoteLoad(0, GPMRequester(1))
		c.DropSharer(0, GPMRequester(1))
		inv, _, _ := c.RemoteStore(0, GPMRequester(2))
		if len(inv) != 0 || c.StoresSharedData != 0 {
			t.Fatalf("empty-entry store: inv=%v shared=%d, want none/0", inv, c.StoresSharedData)
		}
		// The store re-populated the entry; a second store by another
		// GPM now really does hit shared data.
		if _, _, _ = c.RemoteStore(0, GPMRequester(3)); c.StoresSharedData != 1 {
			t.Fatalf("StoresSharedData = %d after store to re-shared entry, want 1", c.StoresSharedData)
		}
	})
}

// TestMutationCountersIntendedTraffic pins the contract that every
// mutation-drop path counts the protocol-intended traffic: a Mutation
// bit suppresses the returned messages, never the Fig. 9/10 counters.
func TestMutationCountersIntendedTraffic(t *testing.T) {
	t.Run("MutDropStoreInv", func(t *testing.T) {
		c := ctrl()
		c.Mutate = MutDropStoreInv
		c.RemoteLoad(0, GPMRequester(1))
		c.RemoteLoad(0, GPMRequester(2))
		inv, _, _ := c.RemoteStore(0, GPMRequester(1))
		if inv != nil {
			t.Fatalf("mutated remote store returned %v", inv)
		}
		if c.StoresWithInvs != 1 || c.InvMsgsByStores != 1 || c.LinesInvByStores != 4 {
			t.Fatalf("remote-store counters: withInvs=%d msgs=%d lines=%d, want 1/1/4",
				c.StoresWithInvs, c.InvMsgsByStores, c.LinesInvByStores)
		}
		c.RemoteLoad(0, GPMRequester(3))
		if got := c.LocalStore(0); got != nil {
			t.Fatalf("mutated local store returned %v", got)
		}
		if c.StoresWithInvs != 2 || c.InvMsgsByStores != 3 {
			t.Fatalf("local-store counters: withInvs=%d msgs=%d, want 2/3",
				c.StoresWithInvs, c.InvMsgsByStores)
		}
	})
	t.Run("MutDropInvForward", func(t *testing.T) {
		c := ctrl()
		c.Mutate = MutDropInvForward
		c.RemoteLoad(0, GPMRequester(0))
		c.RemoteLoad(0, GPMRequester(2))
		if fw := c.Invalidation(c.Dir.RegionOf(0)); fw != nil {
			t.Fatalf("mutated invalidation forwarded %v", fw)
		}
		if c.InvMsgsForwarded != 2 {
			t.Fatalf("InvMsgsForwarded = %d, want 2 (intended fan-out)", c.InvMsgsForwarded)
		}
		if _, ok := c.Dir.Lookup(0); ok {
			t.Fatal("entry survived mutated invalidation (want →I)")
		}
	})
	t.Run("MutDropEvictInv", func(t *testing.T) {
		c := ctrl() // 4 sets × 4 ways
		c.Mutate = MutDropEvictInv
		sets, gran := uint64(4), uint64(4)
		// Fill set 1 so the victim region is nonzero and thus
		// distinguishable from the no-victim zero value.
		for i := uint64(0); i < 4; i++ {
			c.RemoteLoad(lineOfRegion(1+i*sets, gran), GPMRequester(int(i)))
		}
		evR, evT := c.RemoteLoad(lineOfRegion(1+4*sets, gran), GPMRequester(7))
		if evT != nil {
			t.Fatalf("mutated eviction returned targets %v", evT)
		}
		if evR != 1 {
			t.Fatalf("evict region = %d, want the real victim region 1", evR)
		}
		if c.InvMsgsByEvicts != 1 || c.LinesInvByEvicts != 4 {
			t.Fatalf("evict counters: msgs=%d lines=%d, want 1/4",
				c.InvMsgsByEvicts, c.LinesInvByEvicts)
		}
	})
}

// TestEvictionFanoutAcrossGranularities covers the LinesInvByEvicts /
// InvMsgsByEvicts accounting: messages count sharer targets, lines
// count targets × the tracking granularity, accumulating across
// evictions.
func TestEvictionFanoutAcrossGranularities(t *testing.T) {
	for _, gran := range []int{1, 2, 4, 8} {
		c := NewDirCtrl(directory.Config{Entries: 8, Ways: 2, GranLines: gran})
		sets := uint64(4)
		// Two sharers on the eventual victim region, one on the next.
		c.RemoteLoad(lineOfRegion(0, uint64(gran)), GPMRequester(1))
		c.RemoteLoad(lineOfRegion(0, uint64(gran)), GPURequester(2))
		c.RemoteLoad(lineOfRegion(sets, uint64(gran)), GPMRequester(3))
		// Third region in the same set displaces the LRU victim (region 0).
		evR, evT := c.RemoteLoad(lineOfRegion(2*sets, uint64(gran)), GPMRequester(4))
		if evR != 0 || len(evT) != 2 {
			t.Fatalf("gran %d: evicted region %d targets %v, want region 0 with 2 targets", gran, evR, evT)
		}
		if c.InvMsgsByEvicts != 2 || c.LinesInvByEvicts != uint64(2*gran) {
			t.Fatalf("gran %d: msgs=%d lines=%d, want 2/%d", gran, c.InvMsgsByEvicts, c.LinesInvByEvicts, 2*gran)
		}
		// A second eviction accumulates on top.
		evR, evT = c.RemoteLoad(lineOfRegion(3*sets, uint64(gran)), GPMRequester(5))
		if evR != directory.Region(sets) || len(evT) != 1 {
			t.Fatalf("gran %d: second eviction region %d targets %v", gran, evR, evT)
		}
		if c.InvMsgsByEvicts != 3 || c.LinesInvByEvicts != uint64(3*gran) {
			t.Fatalf("gran %d: accumulated msgs=%d lines=%d, want 3/%d", gran, c.InvMsgsByEvicts, c.LinesInvByEvicts, 3*gran)
		}
	}
}

// TestRequesterInvTargetRoundTrip: a requester recorded as a sharer
// comes back out as the invalidation target naming the same node in the
// same id space — GPM requesters as GPM targets, GPU requesters as GPU
// targets — across the whole bit range of each space.
func TestRequesterInvTargetRoundTrip(t *testing.T) {
	reqs := []Requester{
		GPMRequester(0), GPMRequester(5), GPMRequester(31),
		GPURequester(0), GPURequester(7), GPURequester(31),
	}
	for _, r := range reqs {
		got := TargetsOf(r.Bit())
		if len(got) != 1 || got[0].IsGPU != r.IsGPU || got[0].ID != r.ID {
			t.Fatalf("TargetsOf(%v.Bit()) = %v, want the same node back", r, got)
		}
		// Through the directory: record as sharer, invalidate via the
		// local-store arm, and expect the identical target.
		c := ctrl()
		c.RemoteLoad(0, r)
		inv := c.LocalStore(0)
		if len(inv) != 1 || inv[0] != (InvTarget{IsGPU: r.IsGPU, ID: r.ID}) {
			t.Fatalf("round trip via directory for %v: got %v", r, inv)
		}
	}
}
