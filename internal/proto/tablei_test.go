package proto

import (
	"testing"

	"hmg/internal/directory"
	"hmg/internal/topo"
)

func ctrl() *DirCtrl {
	return NewDirCtrl(directory.Config{Entries: 16, Ways: 4, GranLines: 4})
}

// TestTableI_RemoteLoadFromI covers: state I, remote load → add s, →V.
func TestTableI_RemoteLoadFromI(t *testing.T) {
	c := ctrl()
	_, evs := c.RemoteLoad(0, GPMRequester(2))
	if evs != nil {
		t.Fatal("eviction from empty directory")
	}
	e, ok := c.Dir.Lookup(0)
	if !ok {
		t.Fatal("entry not allocated (I→V)")
	}
	if !e.Sharers.Has(directory.GPMBit(2)) || e.Sharers.Count() != 1 {
		t.Fatalf("sharers = %v, want [GPM2]", e.Sharers)
	}
}

// TestTableI_RemoteLoadFromV covers: state V, remote load → add s.
func TestTableI_RemoteLoadFromV(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	c.RemoteLoad(1, GPMRequester(3)) // same region (granularity 4)
	e, _ := c.Dir.Lookup(0)
	if e.Sharers.Count() != 2 || !e.Sharers.Has(directory.GPMBit(1)) || !e.Sharers.Has(directory.GPMBit(3)) {
		t.Fatalf("sharers = %v, want [GPM1 GPM3]", e.Sharers)
	}
	if c.Dir.Live() != 1 {
		t.Fatalf("Live = %d; lines 0 and 1 share one region", c.Dir.Live())
	}
}

// TestTableI_RemoteStoreFromI covers: state I, remote store → add s, →V,
// no invalidations.
func TestTableI_RemoteStoreFromI(t *testing.T) {
	c := ctrl()
	inv, _, _ := c.RemoteStore(0, GPMRequester(2))
	if inv != nil {
		t.Fatalf("invalidations from state I: %v", inv)
	}
	e, ok := c.Dir.Lookup(0)
	if !ok || !e.Sharers.Has(directory.GPMBit(2)) {
		t.Fatal("store did not allocate and track requester")
	}
	if c.StoresSeen != 1 || c.StoresSharedData != 0 || c.StoresWithInvs != 0 {
		t.Fatalf("stats = seen %d shared %d withInvs %d", c.StoresSeen, c.StoresSharedData, c.StoresWithInvs)
	}
}

// TestTableI_RemoteStoreFromV covers: state V, remote store → add s, inv
// other sharers (but not the requester).
func TestTableI_RemoteStoreFromV(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	c.RemoteLoad(0, GPMRequester(3))
	c.RemoteLoad(0, GPURequester(2)) // HMG sys-home mixes GPM and GPU sharers
	inv, _, _ := c.RemoteStore(0, GPMRequester(1))
	if len(inv) != 2 {
		t.Fatalf("invalidated %v, want GPM3 and GPU2", inv)
	}
	seenGPM3, seenGPU2 := false, false
	for _, tg := range inv {
		if !tg.IsGPU && tg.ID == 3 {
			seenGPM3 = true
		}
		if tg.IsGPU && tg.ID == 2 {
			seenGPU2 = true
		}
		if !tg.IsGPU && tg.ID == 1 {
			t.Fatal("requester invalidated itself")
		}
	}
	if !seenGPM3 || !seenGPU2 {
		t.Fatalf("targets = %v", inv)
	}
	e, _ := c.Dir.Lookup(0)
	if e.Sharers.Count() != 1 || !e.Sharers.Has(directory.GPMBit(1)) {
		t.Fatalf("post-store sharers = %v, want only requester", e.Sharers)
	}
	if c.StoresWithInvs != 1 || c.LinesInvByStores != 2*4 {
		t.Fatalf("inv stats: withInvs %d lines %d", c.StoresWithInvs, c.LinesInvByStores)
	}
}

// TestTableI_LocalStoreFromV covers: state V, local store → inv all
// sharers, →I.
func TestTableI_LocalStoreFromV(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	c.RemoteLoad(0, GPURequester(3))
	inv := c.LocalStore(0)
	if len(inv) != 2 {
		t.Fatalf("invalidated %d sharers, want 2", len(inv))
	}
	if _, ok := c.Dir.Lookup(0); ok {
		t.Fatal("entry survived local store (want →I)")
	}
}

// TestTableI_LocalStoreFromI covers: state I, local store → no action.
func TestTableI_LocalStoreFromI(t *testing.T) {
	c := ctrl()
	if inv := c.LocalStore(0); inv != nil {
		t.Fatalf("invalidations from state I: %v", inv)
	}
	if c.Dir.Live() != 0 {
		t.Fatal("local store allocated an entry")
	}
}

// TestTableI_ReplaceDirEntry covers: eviction → inv all sharers, →I.
func TestTableI_ReplaceDirEntry(t *testing.T) {
	c := ctrl() // 4 sets × 4 ways
	sets := uint64(4)
	gran := uint64(4)
	// Fill set 0 with 4 regions (lines spaced region-stride × numSets).
	for i := uint64(0); i < 4; i++ {
		c.RemoteLoad(lineOfRegion(i*sets, gran), GPMRequester(int(i)))
	}
	evRegion, evTargets := c.RemoteLoad(lineOfRegion(4*sets, gran), GPMRequester(7))
	if len(evTargets) != 1 || evTargets[0].ID != 0 {
		t.Fatalf("eviction targets = %v, want [GPM0]", evTargets)
	}
	if evRegion != 0 {
		t.Fatalf("evicted region = %d, want 0", evRegion)
	}
	if c.LinesInvByEvicts != 4 {
		t.Fatalf("LinesInvByEvicts = %d, want 4 (1 sharer × 4 lines)", c.LinesInvByEvicts)
	}
}

func lineOfRegion(r, gran uint64) topo.Line { return topo.Line(r * gran) }

// TestTableI_InvalidationHMGForward covers the HMG-only transition: an
// invalidation arriving at a GPU home forwards to all GPM sharers, →I.
func TestTableI_InvalidationHMGForward(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(0))
	c.RemoteLoad(0, GPMRequester(2))
	fw := c.Invalidation(c.Dir.RegionOf(0))
	if len(fw) != 2 {
		t.Fatalf("forwarded to %v, want 2 GPM sharers", fw)
	}
	if _, ok := c.Dir.Lookup(0); ok {
		t.Fatal("entry survived invalidation (want →I)")
	}
	if c.InvMsgsForwarded != 2 {
		t.Fatalf("InvMsgsForwarded = %d", c.InvMsgsForwarded)
	}
}

// TestTableI_InvalidationUntracked: invalidation of an untracked region
// forwards nothing.
func TestTableI_InvalidationUntracked(t *testing.T) {
	c := ctrl()
	if fw := c.Invalidation(9); fw != nil {
		t.Fatalf("forwarded %v for untracked region", fw)
	}
}

// TestNoTransientStates verifies the structural claim of the paper: the
// directory entry carries exactly a sharer set; every transition
// completes synchronously with no intermediate state.
func TestNoTransientStates(t *testing.T) {
	c := ctrl()
	// Interleave operations arbitrarily; after each, the entry is either
	// absent (I) or present (V) — there is nothing else to observe.
	ops := []func(){
		func() { c.RemoteLoad(0, GPMRequester(1)) },
		func() { c.RemoteStore(0, GPMRequester(2)) },
		func() { c.LocalStore(0) },
		func() { c.RemoteLoad(0, GPURequester(1)) },
		func() { c.Invalidation(c.Dir.RegionOf(0)) },
	}
	for i, op := range ops {
		op()
		_, present := c.Dir.Lookup(0)
		wantPresent := []bool{true, true, false, true, false}[i]
		if present != wantPresent {
			t.Fatalf("after op %d: present=%v, want %v", i, present, wantPresent)
		}
	}
}

func TestDropSharerDowngrade(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	c.RemoteLoad(0, GPMRequester(2))
	c.DropSharer(0, GPMRequester(1))
	e, _ := c.Dir.Lookup(0)
	if e.Sharers.Has(directory.GPMBit(1)) {
		t.Fatal("downgrade did not drop sharer")
	}
	if !e.Sharers.Has(directory.GPMBit(2)) {
		t.Fatal("downgrade dropped wrong sharer")
	}
	// Downgrade of untracked line is a no-op.
	c.DropSharer(999, GPMRequester(1))
}

// TestStoreToOwnSharedLine: a store by the only sharer must not
// invalidate anyone.
func TestStoreToOwnSharedLine(t *testing.T) {
	c := ctrl()
	c.RemoteLoad(0, GPMRequester(1))
	inv, _, _ := c.RemoteStore(0, GPMRequester(1))
	if len(inv) != 0 {
		t.Fatalf("self-store invalidated %v", inv)
	}
	if c.StoresSharedData != 1 {
		t.Fatalf("StoresSharedData = %d (entry existed)", c.StoresSharedData)
	}
}
