package proto

import (
	"strings"
	"testing"
)

func TestKindStringsAndParse(t *testing.T) {
	all := append(Kinds(), CARVE, GPUVI)
	if len(Kinds()) != 6 {
		t.Fatalf("paper configurations = %d, want 6", len(Kinds()))
	}
	for _, k := range all {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d unnamed", int(k))
		}
		back, err := ParseKind(s)
		if err != nil || back != k {
			t.Errorf("ParseKind(%q) = %v, %v", s, back, err)
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind string")
	}
	if _, err := ParseKind("zzz"); err == nil {
		t.Error("ParseKind accepted garbage")
	}
}

func TestPolicyFlags(t *testing.T) {
	cases := []struct {
		k                                      Kind
		hier, hw, remote, noCoh, classify, mca bool
	}{
		{NoRemoteCache, false, false, false, false, false, false},
		{SWNonHier, false, false, true, false, false, false},
		{SWHier, true, false, true, false, false, false},
		{NHCC, false, true, true, false, false, false},
		{HMG, true, true, true, false, false, false},
		{Ideal, true, false, true, true, false, false},
		{CARVE, false, false, true, false, true, false},
		{GPUVI, false, true, true, false, false, true},
	}
	for _, c := range cases {
		p := For(c.k)
		if p.Kind != c.k || p.Hierarchical != c.hier || p.Hardware != c.hw ||
			p.CacheRemoteGPU != c.remote || p.NoCoherence != c.noCoh ||
			p.Classify != c.classify || p.MCA != c.mca {
			t.Errorf("%v policy = %+v", c.k, p)
		}
	}
}

func TestForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("For(99) did not panic")
		}
	}()
	For(Kind(99))
}
