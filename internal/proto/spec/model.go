package spec

import (
	"sort"

	"hmg/internal/directory"
)

// Entry is one Valid entry of the spec model.
type Entry struct {
	Region  directory.Region
	Sharers directory.Sharers
}

// Model is a stateful shadow directory driven purely by the spec: a
// map of Valid regions to sharer sets, with no geometry. Replacement is
// not a protocol decision, so the model never picks victims — callers
// feed it ReplaceEntry events for whichever region the implementation's
// set-associative geometry displaced.
type Model struct {
	Table   Table
	entries map[directory.Region]directory.Sharers
}

// NewModel builds an empty shadow directory over the given table.
func NewModel(t Table) *Model {
	return &Model{Table: t, entries: map[directory.Region]directory.Sharers{}}
}

// State returns the spec state of a region: StateV with its sharer set
// when tracked, StateI otherwise.
func (m *Model) State(r directory.Region) (State, directory.Sharers) {
	if sh, ok := m.entries[r]; ok {
		return StateV, sh
	}
	return StateI, directory.Sharers{}
}

// Apply runs one event against a region and commits the outcome:
// transitions into V store the updated sharer set, transitions into I
// drop the entry.
func (m *Model) Apply(r directory.Region, ev Event) (Outcome, error) {
	st, sh := m.State(r)
	out, err := m.Table.Apply(st, sh, ev)
	if err != nil {
		return out, err
	}
	switch out.Next {
	case StateV:
		m.entries[r] = out.Sharers
	case StateI:
		delete(m.entries, r)
	default:
		panic("spec: outcome state is neither V nor I")
	}
	return out, nil
}

// DropSharer mirrors DirCtrl.DropSharer, the optional Downgrade
// bookkeeping outside Table I: remove the sharer if the region is
// tracked, leaving the entry Valid even when the set empties.
func (m *Model) DropSharer(r directory.Region, ev Event) {
	if sh, ok := m.entries[r]; ok {
		m.entries[r] = sh.Without(ev.Req.Bit())
	}
}

// Len returns the number of Valid entries.
func (m *Model) Len() int { return len(m.entries) }

// Snapshot returns the Valid entries sorted by region, matching
// directory.Dir.Snapshot for side-by-side comparison.
func (m *Model) Snapshot() []Entry {
	out := make([]Entry, 0, len(m.entries))
	for r, sh := range m.entries {
		out = append(out, Entry{Region: r, Sharers: sh})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}
