// The spec↔implementation differ: drive proto.DirCtrl and the spec
// Model side by side over one deterministic generated event sequence
// and report every transition where the two disagree — on returned
// invalidation targets, on eviction region and fan-out, on the full
// directory state after the step, or on the intended-traffic counters
// at the end of the run.
//
// Replacement victim *selection* is geometry, not protocol: the differ
// learns which region the implementation's set-associative directory
// displaced (by comparing state snapshots) and feeds the spec a
// ReplaceEntry event for that region; the spec then dictates what the
// protocol must do about it.

package spec

import (
	"fmt"

	"hmg/internal/directory"
	"hmg/internal/proto"
	"hmg/internal/topo"
)

// Divergence is one observed disagreement between DirCtrl and the spec.
type Divergence struct {
	Step  int
	Op    string
	Field string
	Impl  string
	Spec  string
}

// String implements fmt.Stringer.
func (d Divergence) String() string {
	return fmt.Sprintf("step %d %s: %s: impl %s, spec %s", d.Step, d.Op, d.Field, d.Impl, d.Spec)
}

// DiffConfig parameterizes one differ run.
type DiffConfig struct {
	Table Table
	// Dir is the implementation directory geometry; keep it small so
	// the generated sequence exercises replacement.
	Dir directory.Config
	// Mutation is injected into the DirCtrl under test (the spec side
	// never mutates) — the self-test that proves the differ has teeth.
	Mutation proto.Mutation
	Seed     uint64
	Ops      int
	// Reqs overrides the requester pool (nil for the defaults). Large
	// ids here drive both sides through the promoted sharer-set
	// representations; a hierarchical table is required for GPU
	// requesters.
	Reqs []proto.Requester
}

// DefaultDiffConfig returns the configuration used by cmd/hmgspec and
// the hmgcheck spec tier: an 8-entry 2-way directory under 4096
// generated events over 16 regions, which exercises every Table I arm
// including replacement many times over.
func DefaultDiffConfig(t Table) DiffConfig {
	return DiffConfig{
		Table: t,
		Dir:   directory.Config{Entries: 8, Ways: 2, GranLines: 4},
		Seed:  1,
		Ops:   4096,
	}
}

// maxDivergences bounds the report; a diverging run usually disagrees
// on nearly every subsequent step once state has forked.
const maxDivergences = 16

// splitmix64 is the deterministic sequence generator (same construction
// as the litmus fuzzer's seed expander).
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// expectedStats are the intended-traffic counters the spec predicts.
// They accumulate pre-mutation values by construction, which is exactly
// the contract the DirCtrl counters pin.
type expectedStats struct {
	StoresSeen       uint64
	StoresSharedData uint64
	StoresWithInvs   uint64
	LinesInvByStores uint64
	LinesInvByEvicts uint64
	InvMsgsByStores  uint64
	InvMsgsByEvicts  uint64
	InvMsgsForwarded uint64
}

// Diff runs cfg.Ops generated events through a DirCtrl and the spec
// model and returns the divergences (empty means the implementation
// matches the spec over this sequence). The error return covers broken
// configurations and spec misuse, not divergences.
func Diff(cfg DiffConfig) ([]Divergence, error) {
	if err := cfg.Table.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Dir.Validate(); err != nil {
		return nil, err
	}
	impl := proto.NewDirCtrl(cfg.Dir)
	impl.Mutate = cfg.Mutation
	model := NewModel(cfg.Table)
	var want expectedStats

	// Requester pools: flat tables use global GPM ids; hierarchical
	// tables mix local GPM indices with GPU ids, as at an HMG system
	// home.
	reqs := cfg.Reqs
	if reqs == nil {
		reqs = []proto.Requester{
			proto.GPMRequester(1), proto.GPMRequester(2), proto.GPMRequester(3),
		}
		if cfg.Table.Hierarchical {
			reqs = []proto.Requester{
				proto.GPMRequester(1), proto.GPMRequester(2),
				proto.GPURequester(1), proto.GPURequester(2),
			}
		}
	}
	regions := 2 * cfg.Dir.Entries // twice capacity: replacement is routine
	gran := uint64(cfg.Dir.GranLines)

	var divs []Divergence
	report := func(step int, op, field, implVal, specVal string) {
		if len(divs) < maxDivergences {
			divs = append(divs, Divergence{Step: step, Op: op, Field: field, Impl: implVal, Spec: specVal})
		}
	}

	s := cfg.Seed
	step := 0
	for ; step < cfg.Ops && len(divs) < maxDivergences; step++ {
		r := directory.Region(splitmix64(&s) % uint64(regions))
		line := topo.Line(uint64(r) * gran) // first line of region r
		req := reqs[splitmix64(&s)%uint64(len(reqs))]
		kindRoll := splitmix64(&s) % 8
		preEvicts := impl.Dir.Stats.Evicts
		preState, preSharers := model.State(r)

		var ev Event
		var op string
		var implInv []proto.InvTarget
		var implEvR directory.Region
		var implEvT []proto.InvTarget
		comparePrimaryInv := true
		allocates := false

		switch {
		case kindRoll <= 2: // remote load
			ev = Event{Kind: RemoteLd, Req: req}
			op = fmt.Sprintf("RemoteLoad r%d %s", r, reqString(req))
			allocates = true
			comparePrimaryInv = false
			implEvR, implEvT = impl.RemoteLoad(line, req)
		case kindRoll <= 4: // remote store
			ev = Event{Kind: RemoteSt, Req: req}
			op = fmt.Sprintf("RemoteStore r%d %s", r, reqString(req))
			allocates = true
			implInv, implEvR, implEvT = impl.RemoteStore(line, req)
			want.StoresSeen++
			if preState == StateV && !preSharers.IsEmpty() {
				want.StoresSharedData++
			}
		case kindRoll == 5: // local store
			ev = Event{Kind: LocalSt}
			op = fmt.Sprintf("LocalStore r%d", r)
			implInv = impl.LocalStore(line)
			want.StoresSeen++
			if preState == StateV && !preSharers.IsEmpty() {
				want.StoresSharedData++
			}
		case kindRoll == 6 && cfg.Table.Hierarchical: // HMG-only invalidation
			ev = Event{Kind: Invalidation}
			op = fmt.Sprintf("Invalidation r%d", r)
			implInv = impl.Invalidation(r)
		default: // downgrade — bookkeeping outside Table I, mirrored on both sides
			op = fmt.Sprintf("DropSharer r%d %s", r, reqString(req))
			impl.DropSharer(line, req)
			model.DropSharer(r, Event{Req: req})
			compareSnapshots(step, op, impl, model, report)
			continue
		}

		// Replacement first: the implementation's Ensure displaces the
		// victim before recording the new sharer, so the spec applies
		// ReplaceEntry before the primary event.
		if allocates && impl.Dir.Stats.Evicts > preEvicts {
			victim, ok := findVictim(impl, model, r)
			if !ok {
				report(step, op, "evict-victim",
					"eviction with no identifiable victim region", "exactly one displaced region")
				break
			}
			out, err := model.Apply(victim, Event{Kind: ReplaceEntry})
			if err != nil {
				return divs, fmt.Errorf("step %d %s: %w", step, op, err)
			}
			want.InvMsgsByEvicts += uint64(len(out.Inv))
			want.LinesInvByEvicts += uint64(len(out.Inv)) * gran
			if implEvR != victim {
				report(step, op, "evict-region", fmt.Sprint(implEvR), fmt.Sprint(victim))
			}
			if !targetsEqual(implEvT, out.Inv) {
				report(step, op, "evict-targets", targetString(implEvT), targetString(out.Inv))
			}
		} else if len(implEvT) > 0 {
			report(step, op, "evict-targets", targetString(implEvT), "no eviction occurred")
		}

		// The primary transition.
		specOut, err := model.Apply(r, ev)
		if err != nil {
			return divs, fmt.Errorf("step %d %s: %w", step, op, err)
		}
		switch ev.Kind {
		case RemoteSt, LocalSt:
			if len(specOut.Inv) > 0 {
				want.StoresWithInvs++
				want.InvMsgsByStores += uint64(len(specOut.Inv))
				want.LinesInvByStores += uint64(len(specOut.Inv)) * gran
			}
		case Invalidation:
			want.InvMsgsForwarded += uint64(len(specOut.Inv))
		case LocalLd, RemoteLd, ReplaceEntry:
			// No store/forward counters on these arms.
		default:
			panic(fmt.Sprintf("spec: unhandled event kind %v", ev.Kind))
		}
		if comparePrimaryInv && !targetsEqual(implInv, specOut.Inv) {
			report(step, op, "inv-targets", targetString(implInv), targetString(specOut.Inv))
		}
		compareSnapshots(step, op, impl, model, report)
	}

	compareStats(step, impl, want, report)
	return divs, nil
}

// findVictim identifies the region the implementation displaced: the
// unique region the model still tracks but the implementation no
// longer does (excluding the region being allocated).
func findVictim(impl *proto.DirCtrl, model *Model, alloc directory.Region) (directory.Region, bool) {
	implHas := map[directory.Region]bool{}
	for _, e := range impl.Dir.Snapshot() {
		implHas[e.Region] = true
	}
	var victim directory.Region
	found := 0
	for _, e := range model.Snapshot() {
		if e.Region != alloc && !implHas[e.Region] {
			victim = e.Region
			found++
		}
	}
	return victim, found == 1
}

// compareSnapshots diffs the full directory state after a step.
func compareSnapshots(step int, op string, impl *proto.DirCtrl, model *Model,
	report func(step int, op, field, implVal, specVal string)) {
	is := impl.Dir.Snapshot()
	ms := model.Snapshot()
	if len(is) != len(ms) {
		report(step, op, "directory-state",
			fmt.Sprintf("%d entries", len(is)), fmt.Sprintf("%d entries", len(ms)))
		return
	}
	for i := range is {
		if is[i].Region != ms[i].Region || !is[i].Sharers.Equal(ms[i].Sharers) {
			report(step, op, "directory-state",
				fmt.Sprintf("r%d=%v", is[i].Region, is[i].Sharers),
				fmt.Sprintf("r%d=%v", ms[i].Region, ms[i].Sharers))
			return
		}
	}
}

// compareStats diffs the cumulative intended-traffic counters after the
// run: the DirCtrl counters must record what the protocol meant to
// send, with or without an injected mutation.
func compareStats(step int, impl *proto.DirCtrl, want expectedStats,
	report func(step int, op, field, implVal, specVal string)) {
	got := expectedStats{
		StoresSeen:       impl.StoresSeen,
		StoresSharedData: impl.StoresSharedData,
		StoresWithInvs:   impl.StoresWithInvs,
		LinesInvByStores: impl.LinesInvByStores,
		LinesInvByEvicts: impl.LinesInvByEvicts,
		InvMsgsByStores:  impl.InvMsgsByStores,
		InvMsgsByEvicts:  impl.InvMsgsByEvicts,
		InvMsgsForwarded: impl.InvMsgsForwarded,
	}
	if got != want {
		report(step, "final", "counters", fmt.Sprintf("%+v", got), fmt.Sprintf("%+v", want))
	}
}

func reqString(r proto.Requester) string {
	if r.IsGPU {
		return fmt.Sprintf("GPU%d", r.ID)
	}
	return fmt.Sprintf("GPM%d", r.ID)
}
