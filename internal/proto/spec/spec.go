// Package spec is the machine-readable encoding of paper Table I: the
// NHCC/HMG directory transition table expressed as declarative guarded
// rules — state × event × requester/sharer guard → {next state,
// sharer-set update, emitted invalidations} — instead of prose above
// the implementation.
//
// Three consumers sit on top of the encoding:
//
//   - Model (model.go): a pure spec-driven shadow directory that
//     applies the table to region → sharer-set state.
//   - Enumerate (enum.go): a small-model exhaustive enumerator that
//     walks every reachable directory state of a 2-GPU × 2-GPM
//     configuration and certifies the paper's structural claims: only
//     V and I are ever reachable (zero transient states), nothing is
//     tracked without a Valid entry, every V→I transition invalidates
//     the full sharer set, and an HMG system-home invalidation of a
//     GPU sharer forwards to that GPU's GPM sharers.
//   - Diff (diff.go): a spec↔implementation differ that drives
//     proto.DirCtrl and the spec side by side over the same generated
//     event sequence and reports every transition where next state,
//     sharer sets, invalidation targets, or intended-traffic counters
//     disagree.
//
// RenderMarkdown (render.go) renders the table for DESIGN.md, so the
// documented Table I cannot drift from the executable one.
package spec

import (
	"fmt"

	"hmg/internal/directory"
	"hmg/internal/proto"
)

// State is a directory entry's stable state. Table I has exactly two;
// the absence of transient states is the paper's headline protocol
// claim and is what the enumerator certifies.
type State uint8

const (
	// StateI is Invalid: no entry, nothing tracked.
	StateI State = iota
	// StateV is Valid: entry present, sharer set tracked.
	StateV
)

var stateNames = [...]string{StateI: "I", StateV: "V"}

// String implements fmt.Stringer.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// EventKind is a Table I column: the protocol event arriving at a home
// node's directory.
type EventKind uint8

const (
	// LocalLd is a load by the home GPM itself.
	LocalLd EventKind = iota
	// LocalSt is a store or atomic by the home GPM itself.
	LocalSt
	// RemoteLd is a load request from another node.
	RemoteLd
	// RemoteSt is a store or atomic request from another node.
	RemoteSt
	// ReplaceEntry is capacity/conflict replacement of the entry.
	ReplaceEntry
	// Invalidation is a system-home invalidation arriving at an HMG GPU
	// home node — the one transition HMG adds over NHCC.
	Invalidation

	numEvents = 6
)

var eventNames = [...]string{
	LocalLd: "LocalLd", LocalSt: "LocalSt", RemoteLd: "RemoteLd",
	RemoteSt: "RemoteSt", ReplaceEntry: "ReplaceEntry", Invalidation: "Invalidation",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if int(k) < len(eventNames) {
		return eventNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// hasRequester reports whether the event kind carries a requester.
func (k EventKind) hasRequester() bool { return k == RemoteLd || k == RemoteSt }

// Event is one concrete protocol event. Req is meaningful only for
// RemoteLd and RemoteSt.
type Event struct {
	Kind EventKind
	Req  proto.Requester
}

// String implements fmt.Stringer.
func (e Event) String() string {
	if !e.Kind.hasRequester() {
		return e.Kind.String()
	}
	kind := "GPM"
	if e.Req.IsGPU {
		kind = "GPU"
	}
	return fmt.Sprintf("%v(%s%d)", e.Kind, kind, e.Req.ID)
}

// Guard restricts a rule to a subset of requester/sharer-set shapes.
// Rules within one (state, event) cell match first-guard-wins; the last
// rule of a cell must be Always so the cell is total.
type Guard uint8

const (
	// Always matches every requester and sharer set.
	Always Guard = iota
	// OthersPresent matches when the sharer set minus the requester is
	// non-empty — the "inv other sharers" arm of a remote store.
	OthersPresent
)

var guardNames = [...]string{Always: "always", OthersPresent: "other sharers present"}

// String implements fmt.Stringer.
func (g Guard) String() string {
	if int(g) < len(guardNames) {
		return guardNames[g]
	}
	return fmt.Sprintf("Guard(%d)", uint8(g))
}

func (g Guard) matches(sh directory.Sharers, ev Event) bool {
	switch g {
	case Always:
		return true
	case OthersPresent:
		return !sh.Without(ev.Req.Bit()).IsEmpty()
	default:
		panic(fmt.Sprintf("spec: unknown guard %d", uint8(g)))
	}
}

// SharerUpdate is the rule's effect on the sharer set.
type SharerUpdate uint8

const (
	// KeepSharers leaves the sharer set unchanged.
	KeepSharers SharerUpdate = iota
	// AddRequester adds the requester's bit.
	AddRequester
	// OnlyRequester replaces the set with just the requester — a store
	// leaves the writer as the sole sharer.
	OnlyRequester
	// ClearSharers empties the set (the V→I transitions).
	ClearSharers
)

// InvRule selects which sharers receive invalidation messages.
type InvRule uint8

const (
	// InvNone emits no invalidations.
	InvNone InvRule = iota
	// InvOthers invalidates every sharer except the requester.
	InvOthers
	// InvAll invalidates the full sharer set (for the Invalidation
	// event this is the HMG second-level forward).
	InvAll
)

// Rule is one guarded Table I transition.
type Rule struct {
	State  State
	Event  EventKind
	Guard  Guard
	Next   State
	Update SharerUpdate
	Inv    InvRule
}

// Table is one protocol instantiation of Table I.
type Table struct {
	// Name identifies the instantiation ("NHCC" or "HMG").
	Name string
	// Hierarchical tables admit GPU requesters (at the system home) and
	// carry the Invalidation column; flat tables reject both.
	Hierarchical bool
	Rules        []Rule
}

// NHCC returns the flat instantiation: the Table I used by NHCC, where
// every requester is a GPM named by its global id and the Invalidation
// column does not exist — invalidations terminate at caches, never at
// another directory.
func NHCC() Table {
	return Table{Name: "NHCC", Hierarchical: false, Rules: commonRules()}
}

// HMG returns the hierarchical, two-level instantiation: the same rows
// as NHCC plus the Invalidation column, used unchanged at both home
// levels. At the system home the sharer space mixes local GPM bits with
// GPU bits (a whole GPU tracked as one sharer); at a GPU home it is
// local GPM bits only, and the Invalidation event is how the system
// home's V→I reaches the GPM sharers hiding behind a GPU bit.
func HMG() Table {
	return Table{Name: "HMG", Hierarchical: true, Rules: append(commonRules(),
		Rule{State: StateI, Event: Invalidation, Guard: Always, Next: StateI, Update: KeepSharers, Inv: InvNone},
		Rule{State: StateV, Event: Invalidation, Guard: Always, Next: StateI, Update: ClearSharers, Inv: InvAll},
	)}
}

// commonRules are the Table I rows shared by the flat and hierarchical
// instantiations.
func commonRules() []Rule {
	return []Rule{
		{State: StateI, Event: LocalLd, Guard: Always, Next: StateI, Update: KeepSharers, Inv: InvNone},
		{State: StateI, Event: LocalSt, Guard: Always, Next: StateI, Update: KeepSharers, Inv: InvNone},
		{State: StateI, Event: RemoteLd, Guard: Always, Next: StateV, Update: AddRequester, Inv: InvNone},
		{State: StateI, Event: RemoteSt, Guard: Always, Next: StateV, Update: AddRequester, Inv: InvNone},
		{State: StateV, Event: LocalLd, Guard: Always, Next: StateV, Update: KeepSharers, Inv: InvNone},
		{State: StateV, Event: LocalSt, Guard: Always, Next: StateI, Update: ClearSharers, Inv: InvAll},
		{State: StateV, Event: RemoteLd, Guard: Always, Next: StateV, Update: AddRequester, Inv: InvNone},
		{State: StateV, Event: RemoteSt, Guard: OthersPresent, Next: StateV, Update: OnlyRequester, Inv: InvOthers},
		{State: StateV, Event: RemoteSt, Guard: Always, Next: StateV, Update: OnlyRequester, Inv: InvNone},
		{State: StateV, Event: ReplaceEntry, Guard: Always, Next: StateI, Update: ClearSharers, Inv: InvAll},
	}
}

// Outcome is the result of applying one event to one entry state.
type Outcome struct {
	Next    State
	Sharers directory.Sharers
	// Inv is the invalidation fan-out in the canonical proto.TargetsOf
	// order.
	Inv []proto.InvTarget
	// Rule is the guarded row that fired.
	Rule Rule
}

// Apply executes the table on one entry: given the current state and
// sharer set, it returns the Table I outcome for ev. It is pure — the
// caller owns all state (see Model for a stateful wrapper). Errors mark
// events the instantiation declares impossible (GPU requesters or
// Invalidation under a flat table, replacing an absent entry, a sharer
// set tracked in state I), not protocol transitions.
func (t Table) Apply(st State, sh directory.Sharers, ev Event) (Outcome, error) {
	if st == StateI && !sh.IsEmpty() {
		return Outcome{}, fmt.Errorf("spec[%s]: state I with non-empty sharer set %v", t.Name, sh)
	}
	if ev.Kind.hasRequester() && ev.Req.IsGPU && !t.Hierarchical {
		return Outcome{}, fmt.Errorf("spec[%s]: GPU requester %d under a flat table", t.Name, ev.Req.ID)
	}
	if ev.Kind == Invalidation && !t.Hierarchical {
		return Outcome{}, fmt.Errorf("spec[%s]: Invalidation is an HMG-only transition", t.Name)
	}
	if ev.Kind == ReplaceEntry && st == StateI {
		return Outcome{}, fmt.Errorf("spec[%s]: ReplaceEntry on an absent entry", t.Name)
	}
	for _, r := range t.Rules {
		if r.State != st || r.Event != ev.Kind || !r.Guard.matches(sh, ev) {
			continue
		}
		out := Outcome{Next: r.Next, Rule: r}
		switch r.Update {
		case KeepSharers:
			out.Sharers = sh
		case AddRequester:
			out.Sharers = sh.With(ev.Req.Bit())
		case OnlyRequester:
			out.Sharers = ev.Req.Bit()
		case ClearSharers:
			out.Sharers = directory.Sharers{}
		default:
			panic(fmt.Sprintf("spec: unknown sharer update %d", uint8(r.Update)))
		}
		switch r.Inv {
		case InvNone:
		case InvOthers:
			out.Inv = proto.TargetsOf(sh.Without(ev.Req.Bit()))
		case InvAll:
			out.Inv = proto.TargetsOf(sh)
		default:
			panic(fmt.Sprintf("spec: unknown inv rule %d", uint8(r.Inv)))
		}
		return out, nil
	}
	return Outcome{}, fmt.Errorf("spec[%s]: no rule for state %v event %v", t.Name, st, ev)
}

// Validate checks the table's structural discipline: every cell the
// instantiation supports is present and total (ends in an Always
// guard, no shadowed rules), ReplaceEntry exists only for V,
// Invalidation cells exist exactly for hierarchical tables — and the
// two invariants Table I states structurally: a transition into I
// clears the sharer set, and every V→I transition invalidates the full
// sharer set.
func (t Table) Validate() error {
	type cellKey struct {
		st State
		ev EventKind
	}
	cells := map[cellKey][]Rule{}
	for _, r := range t.Rules {
		cells[cellKey{r.State, r.Event}] = append(cells[cellKey{r.State, r.Event}], r)
	}
	for _, st := range []State{StateI, StateV} {
		for ev := EventKind(0); ev < numEvents; ev++ {
			rules := cells[cellKey{st, ev}]
			want := true
			switch {
			case ev == ReplaceEntry && st == StateI:
				want = false
			case ev == Invalidation && !t.Hierarchical:
				want = false
			}
			if !want {
				if len(rules) > 0 {
					return fmt.Errorf("spec[%s]: cell %v×%v must not exist", t.Name, st, ev)
				}
				continue
			}
			if len(rules) == 0 {
				return fmt.Errorf("spec[%s]: missing cell %v×%v", t.Name, st, ev)
			}
			for i, r := range rules {
				last := i == len(rules)-1
				if last != (r.Guard == Always) {
					return fmt.Errorf("spec[%s]: cell %v×%v rule %d: exactly the last rule must carry the Always guard", t.Name, st, ev, i)
				}
				if r.Next == StateI && r.Update != ClearSharers && !(r.State == StateI && r.Update == KeepSharers) {
					return fmt.Errorf("spec[%s]: rule %v×%v→I must clear the sharer set", t.Name, st, ev)
				}
				if r.State == StateV && r.Next == StateI && r.Inv != InvAll {
					return fmt.Errorf("spec[%s]: V→I rule for %v must invalidate the full sharer set", t.Name, ev)
				}
			}
		}
	}
	return nil
}
