// Rendering the executable table back into documentation, so the
// states × events table in DESIGN.md is generated from the same rules
// the enumerator and differ execute and cannot drift from them.

package spec

import (
	"fmt"
	"strings"
)

var updateText = [...]string{
	KeepSharers:   "keep sharers",
	AddRequester:  "add requester",
	OnlyRequester: "requester only",
	ClearSharers:  "clear sharers",
}

var invText = [...]string{
	InvNone:   "—",
	InvOthers: "inv other sharers",
	InvAll:    "inv full sharer set",
}

// String implements fmt.Stringer.
func (u SharerUpdate) String() string {
	if int(u) < len(updateText) {
		return updateText[u]
	}
	return fmt.Sprintf("SharerUpdate(%d)", uint8(u))
}

// String implements fmt.Stringer.
func (i InvRule) String() string {
	if int(i) < len(invText) {
		return invText[i]
	}
	return fmt.Sprintf("InvRule(%d)", uint8(i))
}

// RenderMarkdown renders one table instantiation as a GitHub markdown
// table, one row per guarded rule in rule order.
func RenderMarkdown(t Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| State | Event | Guard | Next | Sharer set | Invalidations |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|\n")
	for _, r := range t.Rules {
		guard := "always"
		if r.Guard != Always {
			guard = r.Guard.String()
		}
		fmt.Fprintf(&b, "| %v | %v | %s | %v | %s | %s |\n",
			r.State, r.Event, guard, r.Next, r.Update, r.Inv)
	}
	return b.String()
}

// RenderDoc renders the full DESIGN.md fragment: both instantiations
// with their framing prose. DESIGN.md embeds this output verbatim
// between the hmgspec:tablei markers; the spec package's DESIGN-sync
// test fails when the embedded copy differs from this function's
// output (regenerate with `go run ./cmd/hmgspec -render`).
func RenderDoc() string {
	var b strings.Builder
	nhcc, hmg := NHCC(), HMG()
	fmt.Fprintf(&b, "**%s (flat).** Requesters are GPMs named by global id; invalidations\n", nhcc.Name)
	fmt.Fprintf(&b, "terminate at caches, never at another directory.\n\n")
	b.WriteString(RenderMarkdown(nhcc))
	fmt.Fprintf(&b, "\n**%s (hierarchical).** The same rows plus the `Invalidation` column,\n", hmg.Name)
	fmt.Fprintf(&b, "used unchanged at both home levels. At the system home the sharer\n")
	fmt.Fprintf(&b, "space mixes local GPM bits with whole-GPU bits; at a GPU home it is\n")
	fmt.Fprintf(&b, "local GPM bits only, and `Invalidation` is how a system-home V→I\n")
	fmt.Fprintf(&b, "reaches the GPM sharers hiding behind a GPU bit.\n\n")
	b.WriteString(RenderMarkdown(hmg))
	return b.String()
}
