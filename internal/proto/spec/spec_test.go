package spec

import (
	"os"
	"strings"
	"testing"

	"hmg/internal/directory"
	"hmg/internal/proto"
)

func TestValidate(t *testing.T) {
	for _, tab := range []Table{NHCC(), HMG()} {
		if err := tab.Validate(); err != nil {
			t.Errorf("%s: %v", tab.Name, err)
		}
	}
}

func TestValidateRejectsBrokenTables(t *testing.T) {
	drop := func(tab Table, st State, ev EventKind) Table {
		var keep []Rule
		for _, r := range tab.Rules {
			if r.State != st || r.Event != ev {
				keep = append(keep, r)
			}
		}
		tab.Rules = keep
		return tab
	}
	replace := func(tab Table, st State, ev EventKind, rules ...Rule) Table {
		tab = drop(tab, st, ev)
		tab.Rules = append(tab.Rules, rules...)
		return tab
	}
	cases := []struct {
		name string
		tab  Table
		want string
	}{
		{"missing cell", drop(NHCC(), StateV, RemoteSt), "missing cell"},
		{"flat table with Invalidation", Table{Name: "bad", Hierarchical: false, Rules: HMG().Rules}, "must not exist"},
		{"ReplaceEntry on I", replace(NHCC(), StateI, LocalLd,
			Rule{State: StateI, Event: LocalLd, Guard: Always, Next: StateI},
			Rule{State: StateI, Event: ReplaceEntry, Guard: Always, Next: StateI}), "must not exist"},
		{"non-Always last rule", replace(NHCC(), StateV, RemoteSt,
			Rule{State: StateV, Event: RemoteSt, Guard: Always, Next: StateV, Update: OnlyRequester},
			Rule{State: StateV, Event: RemoteSt, Guard: OthersPresent, Next: StateV, Update: OnlyRequester, Inv: InvOthers}),
			"Always guard"},
		{"V→I keeping sharers", replace(NHCC(), StateV, LocalSt,
			Rule{State: StateV, Event: LocalSt, Guard: Always, Next: StateI, Update: KeepSharers, Inv: InvAll}),
			"clear the sharer set"},
		{"V→I without full invalidation", replace(NHCC(), StateV, ReplaceEntry,
			Rule{State: StateV, Event: ReplaceEntry, Guard: Always, Next: StateI, Update: ClearSharers, Inv: InvOthers}),
			"full sharer set"},
	}
	for _, c := range cases {
		err := c.tab.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestApplyTransitions(t *testing.T) {
	tab := HMG()
	m1, m2 := proto.GPMRequester(1), proto.GPMRequester(2)
	g1 := proto.GPURequester(1)

	// I + RemoteLd → V{requester}, no invalidations.
	out, err := tab.Apply(StateI, directory.Sharers{}, Event{Kind: RemoteLd, Req: m1})
	if err != nil || out.Next != StateV || out.Sharers != m1.Bit() || len(out.Inv) != 0 {
		t.Fatalf("I+RemoteLd: %+v, %v", out, err)
	}
	// V + RemoteLd accumulates sharers.
	out, err = tab.Apply(StateV, m1.Bit(), Event{Kind: RemoteLd, Req: g1})
	if err != nil || out.Next != StateV || out.Sharers != m1.Bit().With(g1.Bit()) {
		t.Fatalf("V+RemoteLd: %+v, %v", out, err)
	}
	// V + RemoteSt with other sharers: invalidate others, requester-only.
	sh := m1.Bit().With(m2.Bit()).With(g1.Bit())
	out, err = tab.Apply(StateV, sh, Event{Kind: RemoteSt, Req: m1})
	if err != nil || out.Next != StateV || out.Sharers != m1.Bit() {
		t.Fatalf("V+RemoteSt: %+v, %v", out, err)
	}
	if !targetsEqual(out.Inv, proto.TargetsOf(m2.Bit().With(g1.Bit()))) {
		t.Fatalf("V+RemoteSt inv = %s", targetString(out.Inv))
	}
	// V + RemoteSt as sole sharer: no invalidations (the Always arm).
	out, _ = tab.Apply(StateV, m1.Bit(), Event{Kind: RemoteSt, Req: m1})
	if len(out.Inv) != 0 || out.Rule.Guard != Always {
		t.Fatalf("sole-sharer store fired %+v", out.Rule)
	}
	// V + LocalSt → I invalidating the full set.
	out, err = tab.Apply(StateV, sh, Event{Kind: LocalSt})
	if err != nil || out.Next != StateI || !out.Sharers.IsEmpty() || !targetsEqual(out.Inv, proto.TargetsOf(sh)) {
		t.Fatalf("V+LocalSt: %+v, %v", out, err)
	}
	// V + Invalidation → I forwarding to the full set (HMG column).
	out, err = tab.Apply(StateV, m1.Bit(), Event{Kind: Invalidation})
	if err != nil || out.Next != StateI || !targetsEqual(out.Inv, proto.TargetsOf(m1.Bit())) {
		t.Fatalf("V+Invalidation: %+v, %v", out, err)
	}
}

func TestApplyRejectsInadmissibleEvents(t *testing.T) {
	flat := NHCC()
	cases := []struct {
		name string
		st   State
		sh   directory.Sharers
		ev   Event
	}{
		{"GPU requester under flat table", StateI, directory.Sharers{}, Event{Kind: RemoteLd, Req: proto.GPURequester(1)}},
		{"Invalidation under flat table", StateV, proto.GPMRequester(1).Bit(), Event{Kind: Invalidation}},
		{"ReplaceEntry on absent entry", StateI, directory.Sharers{}, Event{Kind: ReplaceEntry}},
		{"sharers in state I", StateI, proto.GPMRequester(1).Bit(), Event{Kind: LocalLd}},
	}
	for _, c := range cases {
		if _, err := flat.Apply(c.st, c.sh, c.ev); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestModel(t *testing.T) {
	m := NewModel(HMG())
	m1 := proto.GPMRequester(1)
	if _, err := m.Apply(7, Event{Kind: RemoteLd, Req: m1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Apply(3, Event{Kind: RemoteLd, Req: proto.GPURequester(2)}); err != nil {
		t.Fatal(err)
	}
	if st, sh := m.State(7); st != StateV || sh != m1.Bit() {
		t.Fatalf("State(7) = %v %v", st, sh)
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Region != 3 || snap[1].Region != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// DropSharer empties the set but keeps the entry Valid, mirroring
	// DirCtrl.DropSharer.
	m.DropSharer(7, Event{Req: m1})
	if st, sh := m.State(7); st != StateV || !sh.IsEmpty() {
		t.Fatalf("post-drop State(7) = %v %v", st, sh)
	}
	// V→I removes the entry.
	if _, err := m.Apply(7, Event{Kind: LocalSt}); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.State(7); st != StateI || m.Len() != 1 {
		t.Fatalf("post-LocalSt: state %v, len %d", st, m.Len())
	}
}

// TestEnumerate pins the exhaustive small-model closure: the reachable
// state and transition counts are exact (any table edit that changes
// reachability shows up here), and both instantiations certify the
// paper's invariants — only V/I reachable, no sharers without a Valid
// entry, full-sharer-set invalidation on every V→I, and (HMG) the
// system-home invalidation forwarded to the GPU home's GPM sharers.
func TestEnumerate(t *testing.T) {
	cases := []struct {
		tab                 Table
		states, transitions int
	}{
		{NHCC(), 9, 104},
		{HMG(), 9, 93},
	}
	for _, c := range cases {
		rep, err := Enumerate(c.tab)
		if err != nil {
			t.Fatalf("%s: %v", c.tab.Name, err)
		}
		if rep.Err() != nil {
			t.Errorf("%s: %v", c.tab.Name, rep.Err())
		}
		if rep.States != c.states || rep.Transitions != c.transitions {
			t.Errorf("%s: states=%d transitions=%d, want %d/%d",
				c.tab.Name, rep.States, rep.Transitions, c.states, c.transitions)
		}
	}
}

// TestEnumerateCatchesProtocolBug proves the enumerator has teeth: an
// HMG table whose GPU home ignores system-home invalidations (keeps its
// entry Valid) passes structural validation but breaks hmg-inv-forward
// and hierarchical inclusion under enumeration — exactly the coherence
// hole MutDropInvForward opens in the implementation.
func TestEnumerateCatchesProtocolBug(t *testing.T) {
	bad := HMG()
	bad.Name = "HMG-ignore-inv"
	for i, r := range bad.Rules {
		if r.State == StateV && r.Event == Invalidation {
			bad.Rules[i] = Rule{State: StateV, Event: Invalidation, Guard: Always,
				Next: StateV, Update: KeepSharers, Inv: InvNone}
		}
	}
	if err := bad.Validate(); err != nil {
		t.Fatalf("broken table must still validate structurally: %v", err)
	}
	rep, err := Enumerate(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("enumerator missed the ignored invalidation")
	}
	found := map[string]bool{}
	for _, v := range rep.Violations {
		found[v.Invariant] = true
	}
	if !found["hmg-inv-forward"] {
		t.Errorf("violations %v missing hmg-inv-forward", found)
	}
	if !found["hierarchical-inclusion"] {
		t.Errorf("violations %v missing hierarchical-inclusion", found)
	}
}

// TestDiffTrunkClean is the acceptance bar: zero divergences between
// the spec and the unmutated DirCtrl under both instantiations, across
// several seeds.
func TestDiffTrunkClean(t *testing.T) {
	for _, tab := range []Table{NHCC(), HMG()} {
		for seed := uint64(1); seed <= 5; seed++ {
			cfg := DefaultDiffConfig(tab)
			cfg.Seed = seed
			divs, err := Diff(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", tab.Name, seed, err)
			}
			for _, d := range divs {
				t.Errorf("%s seed %d: %v", tab.Name, seed, d)
			}
		}
	}
}

// TestDiffMutationTeeth: each deliberate Mutation bit must make the
// differ report divergences. MutDropInvForward only bites under the
// hierarchical table — the flat sequence never delivers an Invalidation
// event, which is pinned too (it documents why the differ must run the
// HMG table for full teeth).
func TestDiffMutationTeeth(t *testing.T) {
	cases := []struct {
		tab     Table
		mu      proto.Mutation
		diverge bool
		field   string
	}{
		{NHCC(), proto.MutDropStoreInv, true, "inv-targets"},
		{NHCC(), proto.MutDropInvForward, false, ""},
		{NHCC(), proto.MutDropEvictInv, true, "evict-targets"},
		{HMG(), proto.MutDropStoreInv, true, "inv-targets"},
		{HMG(), proto.MutDropInvForward, true, "inv-targets"},
		{HMG(), proto.MutDropEvictInv, true, "evict-targets"},
	}
	for _, c := range cases {
		cfg := DefaultDiffConfig(c.tab)
		cfg.Mutation = c.mu
		divs, err := Diff(cfg)
		if err != nil {
			t.Fatalf("%s mut=%d: %v", c.tab.Name, c.mu, err)
		}
		if !c.diverge {
			if len(divs) != 0 {
				t.Errorf("%s mut=%d: unexpected divergences %v", c.tab.Name, c.mu, divs[0])
			}
			continue
		}
		if len(divs) == 0 {
			t.Errorf("%s mut=%d: differ has no teeth", c.tab.Name, c.mu)
			continue
		}
		if divs[0].Field != c.field {
			t.Errorf("%s mut=%d: first divergence %v, want field %s", c.tab.Name, c.mu, divs[0], c.field)
		}
	}
}

func TestDiffRejectsBrokenConfig(t *testing.T) {
	cfg := DefaultDiffConfig(NHCC())
	cfg.Dir.Ways = 0
	if _, err := Diff(cfg); err == nil {
		t.Fatal("invalid directory config accepted")
	}
	bad := NHCC()
	bad.Rules = bad.Rules[:3]
	if _, err := Diff(DiffConfig{Table: bad, Dir: directory.Config{Entries: 8, Ways: 2, GranLines: 1}, Ops: 8}); err == nil {
		t.Fatal("invalid table accepted")
	}
}

func TestRenderMarkdown(t *testing.T) {
	md := RenderMarkdown(HMG())
	for _, want := range []string{
		"| State | Event | Guard | Next | Sharer set | Invalidations |",
		"| V | RemoteSt | other sharers present | V | requester only | inv other sharers |",
		"| V | Invalidation | always | I | clear sharers | inv full sharer set |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("rendered table missing %q:\n%s", want, md)
		}
	}
	if strings.Contains(RenderMarkdown(NHCC()), "Invalidation |") {
		t.Error("flat table rendered an Invalidation row")
	}
}

// TestDesignDocSync: the Table I section of DESIGN.md is the verbatim
// output of RenderDoc, so the documented table cannot drift from the
// executable spec. Regenerate with `go run ./cmd/hmgspec -render`.
func TestDesignDocSync(t *testing.T) {
	const begin, end = "<!-- hmgspec:tablei:begin -->", "<!-- hmgspec:tablei:end -->"
	raw, err := os.ReadFile("../../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	i, j := strings.Index(doc, begin), strings.Index(doc, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("DESIGN.md missing %s/%s markers", begin, end)
	}
	embedded := doc[i+len(begin) : j]
	want := "\n" + RenderDoc() + "\n"
	if embedded != want {
		t.Errorf("DESIGN.md Table I section is stale; regenerate with `go run ./cmd/hmgspec -render`\n--- embedded ---\n%s\n--- rendered ---\n%s", embedded, want)
	}
}

// TestDiffLargeIDRequesters reruns the trunk-clean differ with
// requester pools whose ids live far past the 32-id inline sharer word,
// driving both the DirCtrl and the model through the promoted vector
// and bitmap representations. The spec must still match exactly.
func TestDiffLargeIDRequesters(t *testing.T) {
	flatReqs := []proto.Requester{
		proto.GPMRequester(1), proto.GPMRequester(31), proto.GPMRequester(32),
		proto.GPMRequester(63), proto.GPMRequester(64), proto.GPMRequester(127),
	}
	hierReqs := []proto.Requester{
		proto.GPMRequester(2), proto.GPMRequester(40),
		proto.GPURequester(33), proto.GPURequester(100),
	}
	for _, tc := range []struct {
		tab  Table
		reqs []proto.Requester
	}{
		{NHCC(), flatReqs},
		{HMG(), hierReqs},
	} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := DefaultDiffConfig(tc.tab)
			cfg.Seed = seed
			cfg.Reqs = tc.reqs
			divs, err := Diff(cfg)
			if err != nil {
				t.Fatalf("%s seed %d: %v", tc.tab.Name, seed, err)
			}
			for _, d := range divs {
				t.Errorf("%s seed %d: %v", tc.tab.Name, seed, d)
			}
		}
	}
}
