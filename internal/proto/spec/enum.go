// The small-model exhaustive enumerator: breadth-first closure over
// every reachable directory state of a 2-GPU × 2-GPM configuration,
// with the paper's invariants asserted on every transition.
//
// Flat model (NHCC): one home directory (GPM 0 of a 4-GPM system),
// one tracked region, requesters GPM 1..3.
//
// Hierarchical model (HMG): the system home at GPU 0 / GPM 0 together
// with GPU 1's home node. The system home tracks its GPU-local peer
// (local module 1) as a GPM bit and GPU 1 as a GPU bit; GPU 1's home
// tracks its own module 1. Events mirror the coupled transitions of
// the simulator: a GPU-1 load that misses its home L2 registers at
// both levels, stores write through both levels, and any system-home
// V→I whose fan-out names GPU 1 delivers the Invalidation event to
// GPU 1's home, which must forward to its GPM sharers.

package spec

import (
	"fmt"

	"hmg/internal/directory"
	"hmg/internal/proto"
)

// Violation is one broken invariant found during enumeration.
type Violation struct {
	State     string // the composite state the event was applied in
	Event     string
	Invariant string
	Detail    string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s: state %s, event %s: %s", v.Invariant, v.State, v.Event, v.Detail)
}

// Report summarizes one exhaustive enumeration.
type Report struct {
	Table       string
	States      int // distinct reachable composite states
	Transitions int // transitions applied and checked
	Violations  []Violation
}

// Err returns a single error covering all violations, or nil.
func (r Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	return fmt.Errorf("spec enumerate %s: %d invariant violations, first: %v",
		r.Table, len(r.Violations), r.Violations[0])
}

// Enumerate exhaustively walks the table's small model — flat for a
// non-hierarchical table, two-level for a hierarchical one — and
// returns the reachability report. The error return covers misuse of
// the table itself (a missing rule, an inadmissible event), which
// means the table is broken rather than merely wrong.
func Enumerate(t Table) (Report, error) {
	if err := t.Validate(); err != nil {
		return Report{Table: t.Name}, err
	}
	if t.Hierarchical {
		return enumerateHier(t)
	}
	return enumerateFlat(t)
}

// nodeState is one directory's view of the single modeled region.
type nodeState struct {
	Valid   bool
	Sharers directory.Sharers
}

func (n nodeState) spec() (State, directory.Sharers) {
	if n.Valid {
		return StateV, n.Sharers
	}
	return StateI, directory.Sharers{}
}

func (n nodeState) String() string {
	if !n.Valid {
		return "I"
	}
	return "V" + n.Sharers.String()
}

// checker accumulates violations with shared per-transition context.
type checker struct {
	violations []Violation
}

func (c *checker) fail(state, event fmt.Stringer, invariant, format string, args ...any) {
	c.violations = append(c.violations, Violation{
		State: state.String(), Event: event.String(),
		Invariant: invariant, Detail: fmt.Sprintf(format, args...),
	})
}

// checkOutcome asserts the per-transition invariants shared by both
// models: only V/I reachable, I tracks nothing, and every V→I emits
// invalidations covering the entire prior sharer set.
func (c *checker) checkOutcome(state fmt.Stringer, ev Event, prior nodeState, out Outcome) {
	switch out.Next {
	case StateI, StateV:
	default:
		c.fail(state, ev, "stable-states", "transition reached non-stable state %v", out.Next)
	}
	if out.Next == StateI && !out.Sharers.IsEmpty() {
		c.fail(state, ev, "no-orphan-sharers", "state I tracks %v", out.Sharers)
	}
	priorState, priorSharers := prior.spec()
	if priorState == StateV && out.Next == StateI {
		if !targetsEqual(out.Inv, proto.TargetsOf(priorSharers)) {
			c.fail(state, ev, "full-set-invalidation",
				"V→I invalidated %s, sharer set was %v", targetString(out.Inv), priorSharers)
		}
	}
	if priorState == StateI && len(out.Inv) > 0 {
		c.fail(state, ev, "no-phantom-invalidations", "state I emitted %s", targetString(out.Inv))
	}
}

// apply runs one event on a node through the table, records invariant
// checks, and returns the successor node state.
func (c *checker) apply(t Table, state fmt.Stringer, n nodeState, ev Event) (nodeState, Outcome, error) {
	st, sh := n.spec()
	out, err := t.Apply(st, sh, ev)
	if err != nil {
		return nodeState{}, Outcome{}, err
	}
	c.checkOutcome(state, ev, n, out)
	return nodeState{Valid: out.Next == StateV, Sharers: out.Sharers}, out, nil
}

// ---------------------------------------------------------------------
// Flat model
// ---------------------------------------------------------------------

type flatState struct{ Home nodeState }

func (s flatState) String() string { return "home=" + s.Home.String() }

// flatEvents are every event the 4-GPM flat small model can deliver to
// the home directory, in fixed exploration order.
func flatEvents() []Event {
	evs := []Event{{Kind: LocalLd}, {Kind: LocalSt}, {Kind: ReplaceEntry}}
	for id := 1; id <= 3; id++ {
		evs = append(evs,
			Event{Kind: RemoteLd, Req: proto.GPMRequester(id)},
			Event{Kind: RemoteSt, Req: proto.GPMRequester(id)},
		)
	}
	return evs
}

func enumerateFlat(t Table) (Report, error) {
	rep := Report{Table: t.Name}
	ck := &checker{}
	start := flatState{}
	seen := map[flatState]bool{start: true}
	queue := []flatState{start}
	events := flatEvents()
	drops := []proto.Requester{proto.GPMRequester(1), proto.GPMRequester(2), proto.GPMRequester(3)}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var succs []flatState
		for _, ev := range events {
			if ev.Kind == ReplaceEntry && !cur.Home.Valid {
				continue // nothing to replace
			}
			next, _, err := ck.apply(t, cur, cur.Home, ev)
			if err != nil {
				return rep, err
			}
			rep.Transitions++
			succs = append(succs, flatState{Home: next})
		}
		// Downgrades (DropSharer) are outside Table I but reach the
		// empty-sharer Valid states the accounting semantics care about.
		for _, req := range drops {
			if !cur.Home.Valid {
				continue
			}
			rep.Transitions++
			succs = append(succs, flatState{Home: nodeState{
				Valid: true, Sharers: cur.Home.Sharers.Without(req.Bit()),
			}})
		}
		for _, s := range succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	rep.States = len(seen)
	rep.Violations = ck.violations
	return rep, nil
}

// ---------------------------------------------------------------------
// Hierarchical (two-level) model
// ---------------------------------------------------------------------

// hierState is the composite state: the system home directory (GPU 0,
// GPM 0) and GPU 1's home directory, both for the single modeled
// region.
type hierState struct {
	Sys  nodeState // sharer space: local GPM 1, GPU 1
	GPU1 nodeState // sharer space: GPU 1's local GPM 1
}

func (s hierState) String() string {
	return "sys=" + s.Sys.String() + " gpu1=" + s.GPU1.String()
}

// gpu1Bit is GPU 1's sharer bit at the system home.
func gpu1Bit() directory.Sharers { return proto.GPURequester(1).Bit() }

func enumerateHier(t Table) (Report, error) {
	rep := Report{Table: t.Name}
	ck := &checker{}

	// sysTransition applies one event at the system home and, when the
	// fan-out names GPU 1, delivers the Invalidation event to GPU 1's
	// home — the coupled HMG transition the paper adds over NHCC.
	sysTransition := func(cur hierState, ev Event) (hierState, error) {
		next := cur
		sys, out, err := ck.apply(t, cur, cur.Sys, ev)
		if err != nil {
			return cur, err
		}
		next.Sys = sys
		invalidatesGPU1 := false
		for _, tg := range out.Inv {
			if tg.IsGPU && tg.ID == 1 {
				invalidatesGPU1 = true
			}
		}
		if invalidatesGPU1 {
			priorGPU1 := cur.GPU1
			gpu1, fwd, err := ck.apply(t, cur, cur.GPU1, Event{Kind: Invalidation})
			if err != nil {
				return cur, err
			}
			// The HMG-only column: the GPU home must forward the system
			// home's invalidation to every GPM sharer it tracks and
			// transition to I.
			if priorGPU1.Valid {
				if !targetsEqual(fwd.Inv, proto.TargetsOf(priorGPU1.Sharers)) {
					ck.fail(cur, ev, "hmg-inv-forward",
						"system-home invalidation forwarded to %s, GPU-home sharers were %v",
						targetString(fwd.Inv), priorGPU1.Sharers)
				}
			}
			if fwd.Next != StateI {
				ck.fail(cur, ev, "hmg-inv-forward", "GPU home kept state %v after system-home invalidation", fwd.Next)
			}
			next.GPU1 = gpu1
		}
		return next, nil
	}

	localGPM1 := proto.GPMRequester(1)
	gpuReq := proto.GPURequester(1)

	type eventFn struct {
		name    string
		enabled func(hierState) bool
		step    func(hierState) (hierState, error)
	}
	always := func(hierState) bool { return true }
	events := []eventFn{
		{"sysLocalLd", always, func(s hierState) (hierState, error) {
			return sysTransition(s, Event{Kind: LocalLd})
		}},
		{"sysLocalSt", always, func(s hierState) (hierState, error) {
			return sysTransition(s, Event{Kind: LocalSt})
		}},
		{"sysRemoteLd(M1)", always, func(s hierState) (hierState, error) {
			return sysTransition(s, Event{Kind: RemoteLd, Req: localGPM1})
		}},
		{"sysRemoteSt(M1)", always, func(s hierState) (hierState, error) {
			return sysTransition(s, Event{Kind: RemoteSt, Req: localGPM1})
		}},
		{"sysReplace", func(s hierState) bool { return s.Sys.Valid }, func(s hierState) (hierState, error) {
			return sysTransition(s, Event{Kind: ReplaceEntry})
		}},
		// GPU 1 module 1 load missing the GPU home's L2: registers at
		// the GPU home (as local GPM 1) and at the system home (as
		// GPU 1).
		{"gpu1LdMiss(m1)", always, func(s hierState) (hierState, error) {
			gpu1, _, err := ck.apply(t, s, s.GPU1, Event{Kind: RemoteLd, Req: localGPM1})
			if err != nil {
				return s, err
			}
			s.GPU1 = gpu1
			return sysTransition(s, Event{Kind: RemoteLd, Req: gpuReq})
		}},
		// The same load hitting the GPU home's L2: the system home
		// learns nothing. Only possible while the system home still
		// tracks GPU 1 (its copy would have been invalidated otherwise).
		{"gpu1LdHit(m1)", func(s hierState) bool {
			return s.Sys.Valid && s.Sys.Sharers.Has(gpu1Bit())
		}, func(s hierState) (hierState, error) {
			gpu1, _, err := ck.apply(t, s, s.GPU1, Event{Kind: RemoteLd, Req: localGPM1})
			s.GPU1 = gpu1
			return s, err
		}},
		// GPU 1 module 1 store: write-through at the GPU home, then at
		// the system home as GPU 1.
		{"gpu1St(m1)", always, func(s hierState) (hierState, error) {
			gpu1, _, err := ck.apply(t, s, s.GPU1, Event{Kind: RemoteSt, Req: localGPM1})
			if err != nil {
				return s, err
			}
			s.GPU1 = gpu1
			return sysTransition(s, Event{Kind: RemoteSt, Req: gpuReq})
		}},
		// GPU 1's home module stores: local at its own directory, remote
		// (as GPU 1) at the system home.
		{"gpu1StHome", always, func(s hierState) (hierState, error) {
			gpu1, _, err := ck.apply(t, s, s.GPU1, Event{Kind: LocalSt})
			if err != nil {
				return s, err
			}
			s.GPU1 = gpu1
			return sysTransition(s, Event{Kind: RemoteSt, Req: gpuReq})
		}},
		{"gpu1Replace", func(s hierState) bool { return s.GPU1.Valid }, func(s hierState) (hierState, error) {
			gpu1, _, err := ck.apply(t, s, s.GPU1, Event{Kind: ReplaceEntry})
			s.GPU1 = gpu1
			return s, err
		}},
		// Downgrades (outside Table I): the system home drops its local
		// module, the GPU home drops its module.
		{"sysDrop(M1)", func(s hierState) bool { return s.Sys.Valid }, func(s hierState) (hierState, error) {
			s.Sys.Sharers = s.Sys.Sharers.Without(localGPM1.Bit())
			return s, nil
		}},
		{"gpu1Drop(m1)", func(s hierState) bool { return s.GPU1.Valid }, func(s hierState) (hierState, error) {
			s.GPU1.Sharers = s.GPU1.Sharers.Without(localGPM1.Bit())
			return s, nil
		}},
	}

	start := hierState{}
	seen := map[hierState]bool{start: true}
	queue := []hierState{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		// Reachable-state invariant: a Valid GPU-home entry with sharers
		// is only coherent while the system home still tracks GPU 1 —
		// otherwise a system-home store would never invalidate those
		// sharers (the exact hole MutDropInvForward opens).
		if cur.GPU1.Valid && !cur.GPU1.Sharers.IsEmpty() {
			if !cur.Sys.Valid || !cur.Sys.Sharers.Has(gpu1Bit()) {
				ck.violations = append(ck.violations, Violation{
					State: cur.String(), Event: "-", Invariant: "hierarchical-inclusion",
					Detail: "GPU home tracks sharers but the system home does not track GPU 1",
				})
			}
		}
		for _, ev := range events {
			if !ev.enabled(cur) {
				continue
			}
			next, err := ev.step(cur)
			if err != nil {
				return rep, fmt.Errorf("event %s: %w", ev.name, err)
			}
			rep.Transitions++
			if !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	rep.States = len(seen)
	rep.Violations = ck.violations
	return rep, nil
}

// ---------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------

// targetsEqual compares two canonical-order target lists.
func targetsEqual(a, b []proto.InvTarget) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// targetString formats a target list like directory.Sharers.String.
func targetString(ts []proto.InvTarget) string {
	out := "["
	for i, t := range ts {
		if i > 0 {
			out += " "
		}
		if t.IsGPU {
			out += fmt.Sprintf("GPU%d", t.ID)
		} else {
			out += fmt.Sprintf("GPM%d", t.ID)
		}
	}
	return out + "]"
}
