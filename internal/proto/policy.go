// Package proto defines the six coherence configurations the paper
// compares and the directory transition logic of Table I shared by NHCC
// and HMG.
//
// The configurations:
//
//   - NoRemoteCache — the normalization baseline: remote-GPU data is never
//     cached; intra-GPU caching is kept coherent by software (bulk
//     invalidation on acquire).
//   - SWNonHier — conventional software coherence with scopes extended to
//     a flat multi-GPU system: remote data is cached, acquires bulk-
//     invalidate the issuing SM's L1 and GPM-local L2.
//   - SWHier — the software protocol with the hierarchical extension:
//     loads route (and cache) through a GPU home node; .sys acquires
//     bulk-invalidate all L2 slices of the issuing GPU.
//   - NHCC — Section IV: flat hardware VI coherence with per-home
//     directories tracking GPM sharers, no transient states, no
//     invalidation acknowledgments.
//   - HMG — Section V: the paper's contribution; NHCC plus hierarchical
//     homes and hierarchical sharer tracking (GPU home nodes track GPM
//     sharers, system home nodes track GPU sharers).
//   - Ideal — caching everywhere with no coherence enforcement at all,
//     the loose performance upper bound.
package proto

import "fmt"

// Kind selects a coherence configuration.
type Kind int

const (
	// NoRemoteCache is the baseline that disallows caching of remote-GPU
	// data (speedups in the paper's figures are normalized to it).
	NoRemoteCache Kind = iota
	// SWNonHier is the non-hierarchical software protocol.
	SWNonHier
	// SWHier is the hierarchical software protocol.
	SWHier
	// NHCC is the non-hierarchical hardware protocol of Section IV.
	NHCC
	// HMG is the hierarchical hardware protocol of Section V.
	HMG
	// Ideal is idealized caching without coherence.
	Ideal
	// GPUVI is a related-work baseline modeling GPU-VI (Singh et al.,
	// HPCA 2013) extended flat across the machine, as the paper does in
	// Fig. 2 — but retaining its multi-copy-atomic memory model: stores
	// to shared data block the home line until every sharer has
	// acknowledged its invalidation. The paper's Section III-B argument
	// is that this cost, tolerable on one GPU, grows with the order-of-
	// magnitude larger inter-GPU round trips; this configuration
	// measures it.
	GPUVI
	// CARVE is a related-work baseline (Young et al., MICRO 2018, as
	// characterized in Section II-A/VII-A of the paper): hardware
	// coherence filtered by classifying regions as private, read-only,
	// or read-write shared — with no sharer tracking. Transitioning a
	// region to read-write broadcasts invalidations to all caches, and
	// read-write shared data is not cached remotely afterwards.
	CARVE
)

var kindNames = [...]string{
	NoRemoteCache: "NoRemoteCaching",
	SWNonHier:     "SW-NonHier",
	SWHier:        "SW-Hier",
	NHCC:          "NHCC",
	HMG:           "HMG",
	Ideal:         "Ideal",
	GPUVI:         "GPU-VI-MCA",
	CARVE:         "CARVE",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists all configurations in the paper's presentation order.
func Kinds() []Kind { return []Kind{NoRemoteCache, SWNonHier, NHCC, SWHier, HMG, Ideal} }

// ParseKind resolves a configuration by name (case-sensitive, as printed
// by String).
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("proto: unknown protocol %q (known: %v)", s, kindNames)
}

// Policy is the behavioral decomposition of a Kind, consumed by the L2
// datapath.
type Policy struct {
	Kind Kind
	// Hierarchical routes requests through per-GPU home nodes, which may
	// cache remote-GPU data on behalf of the whole GPU.
	Hierarchical bool
	// Hardware enables coherence directories with precise sharer
	// tracking and background invalidations; acquire operations then
	// invalidate only the L1 (L2s are hardware-coherent).
	Hardware bool
	// CacheRemoteGPU allows L2 slices to cache lines whose backing page
	// lives on another GPU.
	CacheRemoteGPU bool
	// NoCoherence disables every coherence action (Ideal): acquires
	// invalidate nothing, releases do not wait for drains.
	NoCoherence bool
	// Downgrade sends sharer-downgrade messages on clean L2 evictions
	// (the optional optimization of Section IV, off in the paper's
	// evaluation and by default here).
	Downgrade bool
	// MCA enforces multi-copy-atomicity: stores block their home line
	// until all invalidation acknowledgments return (GPU-VI style).
	MCA bool
	// Classify replaces sharer tracking with CARVE-style region
	// classification: no directory, broadcast invalidation on the
	// transition to read-write sharing, and no remote caching of
	// read-write shared regions.
	Classify bool
}

// For returns the Policy of a Kind.
func For(k Kind) Policy {
	switch k {
	case NoRemoteCache:
		return Policy{Kind: k}
	case SWNonHier:
		return Policy{Kind: k, CacheRemoteGPU: true}
	case SWHier:
		return Policy{Kind: k, Hierarchical: true, CacheRemoteGPU: true}
	case NHCC:
		return Policy{Kind: k, Hardware: true, CacheRemoteGPU: true}
	case HMG:
		return Policy{Kind: k, Hierarchical: true, Hardware: true, CacheRemoteGPU: true}
	case Ideal:
		return Policy{Kind: k, Hierarchical: true, CacheRemoteGPU: true, NoCoherence: true}
	case GPUVI:
		return Policy{Kind: k, Hardware: true, CacheRemoteGPU: true, MCA: true}
	case CARVE:
		return Policy{Kind: k, CacheRemoteGPU: true, Classify: true}
	default:
		panic(fmt.Sprintf("proto: unknown kind %d", int(k)))
	}
}
