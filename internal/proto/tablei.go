package proto

import (
	"hmg/internal/directory"
	"hmg/internal/topo"
)

// Requester identifies the sender of a request as seen by a home node's
// directory: either a GPM (a global id under NHCC, a GPU-local module
// index under HMG) or, at an HMG system home node, a whole GPU.
type Requester struct {
	IsGPU bool
	ID    int
}

// GPMRequester names a GPM requester.
func GPMRequester(id int) Requester { return Requester{ID: id} }

// GPURequester names a GPU requester.
func GPURequester(id int) Requester { return Requester{IsGPU: true, ID: id} }

// Bit returns the requester's sharer-set bit: a GPM bit for module
// requesters, a GPU bit for whole-GPU requesters at an HMG system home.
func (r Requester) Bit() directory.Sharers {
	if r.IsGPU {
		return directory.GPUBit(r.ID)
	}
	return directory.GPMBit(r.ID)
}

// InvTarget is one destination of an invalidation: a GPM sharer (local
// module index or global id, matching the requester space) or a GPU
// sharer (whose GPU home node must forward the invalidation, the
// HMG-only transition of Table I).
type InvTarget struct {
	IsGPU bool
	ID    int
}

// Mutation is a bitset of deliberate Table I transition bugs. The
// conformance harness (internal/check) enables these to prove its
// invariant checker and litmus oracle actually detect protocol
// violations; production configurations always run with zero.
type Mutation uint8

const (
	// MutDropStoreInv makes remote and local stores clear the sharer
	// set without sending the invalidations — remote copies survive,
	// untracked and stale.
	MutDropStoreInv Mutation = 1 << iota
	// MutDropInvForward makes an HMG GPU home node drop its entry on a
	// system-home invalidation without forwarding to its GPM sharers.
	MutDropInvForward
	// MutDropEvictInv makes directory entry replacement silently forget
	// the victim's sharers instead of invalidating them.
	MutDropEvictInv
)

// Has reports whether mutation bit m is set.
func (mu Mutation) Has(m Mutation) bool { return mu&m != 0 }

// DirCtrl wraps a directory with the NHCC/HMG transition table (paper
// Table I). All methods return the invalidation targets the caller must
// send; the directory itself never generates traffic.
//
// Table I, with s the sender:
//
//	State | Local Ld | Local St/Atom        | Remote Ld        | Remote St/Atom                     | Replace Dir Entry   | Invalidation (HMG only)
//	I     | -        | -                    | add s, →V        | add s, →V                          | n/a                 | →I (nothing tracked)
//	V     | -        | inv all sharers, →I  | add s to sharers | add s, inv other sharers           | inv all sharers, →I | forward inv to all sharers, →I
type DirCtrl struct {
	Dir *directory.Dir

	// Mutate injects deliberate transition bugs (test-only; see
	// Mutation).
	Mutate Mutation

	// Stats for the Fig. 9/10 profiles.
	StoresSeen       uint64 // remote/local stores consulting the directory
	StoresSharedData uint64 // stores that found a tracked entry with ≥1 sharer
	StoresWithInvs   uint64 // stores that invalidated at least one sharer
	LinesInvByStores uint64 // sharer targets × granularity lines, store-triggered
	LinesInvByEvicts uint64 // sharer targets × granularity lines, eviction-triggered
	InvMsgsByStores  uint64
	InvMsgsByEvicts  uint64
	InvMsgsForwarded uint64 // HMG second-level fan-out
}

// NewDirCtrl builds a Table I controller over a directory.
func NewDirCtrl(cfg directory.Config) *DirCtrl {
	return &DirCtrl{Dir: directory.New(cfg)}
}

// TargetsOf expands a sharer set into the canonical invalidation target
// list: GPM sharers in ascending index order, then GPU sharers in
// ascending id order. The spec differ (internal/proto/spec) relies on
// this ordering being the single definition shared with the
// implementation, so target-list comparisons never trip on ordering.
//
//lint:allow hotalloc invalidation fan-out list; sized by the sharer count and gated by the hmgperf allocs/event baseline
func TargetsOf(s directory.Sharers) []InvTarget {
	var out []InvTarget
	s.GPMs(func(i int) { out = append(out, InvTarget{ID: i}) })
	s.GPUs(func(j int) { out = append(out, InvTarget{IsGPU: true, ID: j}) })
	return out
}

// RemoteLoad records s as a sharer of the region holding line l,
// allocating the entry (I→V) if needed. The returned eviction targets
// (with their region) are non-nil when the allocation displaced a valid
// entry whose sharers must be invalidated.
func (c *DirCtrl) RemoteLoad(l topo.Line, s Requester) (evictRegion directory.Region, evictTargets []InvTarget) {
	e, victim := c.Dir.Ensure(c.Dir.RegionOf(l))
	e.Sharers = e.Sharers.With(s.Bit())
	return c.evictTargets(victim)
}

// RemoteStore records s as a sharer and returns the other sharers to
// invalidate, plus any eviction fan-out from allocating the entry.
func (c *DirCtrl) RemoteStore(l topo.Line, s Requester) (inv []InvTarget, evictRegion directory.Region, evictTargets []InvTarget) {
	c.StoresSeen++
	r := c.Dir.RegionOf(l)
	if e, ok := c.Dir.Lookup(r); ok && !e.Sharers.IsEmpty() {
		// Shared data means someone is actually tracked: an entry whose
		// sharer set was emptied by DropSharer downgrades represents no
		// remote copies, so a store to it does not count toward the
		// Fig. 9 stores-to-shared-data fraction (LocalStore agrees).
		c.StoresSharedData++
	}
	e, victim := c.Dir.Ensure(r)
	others := e.Sharers.Without(s.Bit())
	e.Sharers = e.Sharers.With(s.Bit()).Without(others)
	inv = TargetsOf(others)
	if len(inv) > 0 {
		c.StoresWithInvs++
		c.InvMsgsByStores += uint64(len(inv))
		c.LinesInvByStores += uint64(len(inv) * c.Dir.Config().GranLines)
	}
	if c.Mutate.Has(MutDropStoreInv) {
		inv = nil
	}
	evictRegion, evictTargets = c.evictTargets(victim)
	return inv, evictRegion, evictTargets
}

// LocalStore handles a store by the home GPM itself: all sharers are
// invalidated and the entry transitions V→I. Stores that find no entry
// (state I) do nothing.
func (c *DirCtrl) LocalStore(l topo.Line) []InvTarget {
	c.StoresSeen++
	r := c.Dir.RegionOf(l)
	e, ok := c.Dir.Lookup(r)
	if !ok {
		return nil
	}
	if !e.Sharers.IsEmpty() {
		// Same shared-data semantics as RemoteStore: a downgraded-empty
		// entry tracks no remote copy.
		c.StoresSharedData++
	}
	inv := TargetsOf(e.Sharers)
	c.Dir.Drop(r)
	if len(inv) > 0 {
		c.StoresWithInvs++
		c.InvMsgsByStores += uint64(len(inv))
		c.LinesInvByStores += uint64(len(inv) * c.Dir.Config().GranLines)
	}
	if c.Mutate.Has(MutDropStoreInv) {
		return nil
	}
	return inv
}

// Invalidation handles an invalidation arriving from the system home node
// at a GPU home node (the HMG-only transition): the entry's GPM sharers
// must be forwarded the invalidation, and the entry transitions to I.
func (c *DirCtrl) Invalidation(r directory.Region) []InvTarget {
	e, ok := c.Dir.Lookup(r)
	if !ok {
		return nil
	}
	inv := TargetsOf(e.Sharers)
	c.Dir.Drop(r)
	// Counters record protocol-intended traffic, so they accumulate
	// before any mutation drop — exactly as the store paths count
	// InvMsgsByStores before MutDropStoreInv suppresses the messages.
	c.InvMsgsForwarded += uint64(len(inv))
	if c.Mutate.Has(MutDropInvForward) {
		return nil
	}
	return inv
}

// DropSharer removes s from the region's sharer set if tracked (the
// optional Downgrade optimization). Entries left with no sharers remain
// valid; they cost a future invalidation only if re-evicted.
//
//lint:allow speccover downgrade hint outside Table I; it narrows sharer sets, never transitions state
func (c *DirCtrl) DropSharer(l topo.Line, s Requester) {
	if e, ok := c.Dir.Lookup(c.Dir.RegionOf(l)); ok {
		e.Sharers = e.Sharers.Without(s.Bit())
	}
}

func (c *DirCtrl) evictTargets(victim *directory.Entry) (directory.Region, []InvTarget) {
	if victim == nil {
		return 0, nil
	}
	inv := TargetsOf(victim.Sharers)
	c.InvMsgsByEvicts += uint64(len(inv))
	c.LinesInvByEvicts += uint64(len(inv) * c.Dir.Config().GranLines)
	if c.Mutate.Has(MutDropEvictInv) {
		// The mutation drops the invalidation messages, not the fact of
		// the eviction: callers still learn the real victim region
		// (a zero Region is indistinguishable from "no victim"), and the
		// counters above keep recording the protocol-intended traffic.
		return victim.Region, nil
	}
	return victim.Region, inv
}
