//go:build race

package experiments

// raceEnabled reports whether this test binary was built with the race
// detector; long campaign tests scale down or skip under it.
const raceEnabled = true
