package experiments

import (
	"fmt"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/report"
	"hmg/internal/stats"
	"hmg/internal/workload"
)

// ScalingStudy measures the Section VII-D discussion: HMG is envisioned
// for systems "comprised by a single NVSwitch-based network", and its
// hierarchical sharer tracking (M+N-2 bits) scales with GPU count. The
// study runs the suite on 2-, 4-, and 8-GPU machines (4 GPMs each),
// normalizing each machine size to its own no-remote-caching baseline.
func ScalingStudy(r *Runner) (*report.Table, error) {
	kinds := []proto.Kind{proto.NHCC, proto.SWHier, proto.HMG, proto.Ideal}
	t := &report.Table{Title: "Sec. VII-D: scaling with GPU count (4 GPMs per GPU)"}
	for _, k := range kinds {
		t.Columns = append(t.Columns, legend(k))
	}
	for _, gpus := range []int{2, 4, 8} {
		base := make(map[string]float64)
		for _, b := range workload.Suite() {
			res, err := r.runScaled(b, proto.NoRemoteCache, gpus)
			if err != nil {
				return nil, err
			}
			base[b.Abbrev] = float64(res.Cycles)
		}
		row := make([]float64, 0, len(kinds))
		for _, k := range kinds {
			var sp []float64
			for _, b := range workload.Suite() {
				res, err := r.runScaled(b, k, gpus)
				if err != nil {
					return nil, err
				}
				sp = append(sp, base[b.Abbrev]/float64(res.Cycles))
			}
			row = append(row, stats.GeoMean(sp))
		}
		t.Add(fmt.Sprintf("%d GPUs", gpus), row...)
	}
	t.AddNote("each machine size is normalized to its own no-remote-caching baseline")
	t.AddNote("an 8-GPU HMG entry tracks M+N-2 = 10 sharers (10-bit vectors)")
	return t, nil
}

// runScaled runs one benchmark on a machine with the given GPU count,
// memoized under a synthetic variant key.
func (r *Runner) runScaled(bench workload.Params, kind proto.Kind, gpus int) (*gsim.Results, error) {
	key := runKey{bench.Abbrev + fmt.Sprintf("@%dgpu", gpus), kind, Variant{}.withDefaults()}
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	cfg := r.Config(kind, Variant{})
	cfg.Topo.NumGPUs = gpus
	sys, err := gsim.New(cfg)
	if err != nil {
		return nil, err
	}
	tr := bench.Generate(cfg.Topo, r.opts.Scale)
	res, err := sys.Run(tr)
	if err != nil {
		return nil, fmt.Errorf("scaling %s/%v@%d: %w", bench.Abbrev, kind, gpus, err)
	}
	r.cache[key] = res
	if r.opts.Log != nil {
		fmt.Fprintf(r.opts.Log, "  ran %-12s %-16v %d GPUs %9d cycles\n", bench.Abbrev, kind, gpus, res.Cycles)
	}
	return res, nil
}
