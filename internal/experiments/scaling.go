package experiments

import (
	"fmt"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/report"
	"hmg/internal/stats"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

// scalingKinds and scalingGPUCounts are the protocol columns and
// machine sizes of the GPU-count scaling study.
var scalingKinds = []proto.Kind{proto.NHCC, proto.SWHier, proto.HMG, proto.Ideal}
var scalingGPUCounts = []int{2, 4, 8}

// ScalingStudy measures the Section VII-D discussion: HMG is envisioned
// for systems "comprised by a single NVSwitch-based network", and its
// hierarchical sharer tracking (M+N-2 bits) scales with GPU count. The
// study runs the suite on 2-, 4-, and 8-GPU machines (4 GPMs each),
// normalizing each machine size to its own no-remote-caching baseline.
func ScalingStudy(r *Runner) (*report.Table, error) {
	kinds := scalingKinds
	t := &report.Table{Title: "Sec. VII-D: scaling with GPU count (4 GPMs per GPU)"}
	for _, k := range kinds {
		t.Columns = append(t.Columns, legend(k))
	}
	for _, gpus := range scalingGPUCounts {
		base := make(map[string]float64)
		for _, b := range workload.Suite() {
			res, err := r.runScaled(b, proto.NoRemoteCache, gpus)
			if err != nil {
				return nil, err
			}
			base[b.Abbrev] = float64(res.Cycles)
		}
		row := make([]float64, 0, len(kinds))
		for _, k := range kinds {
			var sp []float64
			for _, b := range workload.Suite() {
				res, err := r.runScaled(b, k, gpus)
				if err != nil {
					return nil, err
				}
				sp = append(sp, base[b.Abbrev]/float64(res.Cycles))
			}
			row = append(row, stats.GeoMean(sp))
		}
		t.Add(fmt.Sprintf("%d GPUs", gpus), row...)
	}
	t.AddNote("each machine size is normalized to its own no-remote-caching baseline")
	t.AddNote("an 8-GPU HMG entry tracks M+N-2 = 10 sharers (10-bit vectors)")
	return t, nil
}

// runScaled runs one benchmark on a machine with the given GPU count
// (keeping the base GPMs per GPU), memoized under a topology-suffixed
// key — a 4-GPU machine is the Table II configuration and shares its
// memo entries with plain runs.
func (r *Runner) runScaled(bench workload.Params, kind proto.Kind, gpus int) (*gsim.Results, error) {
	return r.runAt(bench, kind, Variant{}, topo.Spec{NumGPUs: gpus})
}
