// The topology-scaling figure: the motivating comparison of this
// repo's large-machine support. Flat hardware coherence (NHCC-style)
// names sharers by global GPM id, so its directory entry width and its
// willingness to spray invalidations across GPU boundaries both grow
// with the whole machine; hierarchical HMG names GPU-local modules plus
// peer GPUs (M+N-2 sharers) and coalesces cross-GPU invalidations per
// GPU. The study runs both protocols from a 2x2 desk-side box to a
// 16x8 NVSwitch-class system and reports, per machine shape: geomean
// speedup over that shape's own no-remote-caching baseline, directory
// storage bytes per entry at full (real-hardware) scale, and mean
// inter-GPU invalidation bandwidth.

package experiments

import (
	"fmt"

	"hmg/internal/directory"
	"hmg/internal/proto"
	"hmg/internal/report"
	"hmg/internal/stats"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

// topoScaleSpecs are the machine shapes of the study, desk-side to
// NVSwitch-class. The largest flat machine tracks 128 global GPM ids —
// far past the 32-id inline sharer word — so a full toposcale run
// exercises the promoted sharer-set representations end to end.
var topoScaleSpecs = []topo.Spec{
	{NumGPUs: 2, GPMsPerGPU: 2},
	{NumGPUs: 4, GPMsPerGPU: 4},
	{NumGPUs: 8, GPMsPerGPU: 4},
	{NumGPUs: 8, GPMsPerGPU: 8},
	{NumGPUs: 16, GPMsPerGPU: 8},
}

// topoScaleKinds are the protocol columns: the flat and hierarchical
// hardware designs.
var topoScaleKinds = []proto.Kind{proto.NHCC, proto.HMG}

// topoScaleBenchNames is the benchmark subset of the study — one
// sync-heavy ML kernel, one HPC stencil, one irregular graph workload —
// kept small because every machine shape is a distinct simulation of
// each.
var topoScaleBenchNames = []string{"lstm", "MiniAMR", "bfs"}

func topoScaleBenches() ([]workload.Params, error) {
	var out []workload.Params
	for _, name := range topoScaleBenchNames {
		b, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// topoScaleEntryBytes is the directory storage cost of one entry in
// bytes at a machine shape, using the §VII-C accounting (48-bit region
// tags): flat protocols bill one sharer bit per remote GPM in the whole
// system, hierarchical ones bill M+N-2.
func topoScaleEntryBytes(kind proto.Kind, sp topo.Spec) float64 {
	maxSharers := sp.NumGPUs*sp.GPMsPerGPU - 1
	if proto.For(kind).Hierarchical {
		maxSharers = sp.GPMsPerGPU - 1 + sp.NumGPUs - 1
	}
	return float64(directory.StorageBits(48, maxSharers)) / 8
}

// TopoScale generates the topology-scaling study table.
func TopoScale(r *Runner) (*report.Table, error) {
	benches, err := topoScaleBenches()
	if err != nil {
		return nil, err
	}
	t := &report.Table{Title: "Topology scaling: flat vs hierarchical coherence, 2x2 to 16x8"}
	for _, k := range topoScaleKinds {
		t.Columns = append(t.Columns,
			legend(k)+" speedup", legend(k)+" dir B/entry", legend(k)+" inv GB/s")
	}
	for _, sp := range topoScaleSpecs {
		base := make(map[string]float64)
		for _, b := range benches {
			res, err := r.runAt(b, proto.NoRemoteCache, Variant{}, sp)
			if err != nil {
				return nil, err
			}
			base[b.Abbrev] = float64(res.Cycles)
		}
		var row []float64
		for _, k := range topoScaleKinds {
			var sp64 []float64
			var inv stats.Mean
			for _, b := range benches {
				res, err := r.runAt(b, k, Variant{}, sp)
				if err != nil {
					return nil, err
				}
				sp64 = append(sp64, base[b.Abbrev]/float64(res.Cycles))
				inv.Add(res.InterGPUInvGBs())
			}
			row = append(row, stats.GeoMean(sp64), topoScaleEntryBytes(k, sp), inv.Value())
		}
		t.Add(sp.String(), row...)
	}
	t.AddNote(fmt.Sprintf("benchmarks: %v; each shape normalized to its own no-remote-caching baseline", topoScaleBenchNames))
	t.AddNote("dir B/entry bills 48-bit tags plus total-GPMs-1 (flat) or M+N-2 (hierarchical) sharer bits")
	return t, nil
}

// topoScalePlan covers the study: both protocols and the per-shape
// baseline on every machine shape.
func topoScalePlan() []RunSpec {
	benches, err := topoScaleBenches()
	if err != nil {
		return nil // Gen reports the error
	}
	var specs []RunSpec
	for _, sp := range topoScaleSpecs {
		for _, b := range benches {
			specs = append(specs, RunSpec{Bench: b, Kind: proto.NoRemoteCache, Topo: sp})
			for _, k := range topoScaleKinds {
				specs = append(specs, RunSpec{Bench: b, Kind: k, Topo: sp})
			}
		}
	}
	return specs
}
