package experiments

import (
	"errors"
	"math"
	"os"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/resstore"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

// storeRunner builds a Runner whose memo cache is backed by the
// persistent store at dir; fresh calls with the same dir model separate
// processes sharing one store.
func storeRunner(t *testing.T, dir string) *Runner {
	t.Helper()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(Options{Scale: 0.1, SMsPerGPM: 4, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestMemoizedErrorRetry reproduces the error-poisoning bug: a failed
// simulation's cache entry must be published to its concurrent waiters
// and then evicted, so the next request re-simulates instead of
// replaying the stale error forever.
func TestMemoizedErrorRetry(t *testing.T) {
	r := testRunner()
	key := runKey{bench: "synthetic", kind: proto.HMG}
	boom := errors.New("transient simulation failure")
	var calls atomic.Int32
	release := make(chan struct{})

	const waiters = 8
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := r.memoized(key, resstore.Key{}, func() (*gsim.Results, error) {
				calls.Add(1)
				<-release // hold the singleflight slot until every duplicate has piled up
				return nil, boom
			})
			errs[i] = err
		}(i)
	}
	waitFor(t, "duplicate requesters to block", func() bool { return r.Summary().MemoHits == waiters-1 })
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("requester %d got %v, want the owner's error", i, err)
		}
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("failing sim executed %d times across concurrent requesters, want 1", n)
	}

	// The key must not be poisoned: a later request re-simulates.
	res, err := r.memoized(key, resstore.Key{}, func() (*gsim.Results, error) {
		calls.Add(1)
		return &gsim.Results{Name: "synthetic", Cycles: 42}, nil
	})
	if err != nil {
		t.Fatalf("retry after failure still errors: %v", err)
	}
	if res.Cycles != 42 || calls.Load() != 2 {
		t.Fatalf("retry did not re-simulate (cycles %d, calls %d)", res.Cycles, calls.Load())
	}
	// And the successful retry is cached like any other run.
	again, err := r.memoized(key, resstore.Key{}, func() (*gsim.Results, error) {
		t.Error("cached success re-simulated")
		return nil, nil
	})
	if err != nil || again != res {
		t.Fatalf("cached success not served: %v %v", again, err)
	}
	if s := r.Summary(); s.UniqueRuns != 1 {
		t.Fatalf("UniqueRuns = %d after one failure and one success, want 1", s.UniqueRuns)
	}
}

// TestFailedRunsNeverStored: only successful simulations reach the
// persistent tier.
func TestFailedRunsNeverStored(t *testing.T) {
	dir := t.TempDir()
	r := storeRunner(t, dir)
	key := runKey{bench: "synthetic", kind: proto.HMG}
	dk := resstore.SumKey("synthetic-run")
	boom := errors.New("boom")
	if _, err := r.memoized(key, dk, func() (*gsim.Results, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n, err := r.opts.Store.Len(); err != nil || n != 0 {
		t.Fatalf("store holds %d records after a failed run (err %v), want 0", n, err)
	}
	s := r.Summary()
	if s.DiskMisses != 1 || s.DiskWrites != 0 || s.DiskHits != 0 {
		t.Fatalf("disk accounting after failure = %+v", s)
	}
	// The retry succeeds and is written back.
	want := &gsim.Results{Name: "synthetic", Cycles: 7}
	if _, err := r.memoized(key, dk, func() (*gsim.Results, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	if got, ok := r.opts.Store.Get(dk); !ok || got.Cycles != want.Cycles {
		t.Fatalf("successful retry not stored: %v %v", got, ok)
	}
	if s := r.Summary(); s.DiskWrites != 1 {
		t.Fatalf("DiskWrites = %d, want 1", s.DiskWrites)
	}
}

// TestStoreColdWarm: a second runner over the same store directory —
// a fresh process — serves every run from disk without simulating, and
// the served results are bit-identical to the cold run's.
func TestStoreColdWarm(t *testing.T) {
	dir := t.TempDir()
	b, err := workload.Get("overfeat")
	if err != nil {
		t.Fatal(err)
	}

	cold := storeRunner(t, dir)
	r1, err := cold.Run(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if s := cold.Summary(); s.UniqueRuns != 1 || s.DiskMisses != 1 || s.DiskWrites != 1 || s.DiskHits != 0 {
		t.Fatalf("cold accounting = %+v", s)
	}

	warm := storeRunner(t, dir)
	r2, err := warm.Run(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Summary(); s.UniqueRuns != 0 || s.DiskHits != 1 || s.DiskMisses != 0 {
		t.Fatalf("warm accounting = %+v", s)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("warm results differ from cold:\ncold %+v\nwarm %+v", r1, r2)
	}
	// Within the warm process, repeats are in-memory memo hits, not
	// repeated disk reads.
	if _, err := warm.Run(b, proto.HMG, Variant{}); err != nil {
		t.Fatal(err)
	}
	if s := warm.Summary(); s.MemoHits != 1 || s.DiskHits != 1 {
		t.Fatalf("warm repeat accounting = %+v", s)
	}
}

// TestStoreCorruptionResimulates: a damaged record is a miss — the run
// re-simulates to identical results and repopulates the store.
func TestStoreCorruptionResimulates(t *testing.T) {
	dir := t.TempDir()
	b, err := workload.Get("overfeat")
	if err != nil {
		t.Fatal(err)
	}
	cold := storeRunner(t, dir)
	r1, err := cold.Run(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}

	path := cold.opts.Store.Path(cold.StoreKey(b, proto.HMG, Variant{}, topo.Spec{}))
	rec, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("record not at derived path: %v", err)
	}
	rec[len(rec)-1] ^= 0xFF // flip a payload byte
	if err := os.WriteFile(path, rec, 0o644); err != nil {
		t.Fatal(err)
	}

	warm := storeRunner(t, dir)
	r2, err := warm.Run(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if s := warm.Summary(); s.UniqueRuns != 1 || s.DiskHits != 0 || s.DiskMisses != 1 || s.DiskWrites != 1 {
		t.Fatalf("corrupted-record accounting = %+v (want a re-simulation and write-back)", s)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("re-simulated results differ from the original: %+v vs %+v", r1, r2)
	}
	// The write-back healed the store: a third runner gets a disk hit.
	healed := storeRunner(t, dir)
	if _, err := healed.Run(b, proto.HMG, Variant{}); err != nil {
		t.Fatal(err)
	}
	if s := healed.Summary(); s.UniqueRuns != 0 || s.DiskHits != 1 {
		t.Fatalf("healed-store accounting = %+v", s)
	}
}

// TestStoreKeyCanonicalization pins the content-address contract: keys
// collapse exactly where the in-process memo key does, and separate
// wherever the run specification or campaign scaling differs.
func TestStoreKeyCanonicalization(t *testing.T) {
	r := testRunner()
	b, err := workload.Get("overfeat")
	if err != nil {
		t.Fatal(err)
	}
	base := r.StoreKey(b, proto.HMG, Variant{}, topo.Spec{})
	if base == (resstore.Key{}) {
		t.Fatal("zero store key")
	}
	// Software configurations canonicalize directory parameters away.
	s1 := r.StoreKey(b, proto.SWHier, Variant{DirEntries: 3 * 1024}, topo.Spec{})
	s2 := r.StoreKey(b, proto.SWHier, Variant{DirEntries: 6 * 1024}, topo.Spec{})
	if s1 != s2 {
		t.Fatal("software runs with different directory sizes should share a key")
	}
	// Hardware configurations must not.
	h1 := r.StoreKey(b, proto.HMG, Variant{DirEntries: 3 * 1024}, topo.Spec{})
	if h1 == base {
		t.Fatal("directory size ignored in a hardware key")
	}
	// A per-run topology override equal to the base shape is the base key.
	if k := r.StoreKey(b, proto.HMG, Variant{}, topo.Spec{NumGPUs: 4}); k != base {
		t.Fatal("base-shape override should share the plain key")
	}
	if k := r.StoreKey(b, proto.HMG, Variant{}, topo.Spec{NumGPUs: 8}); k == base {
		t.Fatal("8-GPU override collides with the base key")
	}
	// Campaign scaling options are part of the run's identity.
	r2, err := NewRunner(Options{Scale: 0.2, SMsPerGPM: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r2.StoreKey(b, proto.HMG, Variant{}, topo.Spec{}) == base {
		t.Fatal("different Scale collides")
	}
	r3, err := NewRunner(Options{Scale: 0.1, SMsPerGPM: 8})
	if err != nil {
		t.Fatal(err)
	}
	if r3.StoreKey(b, proto.HMG, Variant{}, topo.Spec{}) == base {
		t.Fatal("different SMsPerGPM collides")
	}
	// Distinct benchmarks separate even at equal shape parameters.
	b2, err := workload.Get("lstm")
	if err != nil {
		t.Fatal(err)
	}
	if r.StoreKey(b2, proto.HMG, Variant{}, topo.Spec{}) == base {
		t.Fatal("distinct benchmarks collide")
	}
}

func TestModelVersion(t *testing.T) {
	v := ModelVersion()
	if v == "" || v != ModelVersion() {
		t.Fatalf("ModelVersion unstable: %q", v)
	}
	for _, part := range []string{"hmg-model", "tablei", "results"} {
		if !strings.Contains(v, part) {
			t.Fatalf("ModelVersion %q missing %q", v, part)
		}
	}
	// The stamp is a cache key in CI — keep it shell- and
	// actions/cache-safe.
	if strings.ContainsAny(v, " ,\n\t/") {
		t.Fatalf("ModelVersion %q contains characters unsafe for cache keys", v)
	}
}

func TestOptionsScaleNaN(t *testing.T) {
	if _, err := NewRunner(Options{Scale: math.NaN()}); err == nil {
		t.Fatal("NewRunner accepted NaN Scale")
	}
}
