package experiments

import (
	"fmt"

	"hmg/internal/directory"
	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/report"
	"hmg/internal/stats"
	"hmg/internal/trace"
	"hmg/internal/workload"
)

// fig2Protocols are the three non-hierarchical-study configurations of
// Fig. 2 (plus the implicit baseline).
var fig2Protocols = []proto.Kind{proto.SWNonHier, proto.NHCC, proto.Ideal}

// fig8Protocols are the five configurations of Fig. 8.
var fig8Protocols = []proto.Kind{proto.SWNonHier, proto.NHCC, proto.SWHier, proto.HMG, proto.Ideal}

// fig8Labels maps protocol kinds to the paper's legend names.
func legend(k proto.Kind) string {
	switch k {
	case proto.SWNonHier:
		return "SW-NonHier"
	case proto.NHCC:
		return "HW-NonHier"
	case proto.SWHier:
		return "SW-Hier"
	case proto.HMG:
		return "HMG"
	case proto.Ideal:
		return "Ideal"
	default:
		return k.String()
	}
}

func speedupTable(r *Runner, title string, kinds []proto.Kind) (*report.Table, error) {
	t := &report.Table{Title: title}
	for _, k := range kinds {
		t.Columns = append(t.Columns, legend(k))
	}
	for _, b := range workload.Suite() {
		row := make([]float64, 0, len(kinds))
		for _, k := range kinds {
			s, err := r.Speedup(b, k, Variant{})
			if err != nil {
				return nil, err
			}
			row = append(row, s)
		}
		t.Add(b.Abbrev, row...)
	}
	t.AddGeoMeanRow("GeoMean")
	t.AddNote("speedup over a 4-GPU system that disallows caching of remote-GPU data (Table II config)")
	return t, nil
}

// Fig2 reproduces the motivation study: benefits of caching remote GPU
// data under the three non-hierarchical-era protocols.
func Fig2(r *Runner) (*report.Table, error) {
	return speedupTable(r, "Fig. 2: remote-caching benefit of non-hierarchical protocols (4 GPUs x 4 GPMs)", fig2Protocols)
}

// Fig3 reproduces the inter-GPU load redundancy profile: the percentage
// of inter-GPU loads destined to addresses also accessed by another GPM
// of the same GPU.
func Fig3(r *Runner) (*report.Table, error) {
	t := &report.Table{
		Title:     "Fig. 3: % of inter-GPU loads to addresses accessed by another GPM of the same GPU",
		Columns:   []string{"redundant%"},
		Precision: 1,
	}
	cfg := r.Config(proto.HMG, Variant{})
	var sum, n float64
	for _, b := range workload.Suite() {
		tr := b.Generate(cfg.Topo, r.opts.Scale)
		red := 100 * workload.InterGPURedundancy(tr, cfg.Topo)
		t.Add(b.Abbrev, red)
		sum += red
		n++
	}
	t.Add("Avg", sum/n)
	return t, nil
}

// Fig8 reproduces the main result: the five-way protocol comparison on
// the 4-GPU, 16-GPM system.
func Fig8(r *Runner) (*report.Table, error) {
	t, err := speedupTable(r, "Fig. 8: performance of a 4-GPU system (4 GPMs per GPU), 5 configurations", fig8Protocols)
	if err != nil {
		return nil, err
	}
	// The headline claims of the paper, recomputed from this table.
	gm := func(col string) float64 {
		v, _ := t.Cell("GeoMean", col)
		return v
	}
	if gm(legend(proto.Ideal)) > 0 {
		t.AddNote("HMG reaches %.0f%% of Ideal (paper: 97%%)", 100*gm("HMG")/gm("Ideal"))
	}
	if gm(legend(proto.SWNonHier)) > 0 {
		t.AddNote("HMG over non-hierarchical SW: +%.0f%% (paper: +26%%)", 100*(gm("HMG")/gm("SW-NonHier")-1))
	}
	if gm(legend(proto.NHCC)) > 0 {
		t.AddNote("HMG over NHCC: +%.0f%% (paper: +18%%)", 100*(gm("HMG")/gm("HW-NonHier")-1))
	}
	return t, nil
}

// Fig9 reproduces the store-invalidation profile: average cache lines
// invalidated by each store request on shared data, under HMG.
func Fig9(r *Runner) (*report.Table, error) {
	return hmgProfile(r, "Fig. 9: avg cache lines invalidated per store on shared data (HMG)",
		"lines/store", func(res *gsim.Results) float64 { return res.InvLinesPerStore() })
}

// Fig10 reproduces the eviction-invalidation profile: average cache
// lines invalidated by each coherence directory eviction, under HMG.
func Fig10(r *Runner) (*report.Table, error) {
	return hmgProfile(r, "Fig. 10: avg cache lines invalidated per directory eviction (HMG)",
		"lines/evict", func(res *gsim.Results) float64 { return res.InvLinesPerDirEvict() })
}

// Fig11 reproduces the invalidation bandwidth profile: total bandwidth
// cost of invalidation messages under HMG.
func Fig11(r *Runner) (*report.Table, error) {
	return hmgProfile(r, "Fig. 11: total bandwidth cost of invalidation messages (HMG)",
		"GB/s", func(res *gsim.Results) float64 { return res.InvBandwidthGBs() })
}

func hmgProfile(r *Runner, title, col string, metric func(*gsim.Results) float64) (*report.Table, error) {
	t := &report.Table{Title: title, Columns: []string{col}}
	var sum, n float64
	for _, b := range workload.Suite() {
		res, err := r.Run(b, proto.HMG, Variant{})
		if err != nil {
			return nil, err
		}
		v := metric(res)
		t.Add(b.Abbrev, v)
		sum += v
		n++
	}
	t.Add("Avg", sum/n)
	return t, nil
}

// sweep builds a sensitivity table: geomean suite speedup of the Fig. 8
// protocols at each variant point, normalized to the Table II
// no-caching baseline (the paper's Figs. 12-14 presentation).
func sweep(r *Runner, title string, points []Variant, labels []string) (*report.Table, error) {
	kinds := []proto.Kind{proto.NHCC, proto.SWHier, proto.HMG, proto.Ideal}
	t := &report.Table{Title: title}
	for _, k := range kinds {
		t.Columns = append(t.Columns, legend(k))
	}
	for i, v := range points {
		row := make([]float64, 0, len(kinds))
		for _, k := range kinds {
			var sp []float64
			for _, b := range workload.Suite() {
				s, err := r.Speedup(b, k, v)
				if err != nil {
					return nil, err
				}
				sp = append(sp, s)
			}
			row = append(row, stats.GeoMean(sp))
		}
		t.Add(labels[i], row...)
	}
	t.AddNote("geomean speedup over the suite; baseline is no caching at the Table II configuration")
	return t, nil
}

// fig12Points are the inter-GPU bandwidth sweep points.
func fig12Points() ([]Variant, []string) {
	var points []Variant
	var labels []string
	for _, bw := range []float64{100, 200, 300, 400} {
		points = append(points, Variant{NVLinkGBs: bw})
		labels = append(labels, fmt.Sprintf("%.0fGB/s", bw))
	}
	return points, labels
}

// Fig12 reproduces the inter-GPU bandwidth sensitivity sweep.
func Fig12(r *Runner) (*report.Table, error) {
	points, labels := fig12Points()
	return sweep(r, "Fig. 12: sensitivity to inter-GPU bandwidth", points, labels)
}

// fig13Points are the L2 capacity sweep points.
func fig13Points() ([]Variant, []string) {
	var points []Variant
	var labels []string
	for _, mb := range []int{6, 12, 24} {
		points = append(points, Variant{L2MBPerGPU: mb})
		labels = append(labels, fmt.Sprintf("%dMB/GPU", mb))
	}
	return points, labels
}

// Fig13 reproduces the L2 capacity sensitivity sweep.
func Fig13(r *Runner) (*report.Table, error) {
	points, labels := fig13Points()
	return sweep(r, "Fig. 13: sensitivity to L2 cache size", points, labels)
}

// fig14Points are the directory size sweep points.
func fig14Points() ([]Variant, []string) {
	var points []Variant
	var labels []string
	for _, k := range []int{3, 6, 12} {
		points = append(points, Variant{DirEntries: k * 1024})
		labels = append(labels, fmt.Sprintf("%dK entries/GPM", k))
	}
	return points, labels
}

// Fig14 reproduces the directory size sensitivity sweep.
func Fig14(r *Runner) (*report.Table, error) {
	points, labels := fig14Points()
	return sweep(r, "Fig. 14: sensitivity to coherence directory size", points, labels)
}

// granularityPoints are the §VII-B constant-coverage sweep points.
func granularityPoints() ([]Variant, []string) {
	var points []Variant
	var labels []string
	for _, g := range []int{1, 2, 4, 8} {
		points = append(points, Variant{GranLines: g, DirEntries: 48 * 1024 / g})
		labels = append(labels, fmt.Sprintf("%d lines/entry", g))
	}
	return points, labels
}

// Granularity reproduces the §VII-B (unpictured) study: directory entry
// granularity varied at constant coverage — entries × granularity held
// at the Table II 48K lines per GPM.
func Granularity(r *Runner) (*report.Table, error) {
	points, labels := granularityPoints()
	t, err := sweep(r, "Sec. VII-B: directory entry granularity at constant coverage", points, labels)
	if err != nil {
		return nil, err
	}
	t.AddNote("coverage held at 48K lines (6MB of shareable data) per GPM")
	return t, nil
}

// DowngradeAblation studies the optional clean-eviction downgrade
// message of Section IV (not enabled in the paper's evaluation): HMG
// with and without it, plus the invalidation traffic each produces.
func DowngradeAblation(r *Runner) (*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation: optional sharer-downgrade messages (Section IV option)",
		Columns: []string{"speedup", "invGB/s", "dirEvictLines"},
	}
	for _, on := range []bool{false, true} {
		var sp []float64
		var invGBs, evLines float64
		for _, b := range workload.Suite() {
			s, err := r.Speedup(b, proto.HMG, Variant{Downgrade: on})
			if err != nil {
				return nil, err
			}
			sp = append(sp, s)
			res, err := r.Run(b, proto.HMG, Variant{Downgrade: on})
			if err != nil {
				return nil, err
			}
			invGBs += res.InvBandwidthGBs()
			evLines += float64(res.LinesInvByEvicts)
		}
		label := "HMG (no downgrade)"
		if on {
			label = "HMG + downgrade"
		}
		t.Add(label, stats.GeoMean(sp), invGBs/float64(len(workload.Suite())), evLines)
	}
	t.AddNote("downgrades trade extra control messages for fewer eviction invalidations")
	return t, nil
}

// writeBackRows are the protocol × L2-design points of the write-back
// ablation, in table order.
var writeBackRows = []struct {
	label string
	kind  proto.Kind
	wb    bool
}{
	{"NHCC write-through", proto.NHCC, false},
	{"NHCC write-back", proto.NHCC, true},
	{"HMG write-through", proto.HMG, false},
	{"HMG write-back", proto.HMG, true},
}

// WriteBackAblation studies the Section IV write-back L2 option against
// the paper's evaluated write-through design, for the hardware
// protocols.
func WriteBackAblation(r *Runner) (*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation: write-back vs write-through L2 (Section IV design options)",
		Columns: []string{"speedup", "interGPU GB/s"},
	}
	for _, row := range writeBackRows {
		var sp []float64
		var gbs float64
		for _, b := range workload.Suite() {
			s, err := r.Speedup(b, row.kind, Variant{WriteBack: row.wb})
			if err != nil {
				return nil, err
			}
			sp = append(sp, s)
			res, err := r.Run(b, row.kind, Variant{WriteBack: row.wb})
			if err != nil {
				return nil, err
			}
			gbs += res.InterGPUGBs()
		}
		t.Add(row.label, stats.GeoMean(sp), gbs/float64(len(workload.Suite())))
	}
	t.AddNote("write-back absorbs plain stores locally and flushes on releases, kernel boundaries, and evictions")
	return t, nil
}

// RelatedProtocols compares HMG against the CARVE-like
// classification-based baseline the paper discusses in Sections II-A and
// VII-A ("these observations highlight the benefit of tracking sharers
// dynamically, rather than classifying data sharing type alone").
func RelatedProtocols(r *Runner) (*report.Table, error) {
	t, err := speedupTable(r, "Related work: sharer tracking (HMG) vs region classification (CARVE-like)",
		[]proto.Kind{proto.NHCC, proto.CARVE, proto.HMG})
	if err != nil {
		return nil, err
	}
	t.AddNote("CARVE broadcasts on read-write transitions and never caches read-write shared data remotely")
	return t, nil
}

// MCAStudy quantifies the paper's Section III-B argument: a GPU-VI-like
// protocol that preserves multi-copy-atomicity must collect invalidation
// acknowledgments before a store to shared data completes — tolerable on
// one GPU, but the inter-GPU round trip makes it expensive at multi-GPU
// scale. Columns compare the flat ack-free NHCC, the flat
// multi-copy-atomic GPU-VI, and HMG.
func MCAStudy(r *Runner) (*report.Table, error) {
	t, err := speedupTable(r, "Sec. III-B: the cost of multi-copy-atomicity at multi-GPU scale",
		[]proto.Kind{proto.GPUVI, proto.NHCC, proto.HMG})
	if err != nil {
		return nil, err
	}
	t.AddNote("GPU-VI-MCA blocks each home line until every sharer acknowledges its invalidation")
	return t, nil
}

// gpmScopeNames are the explicitly synchronizing benchmarks of the
// Section VII-D scope study; gpmScopeScopes the sync scopes swept.
var gpmScopeNames = []string{"namd2.10", "cuSolver", "mst"}
var gpmScopeScopes = []trace.Scope{trace.ScopeGPM, trace.ScopeGPU, trace.ScopeSys}

// gpmScopeBench narrows/widens a benchmark's synchronization to sc,
// keyed under a scope-suffixed abbreviation.
func gpmScopeBench(b workload.Params, sc trace.Scope) workload.Params {
	v := b
	v.SyncScope = sc
	v.Abbrev = b.Abbrev + sc.String()
	return v
}

// GPMScopeStudy measures the Section VII-D question: would a .gpm scope
// between .cta and .gpu pay off? The explicitly synchronizing
// benchmarks run under HMG with their synchronization narrowed to .gpm,
// kept at .gpu, and widened to .sys. The paper's conclusion — high
// inter-GPM bandwidth makes the .gpm/.gpu gap small — is measurable
// here as the speedup difference between the first two columns.
func GPMScopeStudy(r *Runner) (*report.Table, error) {
	t := &report.Table{
		Title:   "Sec. VII-D: would a .gpm scope help? (sync-heavy benchmarks under HMG)",
		Columns: []string{".gpm sync", ".gpu sync", ".sys sync"},
	}
	for _, name := range gpmScopeNames {
		b, err := workload.Get(name)
		if err != nil {
			return nil, err
		}
		row := make([]float64, 0, 3)
		for _, sc := range gpmScopeScopes {
			v := gpmScopeBench(b, sc)
			s, err := r.Speedup(v, proto.HMG, Variant{})
			if err != nil {
				return nil, err
			}
			row = append(row, s)
		}
		t.Add(name, row...)
	}
	t.AddGeoMeanRow("GeoMean")
	t.AddNote("speedups vs the Table II no-caching baseline of each original benchmark")
	return t, nil
}

// localityRows are the locality-policy ablation points, in table order.
var localityRows = []struct {
	label string
	v     Variant
}{
	{"contiguous CTAs + first-touch (paper)", Variant{}},
	{"scattered CTAs", Variant{ScatterCTAs: true}},
	{"static page placement", Variant{StaticPlacement: true}},
	{"both ablated", Variant{ScatterCTAs: true, StaticPlacement: true}},
}

// LocalityAblation measures the two locality policies the paper's
// simulator inherits from prior work ("contiguous CTA scheduling and
// first-touch page placement policies ... to maximize data locality"):
// scattering CTAs round-robin, and replacing first-touch placement with
// a static round-robin page assignment, both under HMG.
func LocalityAblation(r *Runner) (*report.Table, error) {
	t := &report.Table{
		Title:   "Ablation: locality policies (contiguous CTA scheduling, first-touch placement) under HMG",
		Columns: []string{"speedup"},
	}
	for _, row := range localityRows {
		var sp []float64
		for _, b := range workload.Suite() {
			s, err := r.Speedup(b, proto.HMG, row.v)
			if err != nil {
				return nil, err
			}
			sp = append(sp, s)
		}
		t.Add(row.label, stats.GeoMean(sp))
	}
	t.AddNote("speedups vs the unmodified no-remote-caching baseline; lower rows show locality lost")
	return t, nil
}

// TableII documents the simulated configuration in the paper's (full
// scale) units; the scaled-model equivalents appear as footnotes.
func TableII(r *Runner) *report.Table {
	full := gsim.DefaultConfig(r.opts.SMsPerGPM, proto.HMG)
	scaled := r.Config(proto.HMG, Variant{})
	t := &report.Table{Title: "Table II: configuration of simulated architecture", Columns: []string{"value"}, Precision: 0}
	t.Add("GPUs", float64(full.Topo.NumGPUs))
	t.Add("GPMs per GPU", float64(full.Topo.GPMsPerGPU))
	t.Add("SMs per GPU (modeled x aggregation)", float64(full.Topo.SMsPerGPM*full.Topo.GPMsPerGPU*(32/full.Topo.SMsPerGPM)))
	t.Add("GPU frequency (GHz)", full.FrequencyHz/1e9)
	t.Add("L2 per GPU (MB)", float64(full.L2Slice.CapacityBytes*full.Topo.GPMsPerGPU)/(1<<20))
	t.Add("L2 line (B)", float64(full.Topo.LineSize))
	t.Add("L2 ways", float64(full.L2Slice.Ways))
	t.Add("dir entries per GPM", float64(full.Dir.Entries))
	t.Add("lines per dir entry", float64(full.Dir.GranLines))
	t.Add("inter-GPM BW per GPU (GB/s)", full.Net.XbarPortGBs*float64(full.Topo.GPMsPerGPU))
	t.Add("inter-GPU BW per link (GB/s)", full.Net.NVLinkGBs)
	t.Add("DRAM BW per GPU (GB/s)", full.DRAM.BandwidthGBs*float64(full.Topo.GPMsPerGPU))
	t.Add("OS page (MB)", float64(full.Topo.PageSize)/(1<<20))
	t.AddNote("experiments run a 1/%d-scale model: L2 %dKB/GPM, %d dir entries/GPM, %dKB pages",
		ScaleDown, scaled.L2Slice.CapacityBytes/1024, scaled.Dir.Entries, r.opts.PageSizeKB)
	t.AddNote("bandwidths scale with SM aggregation: NVLink modeled at %.0f GB/s per link", scaled.Net.NVLinkGBs)
	return t
}

// TableIII documents the benchmark suite.
func TableIII(r *Runner) *report.Table {
	t := &report.Table{Title: "Table III: benchmarks", Columns: []string{"scaledMB", "kernels", "ops"}, Precision: 1}
	cfg := r.Config(proto.HMG, Variant{})
	for _, b := range workload.Suite() {
		tr := b.Generate(cfg.Topo, r.opts.Scale)
		st := workload.Summarize(tr, cfg.Topo)
		t.Add(b.Abbrev, b.FootprintMB, float64(st.Kernels), float64(st.Ops))
	}
	return t
}

// HardwareCost reproduces the §VII-C storage analysis at full (Table
// II) scale — the directory cost is a property of the real hardware, not
// of the scaled experiment model.
func HardwareCost(r *Runner) *report.Table {
	cfg := gsim.DefaultConfig(r.opts.SMsPerGPM, proto.HMG)
	maxSharers := cfg.Topo.GPMsPerGPU - 1 + cfg.Topo.NumGPUs - 1
	bits := directory.StorageBits(48, maxSharers)
	total := directory.StorageBytes(cfg.Dir.Entries, 48, maxSharers)
	t := &report.Table{Title: "Sec. VII-C: HMG hardware cost", Columns: []string{"value"}, Precision: 2}
	t.Add("sharers per entry (M+N-2)", float64(maxSharers))
	t.Add("bits per entry", float64(bits))
	t.Add("directory KB per GPM", float64(total)/1024)
	t.Add("% of GPM L2 capacity", 100*float64(total)/float64(cfg.L2Slice.CapacityBytes))
	t.AddNote("paper: 55 bits/entry, 84KB/GPM, 2.7%% of L2")
	return t
}
