package experiments

import (
	"strings"
	"testing"

	"hmg/internal/proto"
	"hmg/internal/topo"
)

// TestTopoScalePlanCoverage checks the study plan covers every machine
// shape for both protocols plus the per-shape baseline, and that the
// shapes produce distinct memo keys (no accidental folding of a 16x8
// run into the 4x4 cache).
func TestTopoScalePlanCoverage(t *testing.T) {
	r := testRunner()
	specs := topoScalePlan()
	want := len(topoScaleSpecs) * len(topoScaleBenchNames) * (len(topoScaleKinds) + 1)
	if len(specs) != want {
		t.Fatalf("plan has %d specs, want %d", len(specs), want)
	}
	keys := map[runKey]bool{}
	for _, s := range specs {
		keys[r.key(s.Bench, s.Kind, s.V, s.Topo)] = true
	}
	if len(keys) != want {
		t.Fatalf("plan folds to %d unique keys, want %d distinct", len(keys), want)
	}
	// The 4x4 shape must share keys with plain Table II runs.
	b := specs[0].Bench
	k44 := r.key(b, proto.NoRemoteCache, Variant{}, topo.Spec{NumGPUs: 4, GPMsPerGPU: 4})
	if k44 != r.key(b, proto.NoRemoteCache, Variant{}, topo.Spec{}) {
		t.Fatal("4x4 toposcale runs do not reuse Table II memo keys")
	}
	if !strings.Contains(r.key(b, proto.NHCC, Variant{}, topo.Spec{NumGPUs: 16, GPMsPerGPU: 8}).bench, "@16x8") {
		t.Fatal("16x8 memo key is not topology-suffixed")
	}
}

// TestTopoScaleDeterminism generates the toposcale figure serially and
// on 8 workers at a small scale: the rendered table must be
// byte-identical — the -jobs contract extended to topology-suffixed
// memo keys, including the promoted sharer representations the 8x8 and
// 16x8 flat runs exercise.
func TestTopoScaleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two full toposcale campaigns are slow; run without -short")
	}
	if raceEnabled {
		// The worker-pool/memo machinery is race-exercised at full scale
		// by TestPrewarmDeterminism; two more campaigns under the
		// detector add minutes without new interleavings.
		t.Skip("toposcale byte-identity is covered by the non-race tier")
	}
	gen := func(jobs int) string {
		r, err := NewRunner(Options{Scale: 0.02, SMsPerGPM: 2, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Prewarm(topoScalePlan()); err != nil {
			t.Fatal(err)
		}
		tab, err := TopoScale(r)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	if s, p := gen(1), gen(8); s != p {
		t.Fatalf("toposcale output differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", s, p)
	}
}
