package experiments

import (
	"fmt"
	"math"
	"time"

	"hmg/internal/gsim"
	"hmg/internal/msg"
	"hmg/internal/proto"
	"hmg/internal/report"
	"hmg/internal/stats"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// Fig. 7 in the paper correlates the proprietary simulator against real
// NVIDIA hardware. Without that hardware we calibrate against
// first-principles analytical models instead: four microbenchmarks with
// closed-form cycle predictions (latency chains, L1 streaming, local
// DRAM streaming, and inter-GPU-bandwidth-bound streaming), swept over
// sizes, reporting the correlation coefficient, mean absolute relative
// error, and simulation speed.

// micro is one calibration microbenchmark.
type micro struct {
	name    string
	kind    proto.Kind
	sizes   []int
	build   func(cfg gsim.Config, n int) *trace.Trace
	predict func(cfg gsim.Config, n int) float64
}

const mLine = 128

func microBenches() []micro {
	return []micro{
		{
			// One warp per SM hitting a tiny L1-resident working set.
			name:  "l1-stream",
			kind:  proto.HMG,
			sizes: []int{512, 2048, 8192},
			build: func(cfg gsim.Config, n int) *trace.Trace {
				return microTrace(cfg, func(sm, i int) trace.Op {
					base := int64(sm) * 64 * mLine
					return trace.Op{Kind: trace.Load, Addr: topo.Addr(base + int64(i%8)*mLine)}
				}, n, localPlacement)
			},
			predict: func(cfg gsim.Config, n int) float64 {
				// Warm-up misses for 8 lines, then L1-hit throughput
				// limited by hit latency over warp MLP.
				return float64(n) * float64(cfg.L1Latency) / float64(cfg.MaxWarpInflight)
			},
		},
		{
			// Every SM streams distinct lines from its local DRAM
			// partition: latency-bound at this MLP.
			name:  "dram-stream",
			kind:  proto.HMG,
			sizes: []int{256, 1024, 4096},
			build: func(cfg gsim.Config, n int) *trace.Trace {
				return microTrace(cfg, func(sm, i int) trace.Op {
					base := int64(sm) * 1 << 22
					return trace.Op{Kind: trace.Load, Addr: topo.Addr(base + int64(i)*mLine)}
				}, n, localPlacement)
			},
			predict: func(cfg gsim.Config, n int) float64 {
				rtt := float64(cfg.L1Latency+cfg.L2Latency+cfg.DRAM.Latency) + 2
				lat := float64(n) * rtt / float64(cfg.MaxWarpInflight)
				bpc := cfg.DRAM.BandwidthGBs * 1e9 / cfg.FrequencyHz
				bw := float64(n*cfg.Topo.SMsPerGPM*mLine) / bpc
				if bw > lat {
					return bw
				}
				return lat
			},
		},
		{
			// SMs of GPUs 1..3 stream distinct lines homed on GPU 0:
			// GPU 0's uplink serializes the responses.
			name:  "nvlink-stream",
			kind:  proto.NoRemoteCache,
			sizes: []int{128, 512, 2048},
			build: func(cfg gsim.Config, n int) *trace.Trace {
				return microTrace(cfg, func(sm, i int) trace.Op {
					gpm := sm / cfg.Topo.SMsPerGPM
					if gpm < cfg.Topo.GPMsPerGPU { // GPU 0 idles
						return trace.Op{}
					}
					base := int64(sm) * 1 << 22
					return trace.Op{Kind: trace.Load, Addr: topo.Addr(base + int64(i)*mLine)}
				}, n, placeOnGPU0)
			},
			predict: func(cfg gsim.Config, n int) float64 {
				remoteSMs := (cfg.Topo.NumGPUs - 1) * cfg.Topo.GPMsPerGPU * cfg.Topo.SMsPerGPM
				respBytes := float64(remoteSMs*n) * float64(cfg.Net.Sizes.Bytes(msg.DataResp))
				bpc := cfg.Net.NVLinkGBs * 1e9 / cfg.FrequencyHz
				return respBytes / bpc
			},
		},
		{
			// One warp issues serial .sys atomics to the remote GPU: a
			// pure round-trip-latency chain.
			name:  "atomic-chain",
			kind:  proto.HMG,
			sizes: []int{16, 64, 256},
			build: func(cfg gsim.Config, n int) *trace.Trace {
				var ops []trace.Op
				for i := 0; i < n; i++ {
					ops = append(ops, trace.Op{Kind: trace.Atomic, Scope: trace.ScopeSys, Addr: 0, Val: 1})
				}
				tr := &trace.Trace{Name: "atomic-chain", Kernels: []trace.Kernel{
					{CTAs: []trace.CTA{{Warps: []trace.Warp{{Ops: ops}}}}},
				}}
				// Home the line on the last GPM (a different GPU).
				tr.Placement = []trace.PlacementHint{{Page: 0, GPM: topo.GPMID(cfg.Topo.TotalGPMs() - 1)}}
				return tr
			},
			predict: func(cfg gsim.Config, n int) float64 {
				oneWay := float64(cfg.Net.XbarLatency)*2 + float64(cfg.Net.NVLinkLatency)
				rtt := float64(cfg.L1Latency) + oneWay + float64(cfg.L2Latency) + oneWay
				return float64(n) * rtt
			},
		},
	}
}

// microTrace builds one warp per SM, op i given by gen (zero ops are
// skipped), with page placement by place.
func microTrace(cfg gsim.Config, gen func(sm, i int) trace.Op, n int, place func(cfg gsim.Config, tr *trace.Trace)) *trace.Trace {
	t := cfg.Topo
	kern := trace.Kernel{}
	// One single-warp CTA per SM: with contiguous scheduling, CTA
	// (g*SMsPerGPM + s) lands on SM s of GPM g.
	for g := 0; g < t.TotalGPMs(); g++ {
		for s := 0; s < t.SMsPerGPM; s++ {
			sm := g*t.SMsPerGPM + s
			var ops []trace.Op
			for i := 0; i < n; i++ {
				op := gen(sm, i)
				if op == (trace.Op{}) {
					continue
				}
				ops = append(ops, op)
			}
			kern.CTAs = append(kern.CTAs, trace.CTA{Warps: []trace.Warp{{Ops: ops}}})
		}
	}
	tr := &trace.Trace{Name: "micro", Kernels: []trace.Kernel{kern}}
	place(cfg, tr)
	return tr
}

// localPlacement homes every SM's private region on its own GPM.
func localPlacement(cfg gsim.Config, tr *trace.Trace) {
	t := cfg.Topo
	seen := map[topo.Page]bool{}
	for _, k := range tr.Kernels {
		for ci, c := range k.CTAs {
			gpm := topo.GPMID(ci / t.SMsPerGPM)
			for _, w := range c.Warps {
				for _, op := range w.Ops {
					pg := t.PageOf(op.Addr)
					if !seen[pg] {
						seen[pg] = true
						tr.Placement = append(tr.Placement, trace.PlacementHint{Page: pg, GPM: gpm})
					}
				}
			}
		}
	}
}

// placeOnGPU0 homes every touched page round-robin on GPU 0's GPMs.
func placeOnGPU0(cfg gsim.Config, tr *trace.Trace) {
	t := cfg.Topo
	seen := map[topo.Page]bool{}
	i := 0
	for _, k := range tr.Kernels {
		for _, c := range k.CTAs {
			for _, w := range c.Warps {
				for _, op := range w.Ops {
					pg := t.PageOf(op.Addr)
					if !seen[pg] {
						seen[pg] = true
						tr.Placement = append(tr.Placement, trace.PlacementHint{Page: pg, GPM: topo.GPMID(i % t.GPMsPerGPU)})
						i++
					}
				}
			}
		}
	}
}

// Fig7 runs the calibration sweep: simulated versus analytically
// predicted cycles for each microbenchmark point, with correlation and
// mean absolute relative error in the footer.
//
// Simulator speed is measured too, but deliberately kept out of the
// table: figure bytes must be identical across hosts and runs (the
// repo's determinism invariant), and events-per-wall-second is a
// property of the machine, not of the model. Speed goes to the
// runner's log instead.
func Fig7(r *Runner) (*report.Table, error) {
	t := &report.Table{
		Title:     "Fig. 7: simulator calibration (simulated vs analytical cycles)",
		Columns:   []string{"simCycles", "modelCycles"},
		Precision: 0,
	}
	var sim, model []float64
	var totalEvents uint64
	var totalWall time.Duration
	for _, m := range microBenches() {
		for _, n := range m.sizes {
			cfg := r.Config(m.kind, Variant{})
			sys, err := gsim.New(cfg)
			if err != nil {
				return nil, err
			}
			tr := m.build(cfg, n)
			start := time.Now() //lint:allow determinism wall time feeds the log line below, never the figure table
			res, err := sys.Run(tr)
			if err != nil {
				return nil, fmt.Errorf("fig7 %s/%d: %w", m.name, n, err)
			}
			wall := time.Since(start) //lint:allow determinism wall time feeds the log line below, never the figure table
			pred := m.predict(cfg, n)
			sim = append(sim, float64(res.Cycles))
			model = append(model, pred)
			totalEvents += res.EventsExecuted
			totalWall += wall
			t.Add(fmt.Sprintf("%s/%d", m.name, n), float64(res.Cycles), pred)
		}
	}
	t.AddNote("correlation = %.3f (paper: 0.99 vs silicon)", stats.Correlation(logs(sim), logs(model)))
	t.AddNote("mean abs rel error = %.2f (paper: 0.13)", stats.MeanAbsRelError(sim, model))
	r.logf("fig7: aggregate %.1f M events/s over %.2fs wall\n",
		float64(totalEvents)/totalWall.Seconds()/1e6, totalWall.Seconds())
	return t, nil
}

func logs(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = math.Log(x)
		}
	}
	return out
}
