// The campaign's persistent memo tier: content addresses for runs and
// the model-version stamp that scopes them. The in-process cache keys
// on (abbrev, kind, variant) because one process holds one workload
// registry; the disk store outlives the process, so its keys digest the
// full canonical run specification — complete benchmark parameters,
// protocol, defaulted variant, effective machine shape, and the
// campaign scaling options — plus a stamp tied to the simulated model
// itself. Any divergence hashes to a different address and re-simulates;
// the store can waste disk, never serve a wrong figure.

package experiments

import (
	"crypto/sha256"
	"fmt"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/proto/spec"
	"hmg/internal/resstore"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

// modelSchemaVersion names the simulated model's behavior outside what
// the Table I spec tables capture (timing, caches, interconnect,
// workload generators). Bump it whenever a change moves simulated
// cycles or event counts — the hmgperf gate that pins those against
// the committed BENCH_*.json baseline is the tripwire for forgetting:
// a baseline regeneration must come with a schema bump, or stale store
// records would keep serving the old model's figures.
const modelSchemaVersion = 1

// ModelVersion returns the campaign store's model-version stamp: the
// manual schema version, a digest of the machine-readable Table I spec
// tables (the declarative protocol definition — if the tables change,
// every cached figure is stale by construction), and the Results codec
// version. Records stamped differently are cache misses.
func ModelVersion() string {
	h := sha256.Sum256([]byte(spec.RenderDoc()))
	return fmt.Sprintf("hmg-model-v%d-tablei-%x-results-v%d",
		modelSchemaVersion, h[:8], gsim.ResultsCodecVersion)
}

// OpenStore opens (creating if needed) the content-addressed result
// store at dir, stamped with the current model version — the
// constructor behind `hmgbench -cachedir` and `hmgperf -cachedir`.
func OpenStore(dir string) (*resstore.Store, error) {
	return resstore.Open(dir, ModelVersion())
}

// StoreKey returns the content address of one run of this campaign.
// Specs that canonicalize to the same in-process memo key (see
// Runner.key) produce the same StoreKey, so both tiers dedup alike.
func (r *Runner) StoreKey(bench workload.Params, kind proto.Kind, v Variant, sp topo.Spec) resstore.Key {
	return resstore.SumKey(
		"hmg-runspec-v1",
		ModelVersion(),
		fmt.Sprintf("%+v", bench),
		kind.String(),
		fmt.Sprintf("%+v", canonicalVariant(kind, v)),
		r.effectiveSpec(sp).String(),
		fmt.Sprintf("scale=%v sms=%d page=%d", r.opts.Scale, r.opts.SMsPerGPM, r.opts.PageSizeKB),
	)
}
