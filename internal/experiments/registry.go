package experiments

import (
	"hmg/internal/proto"
	"hmg/internal/report"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

// RunSpec identifies one memoizable simulation of a campaign: a
// benchmark under a protocol and architectural variant, optionally on a
// non-default machine shape (the zero Spec means the campaign's base
// machine — Table II's 4x4 unless Options.Topo reshapes it). Specs that
// canonicalize to the same memo key (see Runner.key) execute once.
type RunSpec struct {
	Bench workload.Params
	Kind  proto.Kind
	V     Variant
	Topo  topo.Spec
}

// Figure is one entry of the campaign registry: a table generator plus
// the plan of simulations it will request. Plan is nil for figures that
// run no memoized simulations (static tables, trace profiles, and the
// self-timed Fig. 7 calibration).
type Figure struct {
	Name string
	Gen  func(*Runner) (*report.Table, error)
	Plan func() []RunSpec
}

// Figures returns the full campaign registry in the paper's
// presentation order — the single source of truth for cmd/hmgbench's
// figure names and for campaign prewarming.
func Figures() []Figure {
	return []Figure{
		{"tableII", func(r *Runner) (*report.Table, error) { return TableII(r), nil }, nil},
		{"tableIII", func(r *Runner) (*report.Table, error) { return TableIII(r), nil }, nil},
		{"cost", func(r *Runner) (*report.Table, error) { return HardwareCost(r), nil }, nil},
		{"3", Fig3, nil},
		{"7", Fig7, nil},
		{"2", Fig2, speedupPlan(fig2Protocols)},
		{"8", Fig8, speedupPlan(fig8Protocols)},
		{"9", Fig9, hmgProfilePlan},
		{"10", Fig10, hmgProfilePlan},
		{"11", Fig11, hmgProfilePlan},
		{"12", Fig12, sweepPlan(fig12Points)},
		{"13", Fig13, sweepPlan(fig13Points)},
		{"14", Fig14, sweepPlan(fig14Points)},
		{"granularity", Granularity, sweepPlan(granularityPoints)},
		{"downgrade", DowngradeAblation, downgradePlan},
		{"writeback", WriteBackAblation, writeBackPlan},
		{"gpmscope", GPMScopeStudy, gpmScopePlan},
		{"scaling", ScalingStudy, scalingPlan},
		{"toposcale", TopoScale, topoScalePlan},
		{"carve", RelatedProtocols, speedupPlan([]proto.Kind{proto.NHCC, proto.CARVE, proto.HMG})},
		{"locality", LocalityAblation, localityPlan},
		{"mca", MCAStudy, speedupPlan([]proto.Kind{proto.GPUVI, proto.NHCC, proto.HMG})},
	}
}

// PlanUnion concatenates the run plans of figs in order — the campaign
// prewarm input for a figure selection. Duplicate specs are fine:
// Prewarm folds specs sharing a memo key before scheduling.
func PlanUnion(figs []Figure) []RunSpec {
	var specs []RunSpec
	for _, f := range figs {
		if f.Plan != nil {
			specs = append(specs, f.Plan()...)
		}
	}
	return specs
}

// FigureNames returns the registry names in presentation order.
func FigureNames() []string {
	var names []string
	for _, f := range Figures() {
		names = append(names, f.Name)
	}
	return names
}

// speedupPlan covers a speedupTable: every suite benchmark under each
// kind at Table II, plus the shared no-caching baseline.
func speedupPlan(kinds []proto.Kind) func() []RunSpec {
	return func() []RunSpec {
		var specs []RunSpec
		for _, b := range workload.Suite() {
			specs = append(specs, RunSpec{Bench: b, Kind: proto.NoRemoteCache})
			for _, k := range kinds {
				specs = append(specs, RunSpec{Bench: b, Kind: k})
			}
		}
		return specs
	}
}

// hmgProfilePlan covers the Figs. 9–11 profiles: the suite under HMG at
// Table II (no baseline — profiles are not normalized).
func hmgProfilePlan() []RunSpec {
	var specs []RunSpec
	for _, b := range workload.Suite() {
		specs = append(specs, RunSpec{Bench: b, Kind: proto.HMG})
	}
	return specs
}

// sweepPlan covers a sensitivity sweep: the sweep protocols at every
// point, plus the shared baseline.
func sweepPlan(points func() ([]Variant, []string)) func() []RunSpec {
	return func() []RunSpec {
		pts, _ := points()
		kinds := []proto.Kind{proto.NHCC, proto.SWHier, proto.HMG, proto.Ideal}
		var specs []RunSpec
		for _, b := range workload.Suite() {
			specs = append(specs, RunSpec{Bench: b, Kind: proto.NoRemoteCache})
			for _, v := range pts {
				for _, k := range kinds {
					specs = append(specs, RunSpec{Bench: b, Kind: k, V: v})
				}
			}
		}
		return specs
	}
}

// downgradePlan covers the sharer-downgrade ablation.
func downgradePlan() []RunSpec {
	var specs []RunSpec
	for _, b := range workload.Suite() {
		specs = append(specs, RunSpec{Bench: b, Kind: proto.NoRemoteCache})
		for _, on := range []bool{false, true} {
			specs = append(specs, RunSpec{Bench: b, Kind: proto.HMG, V: Variant{Downgrade: on}})
		}
	}
	return specs
}

// writeBackPlan covers the write-back L2 ablation.
func writeBackPlan() []RunSpec {
	var specs []RunSpec
	for _, b := range workload.Suite() {
		specs = append(specs, RunSpec{Bench: b, Kind: proto.NoRemoteCache})
		for _, row := range writeBackRows {
			specs = append(specs, RunSpec{Bench: b, Kind: row.kind, V: Variant{WriteBack: row.wb}})
		}
	}
	return specs
}

// gpmScopePlan covers the Section VII-D scope study: each sync-heavy
// benchmark at each scope, with its own scope-specific baseline.
func gpmScopePlan() []RunSpec {
	var specs []RunSpec
	for _, name := range gpmScopeNames {
		b, err := workload.Get(name)
		if err != nil {
			continue // Gen reports the error
		}
		for _, sc := range gpmScopeScopes {
			v := gpmScopeBench(b, sc)
			specs = append(specs,
				RunSpec{Bench: v, Kind: proto.NoRemoteCache},
				RunSpec{Bench: v, Kind: proto.HMG})
		}
	}
	return specs
}

// scalingPlan covers the GPU-count scaling study: the suite under every
// study protocol and per-machine-size baseline at 2, 4, and 8 GPUs.
func scalingPlan() []RunSpec {
	var specs []RunSpec
	for _, gpus := range scalingGPUCounts {
		for _, b := range workload.Suite() {
			specs = append(specs, RunSpec{Bench: b, Kind: proto.NoRemoteCache, Topo: topo.Spec{NumGPUs: gpus}})
			for _, k := range scalingKinds {
				specs = append(specs, RunSpec{Bench: b, Kind: k, Topo: topo.Spec{NumGPUs: gpus}})
			}
		}
	}
	return specs
}

// localityPlan covers the locality-policy ablation.
func localityPlan() []RunSpec {
	var specs []RunSpec
	for _, b := range workload.Suite() {
		specs = append(specs, RunSpec{Bench: b, Kind: proto.NoRemoteCache})
		for _, row := range localityRows {
			specs = append(specs, RunSpec{Bench: b, Kind: proto.HMG, V: row.v})
		}
	}
	return specs
}
