package experiments

import (
	"strconv"
	"strings"
	"testing"

	"hmg/internal/proto"
	"hmg/internal/workload"
)

// testRunner returns a Runner at a small scale for fast tests.
func testRunner() *Runner {
	r, err := NewRunner(Options{Scale: 0.1, SMsPerGPM: 4})
	if err != nil {
		panic(err)
	}
	return r
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1.0 || o.SMsPerGPM != 8 || o.PageSizeKB != 32 {
		t.Fatalf("defaults = %+v", o)
	}
	d := DefaultOptions()
	if d.Scale != 1.0 {
		t.Fatal("DefaultOptions scale")
	}
}

func TestVariantDefaults(t *testing.T) {
	v := Variant{}.withDefaults()
	if v.NVLinkGBs != 200 || v.L2MBPerGPU != 12 || v.DirEntries != 12*1024 || v.GranLines != 4 {
		t.Fatalf("variant defaults = %+v", v)
	}
}

func TestConfigScaling(t *testing.T) {
	r := testRunner()
	cfg := r.Config(proto.HMG, Variant{})
	if err := cfg.Validate(); err != nil {
		t.Fatalf("scaled config invalid: %v", err)
	}
	// Capacity ratios are preserved under ScaleDown: the directory
	// covers GranLines×Entries lines = 2× the L2 slice's line count,
	// exactly as in Table II (48K tracked lines vs 24K cached lines).
	dirLines := cfg.Dir.Entries * cfg.Dir.GranLines
	l2Lines := cfg.L2Slice.CapacityBytes / cfg.Topo.LineSize
	if dirLines != 2*l2Lines {
		t.Fatalf("coverage ratio: dir %d lines vs L2 %d lines, want 2x", dirLines, l2Lines)
	}
	// Bandwidths scale with the SM aggregation factor so the
	// demand-to-bandwidth ratio of the real machine is preserved
	// (testRunner models 4 SMs/GPM: aggregation 8, bandwidth factor 4).
	if cfg.Net.NVLinkGBs != 200/4 {
		t.Fatalf("NVLink = %v, want 50 (aggregation-scaled)", cfg.Net.NVLinkGBs)
	}
}

func TestRunMemoizes(t *testing.T) {
	r := testRunner()
	b, _ := workload.Get("overfeat")
	r1, err := r.Run(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.Run(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("identical runs not memoized")
	}
	// Non-hardware protocols canonicalize directory variants.
	s1, err := r.Run(b, proto.SWHier, Variant{DirEntries: 3 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r.Run(b, proto.SWHier, Variant{DirEntries: 6 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("software runs not canonicalized across directory variants")
	}
}

func TestSpeedupPositive(t *testing.T) {
	r := testRunner()
	b, _ := workload.Get("overfeat")
	sp, err := r.Speedup(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 0 {
		t.Fatalf("speedup = %v", sp)
	}
}

func TestTableII(t *testing.T) {
	tab := TableII(testRunner())
	if v, ok := tab.Cell("GPUs", "value"); !ok || v != 4 {
		t.Fatalf("GPUs cell = %v,%v", v, ok)
	}
	if v, _ := tab.Cell("inter-GPU BW per link (GB/s)", "value"); v != 200 {
		t.Fatalf("NVLink cell = %v", v)
	}
	if v, _ := tab.Cell("dir entries per GPM", "value"); v != 12*1024 {
		t.Fatalf("dir entries = %v, want 12K (paper units)", v)
	}
}

func TestTableIII(t *testing.T) {
	tab := TableIII(testRunner())
	if len(tab.Rows) != 20 {
		t.Fatalf("Table III rows = %d, want 20", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row.Cells[2] <= 0 {
			t.Errorf("%s: zero ops", row.Label)
		}
	}
}

func TestHardwareCostTable(t *testing.T) {
	tab := HardwareCost(testRunner())
	if v, _ := tab.Cell("bits per entry", "value"); v != 55 {
		t.Fatalf("bits per entry = %v, want 55 (paper VII-C)", v)
	}
	if v, _ := tab.Cell("sharers per entry (M+N-2)", "value"); v != 6 {
		t.Fatalf("max sharers = %v, want 6", v)
	}
}

func TestFig3Profile(t *testing.T) {
	tab, err := Fig3(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 21 { // 20 benchmarks + Avg
		t.Fatalf("Fig3 rows = %d", len(tab.Rows))
	}
	hi, _ := tab.Cell("MiniAMR", "redundant%")
	lo, _ := tab.Cell("namd2.10", "redundant%")
	if hi <= lo {
		t.Fatalf("MiniAMR redundancy %.1f not above namd2.10 %.1f", hi, lo)
	}
	avg, _ := tab.Cell("Avg", "redundant%")
	if avg < 20 || avg > 100 {
		t.Fatalf("average redundancy %.1f implausible", avg)
	}
}

func TestFig7Calibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in -short mode")
	}
	tab, err := Fig7(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 4 microbenches × 3 sizes
		t.Fatalf("Fig7 rows = %d", len(tab.Rows))
	}
	// The correlation footnote must report a strong positive value.
	found := false
	for _, n := range tab.Notes {
		if strings.HasPrefix(n, "correlation = ") {
			found = true
			var c float64
			if _, err := fscanNote(n, &c); err != nil {
				t.Fatalf("parsing %q: %v", n, err)
			}
			if c < 0.9 {
				t.Fatalf("calibration correlation %.3f < 0.9", c)
			}
		}
	}
	if !found {
		t.Fatal("no correlation note")
	}
}

func TestFig8SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("protocol comparison in -short mode")
	}
	tab, err := Fig8(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 21 {
		t.Fatalf("Fig8 rows = %d", len(tab.Rows))
	}
	for _, col := range tab.Columns {
		if v, ok := tab.Cell("GeoMean", col); !ok || v <= 0 {
			t.Fatalf("geomean for %s = %v", col, v)
		}
	}
}

func TestFig9To11Profiles(t *testing.T) {
	if testing.Short() {
		t.Skip("HMG profiles in -short mode")
	}
	r := testRunner()
	f9, err := Fig9(r)
	if err != nil {
		t.Fatal(err)
	}
	f10, err := Fig10(r)
	if err != nil {
		t.Fatal(err)
	}
	f11, err := Fig11(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*struct {
		name string
		rows int
	}{{f9.Title, len(f9.Rows)}, {f10.Title, len(f10.Rows)}, {f11.Title, len(f11.Rows)}} {
		if tab.rows != 21 {
			t.Errorf("%s: %d rows", tab.name, tab.rows)
		}
	}
	// The false-sharing graph workloads must invalidate more lines per
	// store than the read-mostly ML workloads (the Fig. 9 outliers).
	mst, _ := f9.Cell("mst", "lines/store")
	overfeat, _ := f9.Cell("overfeat", "lines/store")
	if mst <= overfeat {
		t.Errorf("Fig9: mst (%.2f) not above overfeat (%.2f)", mst, overfeat)
	}
}

// fscanNote extracts the first float following "= " in a note like
// "correlation = 0.97 (...)".
func fscanNote(n string, out *float64) (int, error) {
	i := strings.Index(n, "= ")
	rest := n[i+2:]
	end := 0
	for end < len(rest) && (rest[end] == '.' || rest[end] == '-' || (rest[end] >= '0' && rest[end] <= '9')) {
		end++
	}
	v, err := strconv.ParseFloat(rest[:end], 64)
	*out = v
	return 1, err
}

func TestLocalityAblationRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	tab, err := LocalityAblation(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	base := tab.Rows[0].Cells[0]
	both := tab.Rows[3].Cells[0]
	if both >= base {
		t.Fatalf("ablating both locality policies did not hurt: %.2f vs %.2f", both, base)
	}
}

func TestGPMScopeStudyRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("scope study in -short mode")
	}
	tab, err := GPMScopeStudy(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // 3 benchmarks + geomean
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestRelatedProtocolsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("related protocols in -short mode")
	}
	tab, err := RelatedProtocols(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tab.Cell("GeoMean", "CARVE"); !ok || v <= 0 {
		t.Fatalf("CARVE geomean = %v, %v", v, ok)
	}
}

// TestExperimentDeterminism: two independent runners produce bit-equal
// results for the same benchmark and protocol — figures are exactly
// reproducible.
func TestExperimentDeterminism(t *testing.T) {
	b, _ := workload.Get("CoMD")
	r1, err := testRunner().Run(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := testRunner().Run(b, proto.HMG, Variant{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.InterGPUBytes != r2.InterGPUBytes ||
		r1.EventsExecuted != r2.EventsExecuted || r1.InvMsgsOnWire != r2.InvMsgsOnWire {
		t.Fatalf("nondeterministic experiment: %+v vs %+v", r1, r2)
	}
}

// TestMCAStudySmall: the MCA study runs and GPU-VI lands at or below the
// ack-free NHCC.
func TestMCAStudySmall(t *testing.T) {
	if testing.Short() {
		t.Skip("MCA study in -short mode")
	}
	tab, err := MCAStudy(testRunner())
	if err != nil {
		t.Fatal(err)
	}
	vi, _ := tab.Cell("GeoMean", "GPU-VI-MCA")
	nhcc, _ := tab.Cell("GeoMean", legend(proto.NHCC))
	if vi <= 0 || nhcc <= 0 {
		t.Fatalf("geomeans: vi=%v nhcc=%v", vi, nhcc)
	}
	if vi > nhcc*1.02 {
		t.Fatalf("multi-copy-atomic GPU-VI (%.2f) outperformed ack-free NHCC (%.2f)", vi, nhcc)
	}
}
