// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulator: the remote-caching study (Fig. 2),
// the inter-GPU redundancy profile (Fig. 3), simulator calibration
// (Fig. 7), the main five-way protocol comparison (Fig. 8), the
// invalidation profiles (Figs. 9–11), and the sensitivity sweeps over
// inter-GPU bandwidth, L2 capacity, directory size, and directory entry
// granularity (Figs. 12–14 and §VII-B).
package experiments

import (
	"fmt"
	"io"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

// Options scales and directs an experiment campaign.
type Options struct {
	// Scale shrinks workload traces; 1.0 is the full (already scaled-
	// down) suite. Sweeps may run at lower scale for speed.
	Scale float64
	// SMsPerGPM is the modeling granularity (8 modeled SMs per GPM by
	// default, each aggregating 4 physical SMs).
	SMsPerGPM int
	// PageSizeKB is the OS page size used in experiments. The suite's
	// footprints are scaled ~64× below Table III, so pages scale from
	// 2MB to 64KB to keep a representative page count.
	PageSizeKB int
	// Log receives progress lines (nil for silence).
	Log io.Writer
}

// DefaultOptions returns the standard experiment configuration.
func DefaultOptions() Options {
	return Options{Scale: 1.0, SMsPerGPM: 8, PageSizeKB: 32}
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.SMsPerGPM == 0 {
		o.SMsPerGPM = 8
	}
	if o.PageSizeKB == 0 {
		o.PageSizeKB = 32
	}
	return o
}

// Variant selects the architectural point of a run; zero fields mean the
// Table II defaults.
type Variant struct {
	NVLinkGBs  float64 // inter-GPU bandwidth per link (default 200)
	L2MBPerGPU int     // total L2 per GPU (default 12)
	DirEntries int     // directory entries per GPM (default 12K)
	GranLines  int     // lines per directory entry (default 4)
	// Downgrade enables the optional clean-eviction sharer-downgrade
	// messages (off in the paper's evaluation).
	Downgrade bool
	// WriteBack selects the write-back L2 option instead of the paper's
	// evaluated write-through design.
	WriteBack bool
	// ScatterCTAs disables contiguous CTA scheduling (ablation).
	ScatterCTAs bool
	// StaticPlacement replaces the first-touch page placement hints with
	// a round-robin static assignment (ablation).
	StaticPlacement bool
}

func (v Variant) withDefaults() Variant {
	if v.NVLinkGBs == 0 {
		v.NVLinkGBs = 200
	}
	if v.L2MBPerGPU == 0 {
		v.L2MBPerGPU = 12
	}
	if v.DirEntries == 0 {
		v.DirEntries = 12 * 1024
	}
	if v.GranLines == 0 {
		v.GranLines = 4
	}
	return v
}

type runKey struct {
	bench string
	kind  proto.Kind
	v     Variant
}

// Runner executes simulations with memoization, so figures sharing
// configuration points (e.g. every sweep's Table II column and the
// common no-caching baseline) reuse results.
type Runner struct {
	opts  Options
	cache map[runKey]*gsim.Results
}

// NewRunner builds a Runner.
func NewRunner(o Options) *Runner {
	return &Runner{opts: o.withDefaults(), cache: make(map[runKey]*gsim.Results)}
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// ScaleDown is the linear scaling factor of the experiment model: the
// Table III footprints, Table II cache capacities, directory entry
// counts, and page size all shrink together (footprints by ~64, caches
// slightly more), preserving
// the footprint-to-capacity ratios that drive the paper's results while
// keeping traces small enough to sweep. Bandwidths and latencies stay at
// full scale.
const ScaleDown = 96

// Config builds the simulated system configuration for a protocol and
// variant. Capacities scale by ScaleDown; bandwidths scale by the SM
// aggregation factor (each modeled SM stands for several physical SMs,
// so the model generates proportionally less concurrent demand — the
// links must shrink with it to preserve the demand-to-bandwidth ratio
// of the real machine).
func (r *Runner) Config(kind proto.Kind, v Variant) gsim.Config {
	v = v.withDefaults()
	cfg := gsim.DefaultConfig(r.opts.SMsPerGPM, kind)
	// Empirically, halving the full-rate links restores the real
	// machine's operating point: the modeled MLP per SM partly
	// compensates for the aggregation, so the full factor (4 at 8
	// modeled SMs) over-starves the system.
	agg := float64(32/r.opts.SMsPerGPM) / 2
	if agg < 1 {
		agg = 1
	}
	cfg.Topo.PageSize = r.opts.PageSizeKB * 1024
	cfg.Net.NVLinkGBs = v.NVLinkGBs / agg
	cfg.Net.XbarPortGBs /= agg
	cfg.DRAM.BandwidthGBs /= agg
	cfg.L1.CapacityBytes /= ScaleDown
	cfg.L2Slice.CapacityBytes = v.L2MBPerGPU << 20 / cfg.Topo.GPMsPerGPU / ScaleDown
	cfg.Dir.Entries = v.DirEntries / ScaleDown
	cfg.Dir.GranLines = v.GranLines
	cfg.Policy.Downgrade = v.Downgrade
	cfg.WriteBack = v.WriteBack
	cfg.ScatterCTAs = v.ScatterCTAs
	return cfg
}

// Run simulates one benchmark under one protocol and variant, memoized.
// Directory parameters are canonicalized away for software and ideal
// configurations (they have no directories), so sweeps over directory
// size reuse their runs.
func (r *Runner) Run(bench workload.Params, kind proto.Kind, v Variant) (*gsim.Results, error) {
	v = v.withDefaults()
	if !proto.For(kind).Hardware {
		def := Variant{}.withDefaults()
		v.DirEntries = def.DirEntries
		v.GranLines = def.GranLines
		v.Downgrade = false
	}
	key := runKey{bench.Abbrev, kind, v}
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	cfg := r.Config(kind, v)
	sys, err := gsim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%v: %w", bench.Abbrev, kind, err)
	}
	tr := bench.Generate(cfg.Topo, r.opts.Scale)
	if v.StaticPlacement {
		for i := range tr.Placement {
			tr.Placement[i].GPM = topo.GPMID(uint64(tr.Placement[i].Page) % uint64(cfg.Topo.TotalGPMs()))
		}
	}
	res, err := sys.Run(tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%v: %w", bench.Abbrev, kind, err)
	}
	r.cache[key] = res
	if r.opts.Log != nil {
		fmt.Fprintf(r.opts.Log, "  ran %-12s %-16v %9d cycles  %6.2f GB/s inter-GPU\n",
			bench.Abbrev, kind, res.Cycles, res.InterGPUGBs())
	}
	return res, nil
}

// Speedup returns benchmark runtime under kind normalized to the
// no-remote-caching baseline at the Table II configuration (the paper's
// normalization for every figure).
func (r *Runner) Speedup(bench workload.Params, kind proto.Kind, v Variant) (float64, error) {
	base, err := r.Run(bench, proto.NoRemoteCache, Variant{})
	if err != nil {
		return 0, err
	}
	res, err := r.Run(bench, kind, v)
	if err != nil {
		return 0, err
	}
	if res.Cycles == 0 {
		return 0, fmt.Errorf("experiments: zero-cycle run for %s/%v", bench.Abbrev, kind)
	}
	return float64(base.Cycles) / float64(res.Cycles), nil
}
