// Package experiments regenerates every table and figure of the paper's
// evaluation section on the simulator: the remote-caching study (Fig. 2),
// the inter-GPU redundancy profile (Fig. 3), simulator calibration
// (Fig. 7), the main five-way protocol comparison (Fig. 8), the
// invalidation profiles (Figs. 9–11), and the sensitivity sweeps over
// inter-GPU bandwidth, L2 capacity, directory size, and directory entry
// granularity (Figs. 12–14 and §VII-B).
//
// Every simulation of a campaign is identified by a (benchmark,
// protocol, variant) key and memoized, so figures sharing configuration
// points (e.g. every sweep's Table II column and the common no-caching
// baseline) reuse results. The memo cache is concurrency-safe with
// in-flight deduplication, and each figure exposes its run set as a
// plan of RunSpecs (see registry.go), so a campaign can Prewarm the
// union of unique runs across a bounded worker pool and then generate
// tables from the warm cache — output is byte-identical regardless of
// parallelism or completion order.
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/resstore"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

// Options scales and directs an experiment campaign.
type Options struct {
	// Scale shrinks workload traces; 1.0 is the full (already scaled-
	// down) suite. Sweeps may run at lower scale for speed.
	Scale float64
	// SMsPerGPM is the modeling granularity (8 modeled SMs per GPM by
	// default, each aggregating 4 physical SMs).
	SMsPerGPM int
	// PageSizeKB is the OS page size used in experiments. The suite's
	// footprints are scaled ~64× below Table III, so pages scale from
	// 2MB to 64KB to keep a representative page count.
	PageSizeKB int
	// Topo reshapes the base machine (zero fields keep the Table II
	// 4x4 shape). Per-run topology overrides in a RunSpec stack on top
	// of this campaign-wide shape.
	Topo topo.Spec
	// Jobs bounds the worker pool of Prewarm (default GOMAXPROCS).
	// Figure tables are independent of Jobs: parallelism only warms the
	// memo cache faster.
	Jobs int
	// Store, when non-nil, is the persistent content-addressed result
	// store backing the in-process memo cache as a second tier: cache
	// misses consult the store before simulating, and successful runs
	// are written back, so a repeated campaign only simulates its delta
	// across processes and machines (`hmgbench -cachedir`). Failed runs
	// are never stored, and damaged or stale records are re-simulated.
	Store *resstore.Store
	// Log receives progress lines (nil for silence). Writes are
	// serialized by the Runner, so any io.Writer is safe.
	Log io.Writer
}

// DefaultOptions returns the standard experiment configuration.
func DefaultOptions() Options {
	return Options{Scale: 1.0, SMsPerGPM: 8, PageSizeKB: 32}
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.SMsPerGPM == 0 {
		o.SMsPerGPM = 8
	}
	if o.PageSizeKB == 0 {
		o.PageSizeKB = 32
	}
	if o.Jobs == 0 {
		o.Jobs = runtime.GOMAXPROCS(0)
	}
	return o
}

// validate rejects option values that would silently produce nonsense
// traces or configurations. Zero values mean "use the default" and are
// always accepted.
func (o Options) validate() error {
	if math.IsNaN(o.Scale) || o.Scale < 0 || o.Scale > 1 {
		return fmt.Errorf("experiments: Scale %v outside (0, 1] (zero selects the default)", o.Scale)
	}
	if o.SMsPerGPM < 0 {
		return fmt.Errorf("experiments: negative SMsPerGPM %d (zero selects the default)", o.SMsPerGPM)
	}
	if o.PageSizeKB < 0 {
		return fmt.Errorf("experiments: negative PageSizeKB %d (zero selects the default)", o.PageSizeKB)
	}
	if o.Jobs < 0 {
		return fmt.Errorf("experiments: negative Jobs %d (zero selects the default)", o.Jobs)
	}
	return nil
}

// Variant selects the architectural point of a run; zero fields mean the
// Table II defaults.
type Variant struct {
	NVLinkGBs  float64 // inter-GPU bandwidth per link (default 200)
	L2MBPerGPU int     // total L2 per GPU (default 12)
	DirEntries int     // directory entries per GPM (default 12K)
	GranLines  int     // lines per directory entry (default 4)
	// Downgrade enables the optional clean-eviction sharer-downgrade
	// messages (off in the paper's evaluation).
	Downgrade bool
	// WriteBack selects the write-back L2 option instead of the paper's
	// evaluated write-through design.
	WriteBack bool
	// ScatterCTAs disables contiguous CTA scheduling (ablation).
	ScatterCTAs bool
	// StaticPlacement replaces the first-touch page placement hints with
	// a round-robin static assignment (ablation).
	StaticPlacement bool
}

func (v Variant) withDefaults() Variant {
	if v.NVLinkGBs == 0 {
		v.NVLinkGBs = 200
	}
	if v.L2MBPerGPU == 0 {
		v.L2MBPerGPU = 12
	}
	if v.DirEntries == 0 {
		v.DirEntries = 12 * 1024
	}
	if v.GranLines == 0 {
		v.GranLines = 4
	}
	return v
}

type runKey struct {
	bench string
	kind  proto.Kind
	v     Variant
}

// inflight is one memo-cache entry: the first requester of a key owns
// the simulation; duplicate requesters block on done until the owner
// publishes res/err.
type inflight struct {
	done chan struct{}
	res  *gsim.Results
	err  error
}

// Runner executes simulations with memoization, so figures sharing
// configuration points (e.g. every sweep's Table II column and the
// common no-caching baseline) reuse results. All methods are safe for
// concurrent use; concurrent requests for the same key simulate it
// exactly once.
type Runner struct {
	opts Options

	mu    sync.Mutex
	cache map[runKey]*inflight
	stats Summary

	logMu sync.Mutex
}

// NewRunner builds a Runner, validating the options.
func NewRunner(o Options) (*Runner, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	return &Runner{opts: o.withDefaults(), cache: make(map[runKey]*inflight)}, nil
}

// Options returns the runner's options.
func (r *Runner) Options() Options { return r.opts }

// Summary is the campaign-level accounting of a Runner.
type Summary struct {
	// UniqueRuns counts simulations actually executed.
	UniqueRuns int
	// MemoHits counts requests served from the cache (including
	// requests that blocked on an in-flight duplicate).
	MemoHits int
	// DiskHits, DiskMisses, and DiskWrites account the persistent store
	// tier (all zero when Options.Store is nil): in-process cache
	// misses served from disk, misses that fell through to a
	// simulation, and successful runs written back.
	DiskHits, DiskMisses, DiskWrites int
	// SimCycles and Events total the simulated cycles and discrete
	// events across unique runs.
	SimCycles uint64
	Events    uint64
	// RunWall sums per-run wall time across unique runs. Under
	// parallelism it exceeds campaign elapsed time.
	RunWall time.Duration
}

// Summary returns a snapshot of the campaign accounting.
func (r *Runner) Summary() Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// logf writes one progress line; writes are serialized so concurrent
// runs never interleave bytes.
func (r *Runner) logf(format string, args ...any) {
	if r.opts.Log == nil {
		return
	}
	r.logMu.Lock()
	fmt.Fprintf(r.opts.Log, format, args...)
	r.logMu.Unlock()
}

// ScaleDown is the linear scaling factor of the experiment model: the
// Table III footprints, Table II cache capacities, directory entry
// counts, and page size all shrink together (footprints by ~64, caches
// slightly more), preserving
// the footprint-to-capacity ratios that drive the paper's results while
// keeping traces small enough to sweep. Bandwidths and latencies stay at
// full scale.
const ScaleDown = 96

// Config builds the simulated system configuration for a protocol and
// variant. Capacities scale by ScaleDown; bandwidths scale by the SM
// aggregation factor (each modeled SM stands for several physical SMs,
// so the model generates proportionally less concurrent demand — the
// links must shrink with it to preserve the demand-to-bandwidth ratio
// of the real machine).
func (r *Runner) Config(kind proto.Kind, v Variant) gsim.Config {
	v = v.withDefaults()
	cfg := gsim.DefaultConfig(r.opts.SMsPerGPM, kind)
	// Empirically, halving the full-rate links restores the real
	// machine's operating point: the modeled MLP per SM partly
	// compensates for the aggregation, so the full factor (4 at 8
	// modeled SMs) over-starves the system.
	agg := float64(32/r.opts.SMsPerGPM) / 2
	if agg < 1 {
		agg = 1
	}
	cfg.Topo = r.opts.Topo.Apply(cfg.Topo)
	cfg.Topo.PageSize = r.opts.PageSizeKB * 1024
	cfg.Net.NVLinkGBs = v.NVLinkGBs / agg
	cfg.Net.XbarPortGBs /= agg
	cfg.DRAM.BandwidthGBs /= agg
	cfg.L1.CapacityBytes /= ScaleDown
	cfg.L2Slice.CapacityBytes = v.L2MBPerGPU << 20 / cfg.Topo.GPMsPerGPU / ScaleDown
	cfg.Dir.Entries = v.DirEntries / ScaleDown
	cfg.Dir.GranLines = v.GranLines
	cfg.Policy.Downgrade = v.Downgrade
	cfg.WriteBack = v.WriteBack
	cfg.ScatterCTAs = v.ScatterCTAs
	return cfg
}

// baseSpec is the campaign-wide machine shape: the Table II topology
// reshaped by Options.Topo.
func (r *Runner) baseSpec() topo.Spec {
	return r.opts.Topo.Apply(gsim.DefaultConfig(r.opts.SMsPerGPM, proto.HMG).Topo).Spec()
}

// key canonicalizes a run to its memo key. Directory parameters are
// canonicalized away for software and ideal configurations (they have
// no directories), so sweeps over directory size reuse their runs; a
// per-run topology override that resolves to the campaign's base shape
// (e.g. Spec{NumGPUs: 4} on the Table II machine) shares a key with
// plain runs.
func (r *Runner) key(bench workload.Params, kind proto.Kind, v Variant, sp topo.Spec) runKey {
	name := bench.Abbrev
	if eff := r.effectiveSpec(sp); eff != r.baseSpec() {
		name = fmt.Sprintf("%s@%s", name, eff)
	}
	return runKey{name, kind, canonicalVariant(kind, v)}
}

// canonicalVariant defaults v and canonicalizes away the directory
// parameters non-hardware configurations cannot observe (software and
// ideal points have no directories), so sweeps over directory size
// reuse their runs. Both memo tiers — the in-process cache and the
// content-addressed store — key on the canonical form.
func canonicalVariant(kind proto.Kind, v Variant) Variant {
	v = v.withDefaults()
	if !proto.For(kind).Hardware {
		def := Variant{}.withDefaults()
		v.DirEntries = def.DirEntries
		v.GranLines = def.GranLines
		v.Downgrade = false
	}
	return v
}

// effectiveSpec resolves a per-run topology override against the
// campaign's base shape into the fully-specified machine shape the run
// executes on.
func (r *Runner) effectiveSpec(sp topo.Spec) topo.Spec {
	base := r.baseSpec()
	return sp.Apply(topo.Topology{NumGPUs: base.NumGPUs, GPMsPerGPU: base.GPMsPerGPU}).Spec()
}

// mevPerSec computes a log-only M-events/s rate. Zero or near-zero
// wall time (coarse clocks can time a tiny run as 0) would print as
// +Inf or NaN; those collapse to 0 instead.
func mevPerSec(events uint64, secs float64) float64 {
	rate := float64(events) / secs / 1e6
	if secs <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return 0
	}
	return rate
}

// memoized serves key from the cache, executing sim exactly once across
// all concurrent requesters of the same key (singleflight): duplicates
// block until the owner's simulation completes and then share its
// result. With Options.Store configured, a cache miss consults the
// persistent store (under dk) before simulating, and a successful
// simulation is written back. A failed simulation is published to the
// waiters already blocked on it and then evicted, so the next request
// for the key retries instead of replaying the stale error; failed runs
// are never written to the store.
func (r *Runner) memoized(key runKey, dk resstore.Key, sim func() (*gsim.Results, error)) (*gsim.Results, error) {
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.stats.MemoHits++
		r.mu.Unlock()
		<-e.done
		return e.res, e.err
	}
	e := &inflight{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()

	st := r.opts.Store
	if st != nil {
		if res, ok := st.Get(dk); ok {
			e.res = res
			close(e.done)
			r.mu.Lock()
			r.stats.DiskHits++
			r.mu.Unlock()
			r.logf(" disk %-12s %-16v %9d cycles  %6.2f GB/s inter-GPU  (content-addressed store)\n",
				key.bench, key.kind, res.Cycles, res.InterGPUGBs())
			return res, nil
		}
		r.mu.Lock()
		r.stats.DiskMisses++
		r.mu.Unlock()
	}

	start := time.Now() //lint:allow determinism wall time feeds the campaign log and Summary.RunWall only, never figure bytes
	e.res, e.err = sim()
	wall := time.Since(start) //lint:allow determinism wall time feeds the campaign log and Summary.RunWall only, never figure bytes
	close(e.done)
	if e.err != nil {
		r.mu.Lock()
		if r.cache[key] == e {
			delete(r.cache, key)
		}
		r.mu.Unlock()
		return nil, e.err
	}

	r.mu.Lock()
	r.stats.UniqueRuns++
	r.stats.SimCycles += uint64(e.res.Cycles)
	r.stats.Events += e.res.EventsExecuted
	r.stats.RunWall += wall
	r.mu.Unlock()
	if st != nil {
		if err := st.Put(dk, e.res); err != nil {
			// A full or read-only store degrades to a slower campaign,
			// not a failed one.
			r.logf("  store: %s/%v: %v\n", key.bench, key.kind, err)
		} else {
			r.mu.Lock()
			r.stats.DiskWrites++
			r.mu.Unlock()
		}
	}
	r.logf("  ran %-12s %-16v %9d cycles  %6.2f GB/s inter-GPU  %6.2fs wall  %5.1f Mev/s\n",
		key.bench, key.kind, e.res.Cycles, e.res.InterGPUGBs(), wall.Seconds(),
		mevPerSec(e.res.EventsExecuted, wall.Seconds()))
	return e.res, nil
}

// simulate executes one run for real: build the configuration (under
// an optional per-run topology override), generate the trace, and run
// it.
func (r *Runner) simulate(bench workload.Params, kind proto.Kind, v Variant, sp topo.Spec) (*gsim.Results, error) {
	cfg := r.Config(kind, v)
	cfg.Topo = sp.Apply(cfg.Topo)
	sys, err := gsim.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%v: %w", bench.Abbrev, kind, err)
	}
	tr := bench.Generate(cfg.Topo, r.opts.Scale)
	if v.StaticPlacement {
		for i := range tr.Placement {
			tr.Placement[i].GPM = topo.GPMID(uint64(tr.Placement[i].Page) % uint64(cfg.Topo.TotalGPMs()))
		}
	}
	res, err := sys.Run(tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s/%v: %w", bench.Abbrev, kind, err)
	}
	return res, nil
}

// Run simulates one benchmark under one protocol and variant, memoized.
func (r *Runner) Run(bench workload.Params, kind proto.Kind, v Variant) (*gsim.Results, error) {
	return r.runAt(bench, kind, v, topo.Spec{})
}

// runAt is Run with a per-run topology override stacked on the
// campaign's base shape.
func (r *Runner) runAt(bench workload.Params, kind proto.Kind, v Variant, sp topo.Spec) (*gsim.Results, error) {
	key := r.key(bench, kind, v, sp)
	var dk resstore.Key
	if r.opts.Store != nil {
		dk = r.StoreKey(bench, kind, v, sp)
	}
	return r.memoized(key, dk, func() (*gsim.Results, error) {
		return r.simulate(bench, kind, key.v, sp)
	})
}

// Speedup returns benchmark runtime under kind normalized to the
// no-remote-caching baseline at the Table II configuration (the paper's
// normalization for every figure).
func (r *Runner) Speedup(bench workload.Params, kind proto.Kind, v Variant) (float64, error) {
	base, err := r.Run(bench, proto.NoRemoteCache, Variant{})
	if err != nil {
		return 0, err
	}
	res, err := r.Run(bench, kind, v)
	if err != nil {
		return 0, err
	}
	if res.Cycles == 0 {
		return 0, fmt.Errorf("experiments: zero-cycle run for %s/%v", bench.Abbrev, kind)
	}
	return float64(base.Cycles) / float64(res.Cycles), nil
}

// Prewarm executes the union of unique runs in specs across a bounded
// pool of Options.Jobs workers, filling the memo cache. Figure
// generation afterwards reads warm results in its own deterministic
// order, so table output does not depend on Jobs or on completion
// order. The first simulation error is returned after the pool drains.
func (r *Runner) Prewarm(specs []RunSpec) error {
	seen := make(map[runKey]bool, len(specs))
	var todo []RunSpec
	for _, s := range specs {
		k := r.key(s.Bench, s.Kind, s.V, s.Topo)
		if seen[k] {
			continue
		}
		seen[k] = true
		todo = append(todo, s)
	}
	if len(todo) == 0 {
		return nil
	}
	jobs := r.opts.Jobs
	if jobs > len(todo) {
		jobs = len(todo)
	}
	if jobs < 1 {
		jobs = 1
	}

	start := time.Now() //lint:allow determinism wall time feeds the prewarm log line only
	before := r.Summary()
	work := make(chan RunSpec)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		//lint:allow determinism the approved worker pool: runs are memoized whole and figures read the cache in deterministic order
		go func() {
			defer wg.Done()
			for s := range work {
				if _, err := r.runAt(s.Bench, s.Kind, s.V, s.Topo); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, s := range todo {
		work <- s
	}
	close(work)
	wg.Wait()

	elapsed := time.Since(start) //lint:allow determinism wall time feeds the prewarm log line only
	after := r.Summary()
	simulated := after.UniqueRuns - before.UniqueRuns
	rate := mevPerSec(after.Events-before.Events, elapsed.Seconds())
	if r.opts.Store != nil {
		// Delta mode: with a persistent store attached, report how much
		// of the plan came off disk — after a one-figure change, the
		// interesting number is how small the simulated delta was.
		r.logf("prewarm: %d unique runs (%d duplicate specs folded) on %d workers in %.1fs, %.1f M events/s; %d served from disk store, %d simulated\n",
			simulated+after.DiskHits-before.DiskHits, len(specs)-len(todo), jobs, elapsed.Seconds(), rate,
			after.DiskHits-before.DiskHits, simulated)
	} else {
		r.logf("prewarm: %d unique runs (%d duplicate specs folded) on %d workers in %.1fs, %.1f M events/s\n",
			simulated, len(specs)-len(todo), jobs, elapsed.Seconds(), rate)
	}
	return firstErr
}
