package experiments

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/workload"
)

func TestOptionsValidation(t *testing.T) {
	for _, bad := range []Options{
		{Scale: -0.5},
		{Scale: 1.5},
		{SMsPerGPM: -4},
		{PageSizeKB: -32},
		{Jobs: -2},
	} {
		if _, err := NewRunner(bad); err == nil {
			t.Errorf("NewRunner(%+v) accepted invalid options", bad)
		}
	}
	r, err := NewRunner(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Options().Jobs != runtime.GOMAXPROCS(0) {
		t.Fatalf("default Jobs = %d, want GOMAXPROCS %d", r.Options().Jobs, runtime.GOMAXPROCS(0))
	}
}

// TestConcurrentRunSingleflight hammers one (bench, kind, variant) key
// from many goroutines: exactly one simulation may execute, with every
// duplicate requester blocking on and sharing the first run's result.
func TestConcurrentRunSingleflight(t *testing.T) {
	r := testRunner()
	b, _ := workload.Get("overfeat")
	const goroutines = 16
	results := make([]*gsim.Results, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := r.Run(b, proto.HMG, Variant{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different *Results than goroutine 0", i)
		}
	}
	s := r.Summary()
	if s.UniqueRuns != 1 {
		t.Fatalf("%d simulations executed for one key, want exactly 1", s.UniqueRuns)
	}
	if s.MemoHits != goroutines-1 {
		t.Fatalf("memo hits = %d, want %d", s.MemoHits, goroutines-1)
	}
}

// TestPrewarmDeterminism runs the same plan serially and on 8 workers:
// per-run results must be bit-equal, and (out of -short) the Fig. 9
// table rendering must be byte-identical.
func TestPrewarmDeterminism(t *testing.T) {
	scale := 0.1
	suite := workload.Suite()[:4]
	plan := func() []RunSpec {
		var specs []RunSpec
		for _, b := range suite {
			specs = append(specs, RunSpec{Bench: b, Kind: proto.NoRemoteCache})
			specs = append(specs, RunSpec{Bench: b, Kind: proto.HMG})
		}
		return specs
	}
	newRunner := func(jobs int) *Runner {
		r, err := NewRunner(Options{Scale: scale, SMsPerGPM: 4, Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	serial, parallel := newRunner(1), newRunner(8)
	if err := serial.Prewarm(plan()); err != nil {
		t.Fatal(err)
	}
	if err := parallel.Prewarm(plan()); err != nil {
		t.Fatal(err)
	}
	if s := parallel.Summary(); s.UniqueRuns != len(suite)*2 {
		t.Fatalf("parallel prewarm ran %d unique sims, want %d", s.UniqueRuns, len(suite)*2)
	}
	for _, b := range suite {
		for _, k := range []proto.Kind{proto.NoRemoteCache, proto.HMG} {
			r1, err := serial.Run(b, k, Variant{})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := parallel.Run(b, k, Variant{})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Cycles != r2.Cycles || r1.EventsExecuted != r2.EventsExecuted ||
				r1.InterGPUBytes != r2.InterGPUBytes {
				t.Fatalf("%s/%v differs across jobs=1 and jobs=8: %+v vs %+v", b.Abbrev, k, r1, r2)
			}
		}
	}

	if testing.Short() {
		return
	}
	// Full figure at both parallelism levels: the rendered table must
	// match byte for byte.
	fig9 := func(jobs int) string {
		r := newRunner(jobs)
		if err := r.Prewarm(hmgProfilePlan()); err != nil {
			t.Fatal(err)
		}
		tab, err := Fig9(r)
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	if s, p := fig9(1), fig9(8); s != p {
		t.Fatalf("Fig9 output differs between -jobs 1 and -jobs 8:\n--- jobs=1\n%s\n--- jobs=8\n%s", s, p)
	}
}

// TestRegistry checks the campaign registry invariants the hmgbench
// command relies on: unique names, generators for every entry, and
// plans whose specs all canonicalize into the runner's memo space.
func TestRegistry(t *testing.T) {
	figs := Figures()
	if len(figs) != 22 {
		t.Fatalf("registry has %d figures, want 22", len(figs))
	}
	seen := map[string]bool{}
	for _, f := range figs {
		if f.Name == "" || f.Gen == nil {
			t.Fatalf("registry entry %+v incomplete", f.Name)
		}
		if seen[strings.ToLower(f.Name)] {
			t.Fatalf("duplicate figure name %q", f.Name)
		}
		seen[strings.ToLower(f.Name)] = true
	}
	// The Fig. 8 plan covers the suite under six protocols (five
	// configurations plus the shared baseline), deduplicating to
	// 20 benchmarks × 6 kinds unique keys.
	r := testRunner()
	var fig8 Figure
	for _, f := range figs {
		if f.Name == "8" {
			fig8 = f
		}
	}
	keys := map[runKey]bool{}
	for _, s := range fig8.Plan() {
		keys[r.key(s.Bench, s.Kind, s.V, s.Topo)] = true
	}
	if want := 20 * 6; len(keys) != want {
		t.Fatalf("fig8 plan has %d unique keys, want %d", len(keys), want)
	}
	// The scaling plan's 4-GPU machine shares keys with the Table II
	// runs: its NoRemoteCache/HMG points at 4 GPUs must collide with
	// the Fig. 8 baseline keys.
	var scaling Figure
	for _, f := range figs {
		if f.Name == "scaling" {
			scaling = f
		}
	}
	shared := 0
	for _, s := range scaling.Plan() {
		if keys[r.key(s.Bench, s.Kind, s.V, s.Topo)] {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("scaling plan at 4 GPUs does not reuse Table II memo keys")
	}
}
