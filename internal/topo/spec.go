// Machine-shape specs: the parseable "GxM" form of a topology that
// every CLI accepts via -topo and that the experiment runner threads
// through scaled runs. A Spec names only the hierarchy shape (GPU count
// and modules per GPU); per-module detail (SMs, line and page sizes)
// stays on Topology and is inherited from whatever configuration the
// spec is applied to.

package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is a partial machine shape: the number of GPUs and GPU modules
// per GPU. A zero field means "keep the configuration's value", so
// Spec{NumGPUs: 8} scales GPU count while preserving module count. The
// zero Spec changes nothing.
type Spec struct {
	NumGPUs    int
	GPMsPerGPU int
}

// ParseSpec parses a "GxM" topology spec — "16x8" is 16 GPUs with
// 8 GPMs each. A bare integer ("8") names the GPU count alone and
// leaves GPMs per GPU at the configuration default. The empty string
// parses to the zero Spec.
func ParseSpec(s string) (Spec, error) {
	if s == "" {
		return Spec{}, nil
	}
	gs, ms, ok := strings.Cut(s, "x")
	g, err := strconv.Atoi(gs)
	if err != nil || g <= 0 {
		return Spec{}, fmt.Errorf("topo: bad spec %q: want GPUSxGPMS like %q", s, "4x4")
	}
	if !ok {
		return Spec{NumGPUs: g}, nil
	}
	m, err := strconv.Atoi(ms)
	if err != nil || m <= 0 {
		return Spec{}, fmt.Errorf("topo: bad spec %q: want GPUSxGPMS like %q", s, "4x4")
	}
	return Spec{NumGPUs: g, GPMsPerGPU: m}, nil
}

// MustParseSpec is ParseSpec for trusted literals; it panics on error.
func MustParseSpec(s string) Spec {
	sp, err := ParseSpec(s)
	if err != nil {
		panic(err)
	}
	return sp
}

// IsZero reports whether the spec overrides nothing.
func (s Spec) IsZero() bool { return s == Spec{} }

// String renders the spec in the form ParseSpec accepts. Partial specs
// render their set half; the zero Spec renders as the empty string.
func (s Spec) String() string {
	switch {
	case s.IsZero():
		return ""
	case s.GPMsPerGPU == 0:
		return strconv.Itoa(s.NumGPUs)
	case s.NumGPUs == 0:
		return "x" + strconv.Itoa(s.GPMsPerGPU)
	default:
		return fmt.Sprintf("%dx%d", s.NumGPUs, s.GPMsPerGPU)
	}
}

// Apply overlays the spec's set fields onto a topology and returns the
// result; zero fields inherit t's values.
func (s Spec) Apply(t Topology) Topology {
	if s.NumGPUs > 0 {
		t.NumGPUs = s.NumGPUs
	}
	if s.GPMsPerGPU > 0 {
		t.GPMsPerGPU = s.GPMsPerGPU
	}
	return t
}

// Spec returns the shape of the topology as a fully-specified Spec.
func (t Topology) Spec() Spec {
	return Spec{NumGPUs: t.NumGPUs, GPMsPerGPU: t.GPMsPerGPU}
}

// String renders the machine shape in the "GxM" spec form.
func (t Topology) String() string { return t.Spec().String() }

// SpecFlagUsage is the shared help text for the -topo flag across
// hmgsim, hmgbench, hmgcheck, and hmgperf.
const SpecFlagUsage = "machine shape as GPUSxGPMS (e.g. 4x4, 16x8); a bare GPU count keeps the default GPMs per GPU"
