// Package topo defines the hierarchical topology of a multi-GPU system —
// GPUs composed of GPU modules (GPMs), each GPM hosting SMs, an L2 cache
// slice, and a DRAM partition — together with the address arithmetic that
// maps physical addresses onto that hierarchy: cache lines, pages,
// first-touch page placement, and the GPU-home / system-home node
// functions at the heart of the HMG protocol.
package topo

import "fmt"

// Addr is a physical byte address in global memory.
type Addr uint64

// Line identifies a cache line (Addr >> log2(lineSize)).
type Line uint64

// Page identifies an OS page (Addr >> log2(pageSize)).
type Page uint64

// GPMID identifies a GPU module globally across the whole system:
// gpu*GPMsPerGPU + localGPM.
type GPMID int

// GPUID identifies a GPU.
type GPUID int

// SMID identifies a streaming multiprocessor globally.
type SMID int

// Topology describes the shape of the simulated machine. All fields must
// be powers of two except NumGPUs and GPMsPerGPU, which merely must be
// positive (home hashing uses modulo).
type Topology struct {
	NumGPUs    int
	GPMsPerGPU int
	SMsPerGPM  int
	LineSize   int // bytes per cache line
	PageSize   int // bytes per OS page
}

// Validate reports whether the topology is internally consistent.
func (t Topology) Validate() error {
	switch {
	case t.NumGPUs <= 0:
		return fmt.Errorf("topo: NumGPUs = %d, must be positive", t.NumGPUs)
	case t.GPMsPerGPU <= 0:
		return fmt.Errorf("topo: GPMsPerGPU = %d, must be positive", t.GPMsPerGPU)
	case t.SMsPerGPM <= 0:
		return fmt.Errorf("topo: SMsPerGPM = %d, must be positive", t.SMsPerGPM)
	case t.LineSize <= 0 || t.LineSize&(t.LineSize-1) != 0:
		return fmt.Errorf("topo: LineSize = %d, must be a positive power of two", t.LineSize)
	case t.PageSize <= 0 || t.PageSize&(t.PageSize-1) != 0:
		return fmt.Errorf("topo: PageSize = %d, must be a positive power of two", t.PageSize)
	case t.PageSize < t.LineSize:
		return fmt.Errorf("topo: PageSize %d smaller than LineSize %d", t.PageSize, t.LineSize)
	}
	return nil
}

// TotalGPMs returns the number of GPU modules in the system.
func (t Topology) TotalGPMs() int { return t.NumGPUs * t.GPMsPerGPU }

// TotalSMs returns the number of SMs in the system.
func (t Topology) TotalSMs() int { return t.TotalGPMs() * t.SMsPerGPM }

// GPM composes a global GPM id from a GPU id and a GPU-local module index.
func (t Topology) GPM(gpu GPUID, local int) GPMID {
	return GPMID(int(gpu)*t.GPMsPerGPU + local)
}

// GPUOf returns the GPU that contains the given GPM.
func (t Topology) GPUOf(g GPMID) GPUID { return GPUID(int(g) / t.GPMsPerGPU) }

// LocalOf returns the GPU-local module index of the given GPM.
func (t Topology) LocalOf(g GPMID) int { return int(g) % t.GPMsPerGPU }

// SameGPU reports whether two GPMs belong to the same GPU.
func (t Topology) SameGPU(a, b GPMID) bool { return t.GPUOf(a) == t.GPUOf(b) }

// GPMOfSM returns the GPM hosting the given SM.
func (t Topology) GPMOfSM(s SMID) GPMID { return GPMID(int(s) / t.SMsPerGPM) }

// SM composes a global SM id.
func (t Topology) SM(g GPMID, local int) SMID { return SMID(int(g)*t.SMsPerGPM + local) }

// LineOf returns the cache line containing addr.
func (t Topology) LineOf(a Addr) Line { return Line(uint64(a) / uint64(t.LineSize)) }

// LineAddr returns the base address of a line.
func (t Topology) LineAddr(l Line) Addr { return Addr(uint64(l) * uint64(t.LineSize)) }

// PageOf returns the page containing addr.
func (t Topology) PageOf(a Addr) Page { return Page(uint64(a) / uint64(t.PageSize)) }

// PageOfLine returns the page containing a line.
func (t Topology) PageOfLine(l Line) Page {
	return Page(uint64(l) * uint64(t.LineSize) / uint64(t.PageSize))
}

// LinesPerPage returns the number of cache lines in one page.
func (t Topology) LinesPerPage() int { return t.PageSize / t.LineSize }

// hashLine mixes line bits so that consecutive lines spread across home
// nodes without pathological striding (splitmix64 finalizer).
func hashLine(l Line) uint64 {
	x := uint64(l) + 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// HomeGranuleLines is the interleaving granularity of GPU home hashing:
// all lines of one granule share a GPU home node. It matches the default
// coherence-directory tracking granularity (4 lines = 512B) so that a
// directory region never straddles home nodes.
const HomeGranuleLines = 4

// GPUHomeLocal returns the GPU-local module index that serves as the GPU
// home node for a line inside any GPU. The hash is the same in every GPU
// so that a line has one well-defined home slot per GPU, and is computed
// per HomeGranuleLines granule.
func (t Topology) GPUHomeLocal(l Line) int {
	return int(hashLine(l/HomeGranuleLines) % uint64(t.GPMsPerGPU))
}

// GPUHome returns the GPM acting as GPU home node for line l within GPU
// gpu. For the GPU that owns the backing page, the system home (owner
// GPM) takes that role instead; callers that know the owner should use
// PageMap.GPUHome.
func (t Topology) GPUHome(gpu GPUID, l Line) GPMID {
	return t.GPM(gpu, t.GPUHomeLocal(l))
}
