package topo

import "fmt"

// Placement selects how pages are assigned to home GPMs.
type Placement int

const (
	// FirstTouch places each page on the GPM of the first accessor, the
	// policy the paper inherits from MCM-GPU and NUMA-aware multi-GPU
	// work to maximize locality.
	FirstTouch Placement = iota
	// Static round-robins pages over all GPMs, a locality-oblivious
	// baseline placement.
	Static
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// PageMap tracks page-to-home-GPM assignments under a placement policy.
// The GPM that owns a page holds its backing DRAM; the system home node
// for every line of the page is that GPM.
type PageMap struct {
	topo      Topology
	placement Placement
	owner     map[Page]GPMID
}

// NewPageMap returns an empty PageMap for the given topology.
func NewPageMap(t Topology, p Placement) *PageMap {
	return &PageMap{topo: t, placement: p, owner: make(map[Page]GPMID)}
}

// Topology returns the topology this map was built for.
func (m *PageMap) Topology() Topology { return m.topo }

// Pages returns the number of pages that have been placed.
func (m *PageMap) Pages() int { return len(m.owner) }

// Touch resolves the owner GPM of the page containing addr, placing the
// page on first access. accessor is the GPM performing the access and is
// the owner under first-touch placement.
func (m *PageMap) Touch(a Addr, accessor GPMID) GPMID {
	p := m.topo.PageOf(a)
	if o, ok := m.owner[p]; ok {
		return o
	}
	var o GPMID
	switch m.placement {
	case FirstTouch:
		o = accessor
	case Static:
		o = GPMID(uint64(p) % uint64(m.topo.TotalGPMs()))
	default:
		panic(fmt.Sprintf("topo: unknown placement %v", m.placement))
	}
	m.owner[p] = o
	return o
}

// Owner returns the owner GPM of the page containing addr and whether the
// page has been placed.
func (m *PageMap) Owner(a Addr) (GPMID, bool) {
	o, ok := m.owner[m.topo.PageOf(a)]
	return o, ok
}

// SysHome returns the system home node for a line: the owner GPM of its
// page. It panics if the page has not been placed; simulation datapaths
// always Touch before routing.
func (m *PageMap) SysHome(l Line) GPMID {
	o, ok := m.owner[m.topo.PageOfLine(l)]
	if !ok {
		panic(fmt.Sprintf("topo: SysHome of unplaced line %#x", uint64(l)))
	}
	return o
}

// GPUHome returns the GPM that serves as GPU home node for line l within
// GPU gpu, accounting for page ownership: inside the owner GPU the system
// home node itself is the GPU home node, so cached copies and the
// authoritative copy coincide.
func (m *PageMap) GPUHome(gpu GPUID, l Line) GPMID {
	sys := m.SysHome(l)
	if m.topo.GPUOf(sys) == gpu {
		return sys
	}
	return m.topo.GPUHome(gpu, l)
}

// OwnerGPU returns the GPU containing the system home node of line l.
func (m *PageMap) OwnerGPU(l Line) GPUID { return m.topo.GPUOf(m.SysHome(l)) }

// Reset forgets all placements.
func (m *PageMap) Reset() { m.owner = make(map[Page]GPMID) }
