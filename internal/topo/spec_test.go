package topo

import "testing"

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"4x4", Spec{NumGPUs: 4, GPMsPerGPU: 4}},
		{"16x8", Spec{NumGPUs: 16, GPMsPerGPU: 8}},
		{"8", Spec{NumGPUs: 8}},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"x", "4x", "x8x", "0x4", "4x0", "-2x4", "4x-4", "axb", "4X4", "4x4x4"} {
		if sp, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted as %+v", bad, sp)
		}
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, s := range []string{"4x4", "16x8", "2x2", "8"} {
		sp := MustParseSpec(s)
		if sp.String() != s {
			t.Fatalf("MustParseSpec(%q).String() = %q", s, sp.String())
		}
	}
	if (Spec{}).String() != "" {
		t.Fatalf("zero Spec renders %q, want empty", (Spec{}).String())
	}
}

func TestSpecApply(t *testing.T) {
	base := Topology{NumGPUs: 4, GPMsPerGPU: 4, SMsPerGPM: 8, LineSize: 128, PageSize: 4096}
	got := MustParseSpec("16x8").Apply(base)
	if got.NumGPUs != 16 || got.GPMsPerGPU != 8 {
		t.Fatalf("Apply(16x8) = %+v", got)
	}
	if got.SMsPerGPM != base.SMsPerGPM || got.LineSize != base.LineSize || got.PageSize != base.PageSize {
		t.Fatalf("Apply clobbered per-module detail: %+v", got)
	}
	if partial := MustParseSpec("8").Apply(base); partial.NumGPUs != 8 || partial.GPMsPerGPU != 4 {
		t.Fatalf("partial Apply(8) = %+v", partial)
	}
	if same := (Spec{}).Apply(base); same != base {
		t.Fatalf("zero Apply changed topology: %+v", same)
	}
	if base.String() != "4x4" {
		t.Fatalf("Topology.String() = %q", base.String())
	}
	if base.Spec() != (Spec{NumGPUs: 4, GPMsPerGPU: 4}) {
		t.Fatalf("Topology.Spec() = %+v", base.Spec())
	}
}
