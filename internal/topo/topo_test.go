package topo

import (
	"testing"
	"testing/quick"
)

func paperTopo() Topology {
	return Topology{NumGPUs: 4, GPMsPerGPU: 4, SMsPerGPM: 32, LineSize: 128, PageSize: 2 << 20}
}

func TestValidate(t *testing.T) {
	if err := paperTopo().Validate(); err != nil {
		t.Fatalf("paper topology invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Topology)
	}{
		{"zero GPUs", func(tp *Topology) { tp.NumGPUs = 0 }},
		{"negative GPMs", func(tp *Topology) { tp.GPMsPerGPU = -1 }},
		{"zero SMs", func(tp *Topology) { tp.SMsPerGPM = 0 }},
		{"non-pow2 line", func(tp *Topology) { tp.LineSize = 96 }},
		{"zero line", func(tp *Topology) { tp.LineSize = 0 }},
		{"non-pow2 page", func(tp *Topology) { tp.PageSize = 3000 }},
		{"page < line", func(tp *Topology) { tp.PageSize = 64 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tp := paperTopo()
			c.mut(&tp)
			if tp.Validate() == nil {
				t.Errorf("Validate accepted %+v", tp)
			}
		})
	}
}

func TestCounts(t *testing.T) {
	tp := paperTopo()
	if got := tp.TotalGPMs(); got != 16 {
		t.Errorf("TotalGPMs = %d, want 16", got)
	}
	if got := tp.TotalSMs(); got != 512 {
		t.Errorf("TotalSMs = %d, want 512 (Table II)", got)
	}
	if got := tp.LinesPerPage(); got != (2<<20)/128 {
		t.Errorf("LinesPerPage = %d", got)
	}
}

func TestIDComposition(t *testing.T) {
	tp := paperTopo()
	for gpu := GPUID(0); gpu < 4; gpu++ {
		for local := 0; local < 4; local++ {
			g := tp.GPM(gpu, local)
			if tp.GPUOf(g) != gpu {
				t.Fatalf("GPUOf(GPM(%d,%d)) = %d", gpu, local, tp.GPUOf(g))
			}
			if tp.LocalOf(g) != local {
				t.Fatalf("LocalOf(GPM(%d,%d)) = %d", gpu, local, tp.LocalOf(g))
			}
			for s := 0; s < tp.SMsPerGPM; s++ {
				sm := tp.SM(g, s)
				if tp.GPMOfSM(sm) != g {
					t.Fatalf("GPMOfSM(SM(%d,%d)) = %d, want %d", g, s, tp.GPMOfSM(sm), g)
				}
			}
		}
	}
	if !tp.SameGPU(tp.GPM(2, 0), tp.GPM(2, 3)) {
		t.Error("SameGPU false for modules of GPU 2")
	}
	if tp.SameGPU(tp.GPM(1, 3), tp.GPM(2, 0)) {
		t.Error("SameGPU true across GPUs")
	}
}

func TestAddressMath(t *testing.T) {
	tp := paperTopo()
	a := Addr(5*2<<20 + 777)
	l := tp.LineOf(a)
	if base := tp.LineAddr(l); base > a || a-base >= Addr(tp.LineSize) {
		t.Errorf("LineAddr(LineOf(%d)) = %d", a, base)
	}
	if tp.PageOf(a) != 5 {
		t.Errorf("PageOf = %d, want 5", tp.PageOf(a))
	}
	if tp.PageOfLine(l) != 5 {
		t.Errorf("PageOfLine = %d, want 5", tp.PageOfLine(l))
	}
}

// Property: line/page math is consistent for arbitrary addresses.
func TestAddressMathProperty(t *testing.T) {
	tp := paperTopo()
	prop := func(a uint64) bool {
		addr := Addr(a % (1 << 40))
		l := tp.LineOf(addr)
		return tp.PageOf(addr) == tp.PageOfLine(l) &&
			tp.LineOf(tp.LineAddr(l)) == l
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGPUHomeLocalStableAndSpread(t *testing.T) {
	tp := paperTopo()
	counts := make([]int, tp.GPMsPerGPU)
	for l := Line(0); l < 4096; l++ {
		h := tp.GPUHomeLocal(l)
		if h < 0 || h >= tp.GPMsPerGPU {
			t.Fatalf("GPUHomeLocal out of range: %d", h)
		}
		if tp.GPUHomeLocal(l) != h {
			t.Fatalf("GPUHomeLocal not stable for line %d", l)
		}
		counts[h]++
	}
	for i, c := range counts {
		if c < 4096/tp.GPMsPerGPU/2 {
			t.Errorf("home slot %d badly underloaded: %d of 4096", i, c)
		}
	}
	// Same hash in every GPU: GPUHome differs only by GPU offset.
	for l := Line(0); l < 64; l++ {
		for gpu := GPUID(0); gpu < 4; gpu++ {
			want := tp.GPM(gpu, tp.GPUHomeLocal(l))
			if got := tp.GPUHome(gpu, l); got != want {
				t.Fatalf("GPUHome(%d, %d) = %d, want %d", gpu, l, got, want)
			}
		}
	}
}

func TestPageMapFirstTouch(t *testing.T) {
	tp := paperTopo()
	m := NewPageMap(tp, FirstTouch)
	a := Addr(123456)
	o := m.Touch(a, 7)
	if o != 7 {
		t.Fatalf("first touch owner = %d, want 7", o)
	}
	// Subsequent touches by others do not move the page.
	if o := m.Touch(a+64, 3); o != 7 {
		t.Fatalf("second touch moved page to %d", o)
	}
	if got, ok := m.Owner(a); !ok || got != 7 {
		t.Fatalf("Owner = %d,%v", got, ok)
	}
	if m.Pages() != 1 {
		t.Fatalf("Pages = %d, want 1", m.Pages())
	}
	if m.SysHome(tp.LineOf(a)) != 7 {
		t.Fatalf("SysHome = %d, want 7", m.SysHome(tp.LineOf(a)))
	}
}

func TestPageMapStatic(t *testing.T) {
	tp := paperTopo()
	m := NewPageMap(tp, Static)
	seen := map[GPMID]bool{}
	for p := 0; p < 64; p++ {
		a := Addr(p * tp.PageSize)
		o := m.Touch(a, 0)
		if o != GPMID(p%tp.TotalGPMs()) {
			t.Fatalf("static owner of page %d = %d", p, o)
		}
		seen[o] = true
	}
	if len(seen) != tp.TotalGPMs() {
		t.Fatalf("static placement used %d GPMs, want %d", len(seen), tp.TotalGPMs())
	}
}

func TestPageMapGPUHome(t *testing.T) {
	tp := paperTopo()
	m := NewPageMap(tp, FirstTouch)
	a := Addr(0)
	owner := tp.GPM(1, 2)
	m.Touch(a, owner)
	l := tp.LineOf(a)
	// Inside the owner GPU, the GPU home node is the system home itself.
	if got := m.GPUHome(1, l); got != owner {
		t.Fatalf("owner-GPU home = %d, want %d", got, owner)
	}
	// In other GPUs it is the hashed slot.
	for _, gpu := range []GPUID{0, 2, 3} {
		want := tp.GPUHome(gpu, l)
		if got := m.GPUHome(gpu, l); got != want {
			t.Fatalf("GPUHome(%d) = %d, want %d", gpu, got, want)
		}
		if tp.GPUOf(m.GPUHome(gpu, l)) != gpu {
			t.Fatalf("GPU home not inside GPU %d", gpu)
		}
	}
	if m.OwnerGPU(l) != 1 {
		t.Fatalf("OwnerGPU = %d, want 1", m.OwnerGPU(l))
	}
}

func TestSysHomeUnplacedPanics(t *testing.T) {
	m := NewPageMap(paperTopo(), FirstTouch)
	defer func() {
		if recover() == nil {
			t.Error("SysHome of unplaced line did not panic")
		}
	}()
	m.SysHome(42)
}

func TestPageMapReset(t *testing.T) {
	m := NewPageMap(paperTopo(), FirstTouch)
	m.Touch(0, 3)
	m.Reset()
	if m.Pages() != 0 {
		t.Fatalf("Pages after Reset = %d", m.Pages())
	}
	if o := m.Touch(0, 9); o != 9 {
		t.Fatalf("owner after Reset = %d, want 9", o)
	}
}

func TestPlacementString(t *testing.T) {
	if FirstTouch.String() != "first-touch" || Static.String() != "static" {
		t.Error("Placement.String wrong")
	}
	if Placement(99).String() == "" {
		t.Error("unknown placement produced empty string")
	}
}
