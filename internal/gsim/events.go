package gsim

import (
	"fmt"

	"hmg/internal/engine"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// EventKind labels one protocol-visible simulator event delivered to the
// System's OnEvent sink. The set covers every point where coherence
// state changes hands: kernel boundaries, load/store/atomic completion
// points, invalidation delivery and forwarding, and cache fills and
// evictions — the granularity the conformance checker in internal/check
// asserts its invariants at.
type EventKind uint8

const (
	// EvKernelLaunch fires as a kernel's CTAs are scheduled (Aux is the
	// kernel index within the trace).
	EvKernelLaunch EventKind = iota
	// EvKernelDrained fires at the quiescent kernel boundary: all warps
	// done, every posted store processed at its system home, and every
	// background invalidation delivered (Aux is the kernel index).
	EvKernelDrained
	// EvLoadDone fires when a Load or LoadAcq completes at its SM with
	// the observed word value in Val.
	EvLoadDone
	// EvStoreIssue fires when a store enters the memory system at its SM
	// (before the write-through propagates). Val is the stored value.
	// Atomic results written through by .cta/.gpm atomics appear here
	// too, carrying the post-RMW value.
	EvStoreIssue
	// EvHomeStore fires when a write-through commits at the system home
	// (directory transition done, home copy and DRAM updated).
	EvHomeStore
	// EvGPUHomeStore fires when a write-through is processed at a GPU
	// home node on its way to the system home (hierarchical policies).
	EvGPUHomeStore
	// EvAtomicApply fires when a .gpu or .sys atomic's read-modify-write
	// is applied at its scope home; Val is the new (post-RMW) value.
	EvAtomicApply
	// EvInvDeliver fires when a background invalidation is delivered at
	// a target GPM (its L2 copies of the region die). Aux is the region
	// granularity in lines.
	EvInvDeliver
	// EvInvForward fires when a GPU home node forwards an invalidation
	// to its own GPM sharers — the HMG-only Table I transition. Aux is
	// the number of forwarded targets.
	EvInvForward
	// EvFill fires when a load response is installed in an L2 slice.
	EvFill
	// EvL2Evict fires when installing a fill displaces a valid L2 line;
	// Line names the victim.
	EvL2Evict
	// EvAcquire fires when an acquire operation applies its
	// invalidation effects at the issuing SM. Kernel-boundary implicit
	// acquires (the .sys acquire every kernel launch performs) emit one
	// system-wide EvAcquire with SM set to NoSM.
	EvAcquire
	// EvDowngrade fires when a clean-eviction downgrade notice (the
	// optional Section IV optimization) is processed at a home node and
	// the evicting module leaves the sharer set. Aux is the evicting
	// GPM.
	EvDowngrade
)

var eventKindNames = [...]string{
	EvKernelLaunch:  "kernel-launch",
	EvKernelDrained: "kernel-drained",
	EvLoadDone:      "load-done",
	EvStoreIssue:    "store-issue",
	EvHomeStore:     "home-store",
	EvGPUHomeStore:  "gpu-home-store",
	EvAtomicApply:   "atomic-apply",
	EvInvDeliver:    "inv-deliver",
	EvInvForward:    "inv-forward",
	EvFill:          "fill",
	EvL2Evict:       "l2-evict",
	EvAcquire:       "acquire",
	EvDowngrade:     "downgrade",
}

// String implements fmt.Stringer.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// NoSM marks events not attached to a particular SM.
const NoSM topo.SMID = -1

// Event is one cycle-stamped hook notification. Fields beyond Cycle and
// Kind are populated per kind: GPM is the module where the event took
// effect, SM the issuing SM (NoSM for home-side events), Line/Addr the
// affected location, Scope/Op/Val the triggering operation's identity
// and value, and Aux a kind-specific count or index.
type Event struct {
	Cycle engine.Cycle
	Kind  EventKind
	GPM   topo.GPMID
	SM    topo.SMID
	Line  topo.Line
	Addr  topo.Addr
	Scope trace.Scope
	Op    trace.OpKind
	Val   uint64
	Aux   int
}

// String renders the event for violation trails and debugging.
func (e Event) String() string {
	s := fmt.Sprintf("@%d %s gpm=%d", uint64(e.Cycle), e.Kind, int(e.GPM))
	if e.SM != NoSM {
		s += fmt.Sprintf(" sm=%d", int(e.SM))
	}
	switch e.Kind {
	case EvKernelLaunch, EvKernelDrained:
		return fmt.Sprintf("@%d %s kernel=%d", uint64(e.Cycle), e.Kind, e.Aux)
	case EvInvDeliver, EvInvForward, EvDowngrade:
		return s + fmt.Sprintf(" line=%#x aux=%d", uint64(e.Line), e.Aux)
	case EvFill, EvL2Evict:
		return s + fmt.Sprintf(" line=%#x", uint64(e.Line))
	case EvAcquire:
		return s + fmt.Sprintf(" scope=%v", e.Scope)
	case EvLoadDone, EvStoreIssue, EvHomeStore, EvGPUHomeStore, EvAtomicApply:
		return s + fmt.Sprintf(" addr=%#x op=%v scope=%v val=%d", uint64(e.Addr), e.Op, e.Scope, e.Val)
	default:
		// Unknown kinds (corrupted trails) render the bare header.
		return s
	}
}

// emit stamps the current cycle and delivers the event to the sink. The
// sink must not mutate simulator state; with no sink attached the cost
// is a single branch, keeping the measurement path untouched.
func (s *System) emit(ev Event) {
	if s.OnEvent == nil {
		return
	}
	ev.Cycle = s.Eng.Now()
	s.OnEvent(ev)
}
