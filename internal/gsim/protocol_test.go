package gsim

import (
	"testing"

	"hmg/internal/directory"

	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// mpTrace builds a message-passing litmus: a writer warp on CTA 0 stores
// data then release-stores a flag; a reader warp (on the CTA placed at
// readerCTA of 4) waits long, acquire-loads the flag, then loads data.
// With 4 CTAs on the tiny 4-GPM system, CTA i runs on GPM i.
func mpTrace(scope trace.Scope, readerCTA int, delay uint32) *trace.Trace {
	const dataAddr, flagAddr = 0x100, 0x200
	writer := trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.Store, Addr: dataAddr, Val: 42},
		{Kind: trace.StoreRel, Scope: scope, Addr: flagAddr, Val: 1},
	}}}}
	reader := trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.LoadAcq, Scope: scope, Addr: flagAddr, Gap: delay},
		{Kind: trace.Load, Addr: dataAddr},
	}}}}
	k := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	k.CTAs[0] = writer
	k.CTAs[readerCTA] = reader
	// Warm the reader's caches with stale copies of both lines first, in
	// a prior kernel, so the test catches missing invalidations.
	warm := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	warm.CTAs[readerCTA] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.Load, Addr: dataAddr},
		{Kind: trace.Load, Addr: flagAddr},
	}}}}
	return placeAll(&trace.Trace{Name: "mp", Kernels: []trace.Kernel{warm, k}}, 1, 0)
}

// runMP executes the litmus and returns flag and data values seen by the
// reader.
func runMP(t *testing.T, kind proto.Kind, scope trace.Scope, readerCTA int) (flag, data uint64) {
	t.Helper()
	cfg := tinyConfig(kind)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.OnLoadValue = func(_ topo.SMID, op trace.Op, v uint64) {
		switch op.Addr {
		case 0x200:
			if op.Kind == trace.LoadAcq {
				flag = v
			}
		case 0x100:
			if op.Kind == trace.Load {
				data = v
			}
		}
	}
	// Delay long enough that the writer's release has completed.
	if _, err := s.Run(mpTrace(scope, readerCTA, 3_000_000)); err != nil {
		t.Fatal(err)
	}
	return flag, data
}

// TestMPLitmusSysScope: after a .sys release completes, a remote-GPU
// acquire must observe the flag and then the data, under every coherent
// protocol. The reader (CTA 3 → GPM 3) is on the other GPU.
func TestMPLitmusSysScope(t *testing.T) {
	for _, k := range []proto.Kind{proto.NoRemoteCache, proto.SWNonHier, proto.SWHier, proto.NHCC, proto.HMG} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			flag, data := runMP(t, k, trace.ScopeSys, 3)
			if flag != 1 {
				t.Fatalf("late .sys acquire read flag %d, want 1", flag)
			}
			if data != 42 {
				t.Fatalf("data after successful acquire = %d, want 42 (stale value leaked)", data)
			}
		})
	}
}

// TestMPLitmusGPUScope: same-GPU message passing with .gpu scope. The
// reader (CTA 1 → GPM 1) shares GPU 0 with the writer.
func TestMPLitmusGPUScope(t *testing.T) {
	for _, k := range []proto.Kind{proto.NoRemoteCache, proto.SWNonHier, proto.SWHier, proto.NHCC, proto.HMG} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			flag, data := runMP(t, k, trace.ScopeGPU, 1)
			if flag != 1 {
				t.Fatalf("late .gpu acquire read flag %d, want 1", flag)
			}
			if data != 42 {
				t.Fatalf("data after .gpu acquire = %d, want 42", data)
			}
		})
	}
}

// TestSysAtomicsSerialize: concurrent .sys atomics from all four GPMs
// serialize at the system home; the final memory value is the sum.
func TestSysAtomicsSerialize(t *testing.T) {
	for _, k := range []proto.Kind{proto.NoRemoteCache, proto.SWNonHier, proto.SWHier, proto.NHCC, proto.HMG} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			const addr = 0x400
			kern := trace.Kernel{}
			perWarp := 5
			for c := 0; c < 4; c++ {
				var ops []trace.Op
				for i := 0; i < perWarp; i++ {
					ops = append(ops, trace.Op{Kind: trace.Atomic, Scope: trace.ScopeSys, Addr: addr, Val: 1})
				}
				kern.CTAs = append(kern.CTAs, trace.CTA{Warps: []trace.Warp{{Ops: ops}}})
			}
			tr := placeAll(&trace.Trace{Name: "atom", Kernels: []trace.Kernel{kern}}, 1, 2)
			cfg := tinyConfig(k)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(tr); err != nil {
				t.Fatal(err)
			}
			if got := s.GPMs[2].DRAM.LoadValue(addr); got != uint64(4*perWarp) {
				t.Fatalf("final atomic value = %d, want %d", got, 4*perWarp)
			}
		})
	}
}

// TestGPUAtomicsSerializeWithinGPU: .gpu atomics from two GPMs of the
// same GPU serialize at the GPU home and the result writes through to
// the system home on the other GPU.
func TestGPUAtomicsSerializeWithinGPU(t *testing.T) {
	const addr = 0x800
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	for c := 0; c < 2; c++ { // CTAs 0,1 → GPMs 0,1 (GPU 0)
		var ops []trace.Op
		for i := 0; i < 4; i++ {
			ops = append(ops, trace.Op{Kind: trace.Atomic, Scope: trace.ScopeGPU, Addr: addr, Val: 1})
		}
		kern.CTAs[c] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
	}
	// Page owned by GPM 3 (GPU 1): the .gpu atomics perform at GPU 0's
	// home node and write through across the inter-GPU link.
	tr := placeAll(&trace.Trace{Name: "gatom", Kernels: []trace.Kernel{kern}}, 1, 3)
	s, err := New(tinyConfig(proto.HMG))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	if got := s.GPMs[3].DRAM.LoadValue(addr); got != 8 {
		t.Fatalf("written-through atomic result = %d, want 8", got)
	}
}

// TestHMGSharerTrackingHierarchy: after two GPMs of GPU 1 load a line
// owned by GPU 0, the system home tracks GPU 1 (not its GPMs), and GPU
// 1's home node tracks both GPMs.
func TestHMGSharerTrackingHierarchy(t *testing.T) {
	const addr = 0 // line 0, region 0
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	kern.CTAs[2] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: addr}}}}}
	kern.CTAs[3] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: addr, Gap: 100000}}}}}
	tr := placeAll(&trace.Trace{Name: "shar", Kernels: []trace.Kernel{kern}}, 1, 0)
	s, err := New(tinyConfig(proto.HMG))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	line := s.Cfg.Topo.LineOf(addr)
	sysDir := s.GPMs[0].Dir
	e, ok := sysDir.Dir.Lookup(sysDir.Dir.RegionOf(line))
	if !ok {
		t.Fatal("system home has no directory entry")
	}
	if e.Sharers.Count() != 1 || !e.Sharers.Has(directory.GPUBit(1)) {
		t.Fatalf("sys home sharers = %v, want exactly [GPU1]", e.Sharers)
	}
	// GPU 1's home node for line 0.
	gpuHome := s.Pages.GPUHome(1, line)
	hd := s.gpmOf(gpuHome).Dir
	eh, ok := hd.Dir.Lookup(hd.Dir.RegionOf(line))
	if !ok {
		t.Fatal("GPU home has no directory entry")
	}
	// Both requesting GPMs are tracked, except the GPU home itself when
	// it was a requester.
	wantCount := 2
	for _, g := range []topo.GPMID{2, 3} {
		if g == gpuHome {
			wantCount--
			continue
		}
		if !eh.Sharers.Has(directory.GPMBit(s.Cfg.Topo.LocalOf(g))) {
			t.Fatalf("GPU home sharers %v missing GPM%d", eh.Sharers, s.Cfg.Topo.LocalOf(g))
		}
	}
	if eh.Sharers.Count() != wantCount {
		t.Fatalf("GPU home sharers = %v, want %d GPMs", eh.Sharers, wantCount)
	}
}

// TestStoreInvalidatesRemoteSharers: a store to a shared line removes
// stale copies from sharer L2s (HMG hierarchical fan-out).
func TestStoreInvalidatesRemoteSharers(t *testing.T) {
	const addr = 0
	// Kernel 1: GPMs 2 and 3 (GPU 1) cache the line (owned by GPM 0).
	k1 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	k1.CTAs[2] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: addr}}}}}
	k1.CTAs[3] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: addr}}}}}
	// Kernel 2: GPM 1 stores to it.
	k2 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	k2.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Store, Addr: addr, Val: 5}}}}}
	tr := placeAll(&trace.Trace{Name: "inv", Kernels: []trace.Kernel{k1, k2}}, 1, 0)
	s, err := New(tinyConfig(proto.HMG))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	line := s.Cfg.Topo.LineOf(addr)
	for _, g := range []topo.GPMID{2, 3} {
		if _, present := s.GPMs[g].L2.Peek(line); present {
			t.Fatalf("GPM %d still caches the line after remote store + drain", g)
		}
	}
	// The store triggered at least one invalidation counted by the profile.
	res := s.collectResults(tr)
	if res.LinesInvByStores == 0 {
		t.Fatal("no store-triggered invalidation recorded")
	}
}

// TestHMGCoalescesInterGPUTraffic: with all four GPMs of GPU 1 reading
// the same remote lines, HMG fetches each line across the inter-GPU link
// roughly once, while NHCC fetches it once per GPM. This is the Fig. 3
// redundancy that motivates the hierarchical protocol.
func TestHMGCoalescesInterGPUTraffic(t *testing.T) {
	mk := func() *trace.Trace {
		kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
		for c := 2; c < 4; c++ { // both GPMs of GPU 1
			var ops []trace.Op
			for l := 0; l < 16; l++ {
				ops = append(ops, trace.Op{Kind: trace.Load, Addr: topo.Addr(l * 128)})
			}
			kern.CTAs[c] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
		}
		return placeAll(&trace.Trace{Name: "coal", Kernels: []trace.Kernel{kern}}, 1, 0)
	}
	nhcc := mustRun(t, tinyConfig(proto.NHCC), mk())
	hmg := mustRun(t, tinyConfig(proto.HMG), mk())
	if hmg.InterGPULoadReqs >= nhcc.InterGPULoadReqs {
		t.Fatalf("HMG inter-GPU loads (%d) not fewer than NHCC (%d)",
			hmg.InterGPULoadReqs, nhcc.InterGPULoadReqs)
	}
	if hmg.InterGPUBytes >= nhcc.InterGPUBytes {
		t.Fatalf("HMG inter-GPU bytes (%d) not fewer than NHCC (%d)",
			hmg.InterGPUBytes, nhcc.InterGPUBytes)
	}
}

// TestSWAcquireBulkInvalidates: a .gpu acquire under software coherence
// flushes the GPM-local L2; under hardware coherence it leaves L2 alone.
func TestSWAcquireBulkInvalidates(t *testing.T) {
	mk := func() *trace.Trace {
		ops := []trace.Op{
			{Kind: trace.Load, Addr: 128 * 10},
			{Kind: trace.Load, Addr: 128 * 11},
			{Kind: trace.LoadAcq, Scope: trace.ScopeGPU, Addr: 128 * 50, Gap: 100000},
			// Re-load previously cached data.
			{Kind: trace.Load, Addr: 128 * 10},
		}
		return placeAll(warpsTrace(ops), 1, 0)
	}
	sw := mustRun(t, tinyConfig(proto.SWNonHier), mk())
	hw := mustRun(t, tinyConfig(proto.NHCC), mk())
	// Under SW the acquire flushed the L2, so the final load misses
	// again; under HW it hits. Compare L2 misses.
	if sw.L2Misses <= hw.L2Misses {
		t.Fatalf("SW L2 misses (%d) not greater than HW (%d) after acquire", sw.L2Misses, hw.L2Misses)
	}
}

// TestIdealNoInvalidations: the Ideal policy never produces invalidation
// traffic or directory activity.
func TestIdealNoInvalidations(t *testing.T) {
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	for c := 0; c < 4; c++ {
		var ops []trace.Op
		for i := 0; i < 8; i++ {
			ops = append(ops, trace.Op{Kind: trace.Load, Addr: topo.Addr(i * 128)})
			ops = append(ops, trace.Op{Kind: trace.Store, Addr: topo.Addr(i * 128), Val: 9})
		}
		kern.CTAs[c] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
	}
	tr := placeAll(&trace.Trace{Name: "ideal", Kernels: []trace.Kernel{kern}}, 1, 0)
	res := mustRun(t, tinyConfig(proto.Ideal), tr)
	if res.InvBytes != 0 || res.InvMsgsOnWire != 0 {
		t.Fatalf("ideal produced invalidation traffic: %d bytes", res.InvBytes)
	}
	if res.DirStoresSeen != 0 {
		t.Fatal("ideal consulted a directory")
	}
}

// TestNoRemoteCacheNeverCachesRemote: the baseline never holds
// remote-GPU lines in any cache.
func TestNoRemoteCacheNeverCachesRemote(t *testing.T) {
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	kern.CTAs[2] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.Load, Addr: 0},
		{Kind: trace.Load, Addr: 0, Gap: 50000},
	}}}}
	tr := placeAll(&trace.Trace{Name: "norc", Kernels: []trace.Kernel{kern}}, 1, 0)
	s, err := New(tinyConfig(proto.NoRemoteCache))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	line := s.Cfg.Topo.LineOf(0)
	for g := topo.GPMID(2); g <= 3; g++ {
		if _, present := s.GPMs[g].L2.Peek(line); present {
			t.Fatalf("baseline cached a remote-GPU line in GPM %d's L2", g)
		}
	}
	if _, present := s.SMs[4].L1.Peek(line); present {
		t.Fatal("baseline cached a remote-GPU line in L1")
	}
	// Both loads crossed the inter-GPU link.
	if res.InterGPULoadReqs != 2 {
		t.Fatalf("InterGPULoadReqs = %d, want 2 (no remote caching)", res.InterGPULoadReqs)
	}
}

// TestDirectoryEvictionInvalidatesSharers: overflowing the directory
// forces entry evictions whose sharers get invalidated.
func TestDirectoryEvictionInvalidatesSharers(t *testing.T) {
	cfg := tinyConfig(proto.HMG)
	cfg.Dir.Entries = 16 // tiny directory: 2 sets × 8 ways at gran 4
	cfg.Dir.Ways = 8
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	var ops []trace.Op
	// GPM 1 reads many distinct regions homed on GPM 0, overflowing its
	// directory.
	for r := 0; r < 200; r++ {
		ops = append(ops, trace.Op{Kind: trace.Load, Addr: topo.Addr(r * 4 * 128)})
	}
	kern.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
	tr := placeAll(&trace.Trace{Name: "direvict", Kernels: []trace.Kernel{kern}}, 64, 0)
	res := mustRun(t, cfg, tr)
	if res.DirEvicts == 0 {
		t.Fatal("no directory evictions despite overflow")
	}
	if res.LinesInvByEvicts == 0 {
		t.Fatal("directory evictions invalidated no lines")
	}
	if res.InvLinesPerDirEvict() <= 0 {
		t.Fatal("Fig. 10 metric not positive")
	}
}
