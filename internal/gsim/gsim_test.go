package gsim

import (
	"testing"

	"hmg/internal/cache"
	"hmg/internal/directory"
	"hmg/internal/engine"
	"hmg/internal/link"
	"hmg/internal/memory"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// tinyConfig returns a 2-GPU × 2-GPM × 2-SM system with small caches and
// value tracking, for functional tests.
func tinyConfig(k proto.Kind) Config {
	return Config{
		Topo: topo.Topology{
			NumGPUs: 2, GPMsPerGPU: 2, SMsPerGPM: 2,
			LineSize: 128, PageSize: 4096,
		},
		Net:  link.DefaultNetConfig(),
		DRAM: memory.Config{BandwidthGBs: 250, Latency: 100, LineSize: 128},
		L1:   cache.Config{CapacityBytes: 8 * 1024, LineSize: 128, Ways: 4},
		L2Slice: cache.Config{
			CapacityBytes: 64 * 1024, LineSize: 128, Ways: 8,
		},
		Dir:             directory.Config{Entries: 256, Ways: 8, GranLines: 4},
		Policy:          proto.For(k),
		Placement:       topo.FirstTouch,
		FrequencyHz:     engine.DefaultFrequencyHz,
		L1Latency:       10,
		L2Latency:       30,
		MaxWarpInflight: 4,
		MaxSMInflight:   16,
		TrackValues:     true,
	}
}

// oneWarpTrace builds a trace with a single kernel whose CTA i runs on a
// deterministic GPM (via contiguous scheduling) with the given ops.
func warpsTrace(warpOps ...[]trace.Op) *trace.Trace {
	k := trace.Kernel{}
	for _, ops := range warpOps {
		k.CTAs = append(k.CTAs, trace.CTA{Warps: []trace.Warp{{Ops: ops}}})
	}
	return &trace.Trace{Name: "test", Kernels: []trace.Kernel{k}}
}

// placeAll pins every page of the trace's address range to a GPM.
func placeAll(tr *trace.Trace, pages int, gpm topo.GPMID) *trace.Trace {
	for p := 0; p < pages; p++ {
		tr.Placement = append(tr.Placement, trace.PlacementHint{Page: topo.Page(p), GPM: gpm})
	}
	return tr
}

func mustRun(t *testing.T, cfg Config, tr *trace.Trace) *Results {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func allKinds() []proto.Kind {
	return []proto.Kind{proto.NoRemoteCache, proto.SWNonHier, proto.SWHier, proto.NHCC, proto.HMG, proto.Ideal}
}

func TestConfigValidate(t *testing.T) {
	for _, k := range allKinds() {
		if err := tinyConfig(k).Validate(); err != nil {
			t.Errorf("%v config invalid: %v", k, err)
		}
		if err := DefaultConfig(8, k).Validate(); err != nil {
			t.Errorf("%v default config invalid: %v", k, err)
		}
	}
	bad := tinyConfig(proto.HMG)
	bad.MaxWarpInflight = 0
	if bad.Validate() == nil {
		t.Error("zero MaxWarpInflight accepted")
	}
	bad2 := tinyConfig(proto.HMG)
	bad2.L1.LineSize = 64
	if bad2.Validate() == nil {
		t.Error("mismatched line size accepted")
	}
}

func TestDefaultConfigMatchesTableII(t *testing.T) {
	c := DefaultConfig(32, proto.HMG)
	if c.Topo.NumGPUs != 4 || c.Topo.GPMsPerGPU != 4 {
		t.Error("topology is not 4 GPUs × 4 GPMs")
	}
	if c.Topo.TotalSMs() != 512 {
		t.Errorf("TotalSMs = %d, want 512", c.Topo.TotalSMs())
	}
	if c.L2Slice.CapacityBytes*c.Topo.GPMsPerGPU != 12<<20 {
		t.Error("L2 is not 12MB per GPU")
	}
	if c.Dir.Entries != 12*1024 {
		t.Error("directory is not 12K entries per GPM")
	}
	if c.Net.NVLinkGBs != 200 {
		t.Error("inter-GPU bandwidth is not 200 GB/s")
	}
	if c.FrequencyHz != 1.3e9 {
		t.Error("frequency is not 1.3 GHz")
	}
	if c.Topo.PageSize != 2<<20 {
		t.Error("page size is not 2MB")
	}
}

// TestSingleLoadAllProtocols: a single load completes and returns under
// every protocol, and the simulation drains.
func TestSingleLoadAllProtocols(t *testing.T) {
	for _, k := range allKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			tr := warpsTrace([]trace.Op{{Kind: trace.Load, Addr: 0}})
			res := mustRun(t, tinyConfig(k), tr)
			if res.Ops != 1 || res.Loads != 1 {
				t.Fatalf("ops=%d loads=%d", res.Ops, res.Loads)
			}
			if res.Cycles == 0 {
				t.Fatal("zero cycles")
			}
		})
	}
}

// TestLoadHitsAfterFill: a repeated load hits the L1 the second time and
// is much faster.
func TestLoadHitsAfterFill(t *testing.T) {
	tr := warpsTrace([]trace.Op{
		{Kind: trace.Load, Addr: 0},
		{Kind: trace.Load, Addr: 0, Gap: 1000},
	})
	res := mustRun(t, tinyConfig(proto.HMG), tr)
	if res.L1Hits != 1 {
		t.Fatalf("L1Hits = %d, want 1", res.L1Hits)
	}
}

// TestStoreValueReachesDRAM: a store's value lands in the system home's
// DRAM partition.
func TestStoreValueReachesDRAM(t *testing.T) {
	for _, k := range allKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			// Page 0 placed on GPM 3 (GPU 1); the storing CTA runs on GPM 0.
			tr := placeAll(warpsTrace([]trace.Op{
				{Kind: trace.Store, Addr: 256, Val: 77},
			}), 1, 3)
			cfg := tinyConfig(k)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(tr); err != nil {
				t.Fatal(err)
			}
			if got := s.GPMs[3].DRAM.LoadValue(256); got != 77 {
				t.Fatalf("DRAM value = %d, want 77", got)
			}
		})
	}
}

// TestRemoteLoadReturnsStoredValue: kernel 1 stores on the home GPM;
// kernel 2 (dependent) loads from a remote GPU and must see the value —
// kernel boundaries are .sys release/acquire pairs.
func TestRemoteLoadReturnsStoredValue(t *testing.T) {
	for _, k := range allKinds() {
		if k == proto.Ideal {
			continue // Ideal is deliberately incoherent
		}
		k := k
		t.Run(k.String(), func(t *testing.T) {
			got := uint64(0)
			// CTA 0 → GPM 0 (GPU 0). Page on GPM 0. Kernel 2's CTAs: put
			// 4 CTAs so CTA 3 lands on GPM 3 (GPU 1) and loads remotely.
			tr := placeAll(&trace.Trace{
				Name: "mp",
				Kernels: []trace.Kernel{
					{CTAs: []trace.CTA{{Warps: []trace.Warp{{Ops: []trace.Op{
						{Kind: trace.Store, Addr: 512, Val: 99},
					}}}}}},
					{CTAs: []trace.CTA{
						{}, {}, {},
						{Warps: []trace.Warp{{Ops: []trace.Op{
							{Kind: trace.Load, Addr: 512},
						}}}},
					}},
				},
			}, 1, 0)
			cfg := tinyConfig(k)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s.OnLoadValue = func(_ topo.SMID, _ trace.Op, v uint64) { got = v }
			if _, err := s.Run(tr); err != nil {
				t.Fatal(err)
			}
			if got != 99 {
				t.Fatalf("remote load after kernel boundary = %d, want 99", got)
			}
		})
	}
}

// TestDeterminism: identical runs produce identical cycle counts and
// traffic.
func TestDeterminism(t *testing.T) {
	tr := warpsTrace(
		[]trace.Op{{Kind: trace.Load, Addr: 0}, {Kind: trace.Store, Addr: 128, Val: 1}, {Kind: trace.Load, Addr: 4096}},
		[]trace.Op{{Kind: trace.Load, Addr: 128}, {Kind: trace.Store, Addr: 0, Val: 2}},
		[]trace.Op{{Kind: trace.Atomic, Scope: trace.ScopeSys, Addr: 8192}},
	)
	run := func() *Results { return mustRun(t, tinyConfig(proto.HMG), tr) }
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.InterGPUBytes != b.InterGPUBytes || a.EventsExecuted != b.EventsExecuted {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

// TestKernelBarrierDrains: a trace ending in stores leaves no pending
// gates after Run.
func TestKernelBarrierDrains(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 20; i++ {
		ops = append(ops, trace.Op{Kind: trace.Store, Addr: topo.Addr(i * 128), Val: uint64(i)})
	}
	cfg := tinyConfig(proto.HMG)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(warpsTrace(ops)); err != nil {
		t.Fatal(err)
	}
	for _, sm := range s.SMs {
		if sm.sysHomeGate.Pending() != 0 || sm.gpuHomeGate.Pending() != 0 {
			t.Fatal("store gates not drained at kernel end")
		}
	}
	for _, g := range s.GPMs {
		if g.invAll.Pending() != 0 {
			t.Fatal("invalidation gates not drained at kernel end")
		}
	}
}

// TestEmptyKernel: kernels with no ops complete.
func TestEmptyKernel(t *testing.T) {
	tr := &trace.Trace{Name: "empty", Kernels: []trace.Kernel{
		{CTAs: []trace.CTA{{}}},
		{CTAs: []trace.CTA{{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0}}}}}}},
	}}
	res := mustRun(t, tinyConfig(proto.HMG), tr)
	if len(res.KernelCycles) != 2 {
		t.Fatalf("KernelCycles = %v", res.KernelCycles)
	}
}

// TestMultiKernelCyclesAccumulate: cycles grow across kernels.
func TestMultiKernelCyclesAccumulate(t *testing.T) {
	tr := &trace.Trace{Name: "seq", Kernels: []trace.Kernel{
		{CTAs: []trace.CTA{{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0}}}}}}},
		{CTAs: []trace.CTA{{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0}}}}}}},
	}}
	res := mustRun(t, tinyConfig(proto.NHCC), tr)
	if res.Cycles <= res.KernelCycles[0] {
		t.Fatal("second kernel took no time")
	}
}
