package gsim

import (
	"hmg/internal/cache"
	"hmg/internal/directory"
	"hmg/internal/msg"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// Message kind aliases used by the SM layer.
const (
	relFenceKind = msg.RelFence
	relAckKind   = msg.RelAck
)

// fillData is the sparse word-value payload of a load response. It is
// nil when value tracking is off. Receivers only read it.
type fillData map[uint16]uint64

// valOf extracts one word's value from response data (0 for untracked
// words and nil data, matching never-written memory).
func valOf(fill fillData, word uint16) uint64 { return fill[word] }

// cacheableAt reports whether the policy allows caches on GPM g to hold
// line l (NoRemoteCache forbids caching lines owned by other GPUs).
func (s *System) cacheableAt(g topo.GPMID, l topo.Line) bool {
	if s.Cfg.Policy.Classify && g != s.Pages.SysHome(l) && s.classOf(l) == classReadWrite {
		// CARVE: read-write shared regions are never cached remotely.
		return false
	}
	if s.Cfg.Policy.CacheRemoteGPU {
		return true
	}
	return s.Cfg.Topo.GPUOf(s.Pages.SysHome(l)) == s.Cfg.Topo.GPUOf(g)
}

// effScope returns the scope the datapath enforces: Ideal ignores scope
// bypass entirely (loads may hit anywhere).
func (s *System) effScope(sc trace.Scope) trace.Scope {
	if s.Cfg.Policy.NoCoherence {
		return trace.ScopeNone
	}
	return sc
}

// ---------------------------------------------------------------------
// Loads
// ---------------------------------------------------------------------

// startLoad begins a load at the SM: L1 first (when the scope permits),
// then the L2 hierarchy. done receives the loaded word value.
func (sm *SM) startLoad(op trace.Op, isAcq bool, done func(uint64)) {
	s := sm.sys
	line := s.Cfg.Topo.LineOf(op.Addr)
	word := cache.WordOf(op.Addr, s.Cfg.Topo.LineSize)
	scope := s.effScope(op.Scope)
	l1OK := scope <= trace.ScopeCTA && s.cacheableAt(sm.gpm, line)
	if l1OK {
		if e, hit := sm.L1.Lookup(line); hit {
			v, _ := e.Value(word)
			c := s.newCtx(stageLoadValue)
			c.done, c.v = done, v
			s.Eng.ScheduleHandler(s.Cfg.L1Latency, c)
			return
		}
	}
	c := s.newCtx(stageLoadMiss)
	c.sm, c.op, c.line, c.word, c.flag, c.done = sm, op, line, word, l1OK, done
	s.Eng.ScheduleHandler(s.Cfg.L1Latency, c)
}

// loadAfterL1Miss is the SM-side continuation of startLoad one L1
// latency after issue: route the load into the L2 hierarchy and install
// the response in the L1 when the scope permitted an L1 lookup.
//
//lint:allow hotalloc per-op reply continuation; budget gated by the hmgperf allocs/event baseline
func (sm *SM) loadAfterL1Miss(op trace.Op, line topo.Line, word uint16, l1OK bool, done func(uint64)) {
	s := sm.sys
	s.requesterL2Load(sm, op, line, func(fill fillData) {
		if l1OK {
			e, _ := sm.L1.Fill(line)
			if s.Cfg.TrackValues {
				e.MergeFrom(fill)
			}
		}
		done(valOf(fill, word))
	})
}

// requesterL2Load handles a load at the requesting GPM's L2 slice and
// routes misses up the home hierarchy. reply receives the response line
// data once it has been installed in this GPM's L2 (when permitted).
//
//lint:allow hotalloc per-op reply/forward continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) requesterL2Load(sm *SM, op trace.Op, line topo.Line, reply func(fillData)) {
	g := sm.gpm
	gpm := s.gpmOf(g)
	scope := s.effScope(op.Scope)
	sysHome := s.Pages.SysHome(line)
	hier := s.Cfg.Policy.Hierarchical
	gpuHome := sysHome
	if hier {
		gpuHome = s.Pages.GPUHome(sm.gpu, line)
	}
	cacheable := s.cacheableAt(g, line)
	// The requester may fill its own L2 with the response for loads of
	// .gpm scope or weaker (the GPM-local slice is the .gpm coherence
	// point) on cacheable lines.
	fillHere := scope <= trace.ScopeGPM && cacheable

	if g == sysHome {
		// Local load at the system home: Table I takes no action.
		s.sysHomeLoad(g, proto.GPMRequester(int(g)), false, line, reply)
		return
	}
	if hier && g == gpuHome && gpuHome != sysHome && scope <= trace.ScopeGPU {
		// This GPM is the GPU home node for the line.
		s.gpuHomeLoad(g, g, op, line, reply)
		return
	}
	proceed := func() {
		if scope == trace.ScopeSys || !hier || gpuHome == sysHome {
			// Route directly to the system home. Track the requester only
			// if it will cache the response.
			req := s.flatRequester(g, sysHome)
			track := fillHere && s.Cfg.Policy.Hardware
			round := func(done func(fillData)) {
				s.send(g, sysHome, msg.LoadReq, func() {
					s.sysHomeLoad(sysHome, req, track, line, func(fill fillData) {
						s.send(sysHome, g, msg.DataResp, func() {
							s.fillL2(g, line, fill, fillHere)
							done(fill)
						})
					})
				})
			}
			if fillHere {
				gpm.fetch(fetchKey{line, sysHome}, reply, round)
			} else {
				round(reply)
			}
			return
		}
		// Hierarchical: route via the GPU home node.
		round := func(done func(fillData)) {
			s.send(g, gpuHome, msg.LoadReq, func() {
				s.gpuHomeLoad(gpuHome, g, op, line, func(fill fillData) {
					s.send(gpuHome, g, msg.DataResp, func() {
						s.fillL2(g, line, fill, fillHere)
						done(fill)
					})
				})
			})
		}
		if fillHere {
			gpm.fetch(fetchKey{line, gpuHome}, reply, round)
		} else {
			round(reply)
		}
	}
	if fillHere {
		// Probe the local slice before going out.
		c := s.newCtx(stageRequesterProbe)
		c.g, c.line, c.reply, c.next = g, line, reply, proceed
		s.Eng.ScheduleHandler(s.Cfg.L2Latency, c)
		return
	}
	proceed()
}

// flatRequester encodes the requester for a system-home directory under
// flat protocols (global GPM id) or, under HMG, for a requester inside
// the owner GPU (local module index) or outside it (GPU id).
func (s *System) flatRequester(g, sysHome topo.GPMID) proto.Requester {
	if !s.Cfg.Policy.Hierarchical {
		return proto.GPMRequester(int(g))
	}
	if s.Cfg.Topo.SameGPU(g, sysHome) {
		return proto.GPMRequester(s.Cfg.Topo.LocalOf(g))
	}
	return proto.GPURequester(int(s.Cfg.Topo.GPUOf(g)))
}

// gpuHomeLoad handles a load at a GPU home node that is not the system
// home (hierarchical policies only). fromGPM is the requesting module of
// the same GPU (possibly the home itself). Concurrent misses merge in
// the home's MSHRs; each still records its requester in the directory at
// request arrival.
func (s *System) gpuHomeLoad(h, fromGPM topo.GPMID, op trace.Op, line topo.Line, reply func(fillData)) {
	gpm := s.gpmOf(h)
	// Record the requesting GPM at request time; the system home will
	// only ever learn the GPU.
	if gpm.Dir != nil && fromGPM != h {
		evR, evT := gpm.Dir.RemoteLoad(line, proto.GPMRequester(s.Cfg.Topo.LocalOf(fromGPM)))
		s.sendInvs(gpm, evR, evT)
	}
	c := s.newCtx(stageGPUHomeLoad)
	c.g, c.op, c.line, c.reply = h, op, line, reply
	s.Eng.ScheduleHandler(s.Cfg.L2Latency, c)
}

// gpuHomeLoadAtL2 is the GPU-home continuation of gpuHomeLoad one L2
// latency after request arrival: home L2 lookup, then a merged fetch
// from the system home on a miss.
//
//lint:allow hotalloc fill/forward continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) gpuHomeLoadAtL2(h topo.GPMID, op trace.Op, line topo.Line, reply func(fillData)) {
	gpm := s.gpmOf(h)
	scope := s.effScope(op.Scope)
	sysHome := s.Pages.SysHome(line)
	if scope <= trace.ScopeGPU {
		if e, hit := gpm.L2.Lookup(line); hit {
			reply(e.Data)
			return
		}
	}
	// Miss: forward to the system home carrying only the GPU id; the
	// GPU home caches the response on behalf of its whole GPU.
	gpm.fetch(fetchKey{line, sysHome}, reply, func(done func(fillData)) {
		s.send(h, sysHome, msg.LoadReq, func() {
			s.sysHomeLoad(sysHome, proto.GPURequester(int(gpm.gpu)), true, line, func(fill fillData) {
				s.send(sysHome, h, msg.DataResp, func() {
					s.fillL2(h, line, fill, true)
					done(fill)
				})
			})
		})
	})
}

// sysHomeLoad handles a load at the system home node: hit in the home L2
// or fetch from the local DRAM partition. When track is set the
// requester is recorded as a sharer (Table I remote load).
//
//lint:allow hotalloc MCA reply continuation; budget gated by the hmgperf allocs/event baseline
func (s *System) sysHomeLoad(sh topo.GPMID, req proto.Requester, track bool, line topo.Line, reply func(fillData)) {
	if s.Cfg.Policy.MCA {
		// Multi-copy-atomicity: reads of a line with a store awaiting
		// invalidation acknowledgments must wait behind it.
		gpm := s.gpmOf(sh)
		gpm.lockLine(line, func() {
			gpm.unlockLine(line)
			s.sysHomeLoadUnlocked(sh, req, track, line, reply)
		})
		return
	}
	s.sysHomeLoadUnlocked(sh, req, track, line, reply)
}

func (s *System) sysHomeLoadUnlocked(sh topo.GPMID, req proto.Requester, track bool, line topo.Line, reply func(fillData)) {
	gpm := s.gpmOf(sh)
	if gpm.Dir != nil && track {
		evR, evT := gpm.Dir.RemoteLoad(line, req)
		s.sendInvs(gpm, evR, evT)
	}
	if gpm.classes != nil && !req.IsGPU {
		s.classifyLoad(gpm, line, topo.GPMID(req.ID))
	}
	c := s.newCtx(stageSysHomeLoad)
	c.g, c.line, c.reply = sh, line, reply
	s.Eng.ScheduleHandler(s.Cfg.L2Latency, c)
}

// sysHomeLoadAtL2 is the system-home continuation of a load one L2
// latency after request arrival: home L2 lookup, then a merged DRAM
// fetch on a miss.
//
//lint:allow hotalloc fill/reply continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) sysHomeLoadAtL2(sh topo.GPMID, line topo.Line, reply func(fillData)) {
	gpm := s.gpmOf(sh)
	if e, hit := gpm.L2.Lookup(line); hit {
		reply(e.Data)
		return
	}
	gpm.fetch(fetchKey{line, sh}, reply, func(done func(fillData)) {
		gpm.DRAM.Read(line, func() {
			var fill fillData
			if s.Cfg.TrackValues {
				fill = gpm.DRAM.LineValues(line)
			}
			//lint:allow eventemit home slice refilling its own line from DRAM; the requester-side fill emits EvFill when the reply lands
			e, _ := gpm.L2.Fill(line)
			//lint:allow eventemit same home refill; the value surfaces via the requester's EvLoadDone
			e.MergeFrom(fill)
			done(e.Data)
		})
	})
}

// fillL2 installs a load response into an L2 slice when allowed. Under
// the optional Downgrade optimization (Section IV, off by default and in
// the paper's evaluation), a displaced clean remote line notifies its
// home so the sharer can be dropped before it costs an invalidation.
func (s *System) fillL2(g topo.GPMID, line topo.Line, fill fillData, allowed bool) {
	if !allowed || s.gpmOf(g).poisoned[line] {
		// A poisoned fill was overtaken by an invalidation or store
		// while in flight: serve the waiters but do not cache it.
		return
	}
	e, victim := s.gpmOf(g).L2.Fill(line)
	if s.Cfg.TrackValues {
		e.MergeFrom(fill)
	}
	s.emit(Event{Kind: EvFill, GPM: g, SM: NoSM, Line: line})
	if victim != nil {
		s.emit(Event{Kind: EvL2Evict, GPM: g, SM: NoSM, Line: victim.Line})
	}
	switch {
	case victim == nil:
	case victim.Dirty && s.Cfg.WriteBack:
		// Evicted dirty data writes back to its home (charged to the
		// GPM's first SM; the kernel barrier waits on it).
		s.writeBackLine(g, s.SMs[s.Cfg.Topo.SM(g, 0)], victim.Line, victim.Data)
	case s.Cfg.Policy.Downgrade && s.Cfg.Policy.Hardware:
		s.sendDowngrade(g, victim.Line)
	}
}

// sendDowngrade notifies the home node of a clean eviction so it can
// drop this GPM from the sharer set.
//
//lint:allow hotalloc downgrade delivery continuation; budget gated by the hmgperf allocs/event baseline
func (s *System) sendDowngrade(g topo.GPMID, line topo.Line) {
	sysHome := s.Pages.SysHome(line)
	home := sysHome
	if s.Cfg.Policy.Hierarchical {
		home = s.Pages.GPUHome(s.Cfg.Topo.GPUOf(g), line)
	}
	if home == g {
		return // the home itself holds no sharer entry for itself
	}
	req := proto.GPMRequester(int(g))
	if s.Cfg.Policy.Hierarchical {
		req = proto.GPMRequester(s.Cfg.Topo.LocalOf(g))
	}
	s.send(g, home, msg.Downgrade, func() {
		if d := s.gpmOf(home).Dir; d != nil {
			d.DropSharer(line, req)
			s.emit(Event{Kind: EvDowngrade, GPM: home, SM: NoSM, Line: line, Aux: int(g)})
		}
	})
}

// ---------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------

// startStore begins a posted write-through store at the SM.
func (sm *SM) startStore(op trace.Op) {
	s := sm.sys
	line := s.Cfg.Topo.LineOf(op.Addr)
	word := cache.WordOf(op.Addr, s.Cfg.Topo.LineSize)
	sm.gpuHomeGate.Start()
	sm.sysHomeGate.Start()
	s.emit(Event{Kind: EvStoreIssue, GPM: sm.gpm, SM: sm.id, Line: line,
		Addr: op.Addr, Scope: op.Scope, Op: op.Kind, Val: op.Val})
	// Update any L1 copy in place (write-through, no allocate).
	if s.Cfg.TrackValues {
		if e, hit := sm.L1.Peek(line); hit {
			e.SetValue(word, op.Val)
		}
	}
	c := s.newCtx(stageStartStore)
	c.sm, c.op, c.line, c.word = sm, op, line, word
	s.Eng.ScheduleHandler(s.Cfg.L1Latency, c)
}

// storeAfterL1 is the SM-side continuation of startStore one L1 latency
// after issue: absorb into the local slice under the write-back option,
// or route the write-through toward the home hierarchy.
func (sm *SM) storeAfterL1(op trace.Op, line topo.Line, word uint16) {
	s := sm.sys
	if s.Cfg.WriteBack && op.Kind == trace.Store && op.Scope <= trace.ScopeCTA {
		// Write-back option: a plain store that hits the local slice
		// dirties it; the flush machinery assumes the visibility
		// obligation, so the store's gates are released here
		// (stageStoreWB in opctx.go).
		c := s.newCtx(stageStoreWB)
		c.sm, c.op, c.line, c.word = sm, op, line, word
		s.Eng.ScheduleHandler(s.Cfg.L2Latency, c)
		return
	}
	s.l2Store(sm, op, line, word)
}

// l2Store routes a write-through from the requester's L2 slice toward
// the home hierarchy. The SM's gates are released as the store is
// processed at the GPU home and system home points.
//
//lint:allow hotalloc per-store gate-release closures; budget gated by the hmgperf allocs/event baseline
func (s *System) l2Store(sm *SM, op trace.Op, line topo.Line, word uint16) {
	g := sm.gpm
	sysHome := s.Pages.SysHome(line)
	hier := s.Cfg.Policy.Hierarchical
	gpuHome := sysHome
	if hier {
		gpuHome = s.Pages.GPUHome(sm.gpu, line)
	}
	// Update the local slice copy in place (and poison any in-flight
	// fill, which would otherwise install pre-store data).
	if g != sysHome && g != gpuHome {
		if e, hit := s.gpmOf(g).L2.Peek(line); hit {
			if s.Cfg.TrackValues {
				e.SetValue(word, op.Val)
			}
		} else {
			s.gpmOf(g).poisonLine(line)
		}
	}
	onGPU := func() { sm.gpuHomeGate.Finish() }
	onSys := func() { sm.sysHomeGate.Finish() }
	switch {
	case g == sysHome:
		s.sysHomeStore(g, proto.Requester{}, true, op, line, word, onGPU, onSys)
	case hier && g == gpuHome && gpuHome != sysHome:
		s.gpuHomeStore(g, g, op, line, word, onGPU, onSys)
	case hier && gpuHome != sysHome:
		s.send(g, gpuHome, msg.StoreReq, func() {
			s.gpuHomeStore(gpuHome, g, op, line, word, onGPU, onSys)
		})
	default:
		// Flat protocols, or the owner GPU where the GPU home node and
		// the system home node coincide.
		req := s.flatRequester(g, sysHome)
		s.send(g, sysHome, msg.StoreReq, func() {
			s.sysHomeStore(sysHome, req, false, op, line, word, onGPU, onSys)
		})
	}
}

// gpuHomeStore processes a write-through at a GPU home node that is not
// the system home, then forwards it to the system home.
func (s *System) gpuHomeStore(h, fromGPM topo.GPMID, op trace.Op, line topo.Line, word uint16, onGPU, onSys func()) {
	c := s.newCtx(stageGPUHomeStore)
	c.g, c.from, c.op, c.line, c.word, c.onGPU, c.onSys = h, fromGPM, op, line, word, onGPU, onSys
	s.Eng.ScheduleHandler(s.Cfg.L2Latency, c)
}

// gpuHomeStoreAtL2 is the GPU-home continuation of a write-through one
// L2 latency after request arrival: directory transitions, home-copy
// update, and the forward to the system home.
//
//lint:allow hotalloc store-forward continuation; budget gated by the hmgperf allocs/event baseline
func (s *System) gpuHomeStoreAtL2(h, fromGPM topo.GPMID, op trace.Op, line topo.Line, word uint16, onGPU, onSys func()) {
	gpm := s.gpmOf(h)
	sysHome := s.Pages.SysHome(line)
	if gpm.Dir != nil {
		if fromGPM == h {
			s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), gpm.Dir.LocalStore(line))
		} else {
			inv, evR, evT := gpm.Dir.RemoteStore(line, proto.GPMRequester(s.Cfg.Topo.LocalOf(fromGPM)))
			s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), inv)
			s.sendInvs(gpm, evR, evT)
		}
	}
	if e, hit := gpm.L2.Peek(line); hit {
		if s.Cfg.TrackValues {
			e.SetValue(word, op.Val)
		}
	} else {
		gpm.poisonLine(line)
	}
	s.emit(Event{Kind: EvGPUHomeStore, GPM: h, SM: NoSM, Line: line,
		Addr: op.Addr, Scope: op.Scope, Op: op.Kind, Val: op.Val})
	onGPU()
	s.send(h, sysHome, msg.StoreReq, func() {
		s.sysHomeStore(sysHome, proto.GPURequester(int(gpm.gpu)), false, op, line, word, nil, onSys)
	})
}

// sysHomeStore processes a write-through at the system home: Table I
// directory transitions, home L2 update, and the DRAM write. local marks
// stores issued by the home GPM itself.
func (s *System) sysHomeStore(sh topo.GPMID, req proto.Requester, local bool, op trace.Op, line topo.Line, word uint16, onGPU, onSys func()) {
	if s.Cfg.Policy.MCA {
		s.sysHomeStoreMCA(sh, req, local, op, line, word, onGPU, onSys)
		return
	}
	c := s.newCtx(stageSysHomeStore)
	c.g, c.req, c.flag, c.op, c.line, c.word, c.onGPU, c.onSys = sh, req, local, op, line, word, onGPU, onSys
	s.Eng.ScheduleHandler(s.Cfg.L2Latency, c)
}

// sysHomeStoreAtL2 is the system-home continuation of a write-through
// one L2 latency after request arrival: classification, Table I
// directory transitions, home-copy update, and the DRAM write.
func (s *System) sysHomeStoreAtL2(sh topo.GPMID, req proto.Requester, local bool, op trace.Op, line topo.Line, word uint16, onGPU, onSys func()) {
	gpm := s.gpmOf(sh)
	if gpm.classes != nil {
		accessor := topo.GPMID(req.ID)
		if local {
			accessor = sh
		}
		if s.classifyStore(gpm, line, accessor) {
			s.broadcastInv(gpm, line)
		}
	}
	if gpm.Dir != nil {
		if local {
			s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), gpm.Dir.LocalStore(line))
		} else {
			inv, evR, evT := gpm.Dir.RemoteStore(line, req)
			s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), inv)
			s.sendInvs(gpm, evR, evT)
		}
	}
	if e, hit := gpm.L2.Peek(line); hit {
		if s.Cfg.TrackValues {
			e.SetValue(word, op.Val)
		}
	} else {
		gpm.poisonLine(line)
	}
	if s.Cfg.TrackValues {
		gpm.DRAM.StoreValue(op.Addr, op.Val)
	}
	gpm.DRAM.Write(s.Cfg.Net.Sizes.StorePayload, nil)
	s.emit(Event{Kind: EvHomeStore, GPM: sh, SM: NoSM, Line: line,
		Addr: op.Addr, Scope: op.Scope, Op: op.Kind, Val: op.Val})
	if onGPU != nil {
		onGPU()
	}
	if onSys != nil {
		onSys()
	}
}

// ---------------------------------------------------------------------
// Invalidations
// ---------------------------------------------------------------------

// sendInvs dispatches background invalidations for a region to the given
// targets. GPM targets resolve within the sender's GPU under
// hierarchical protocols and globally under flat ones; GPU targets
// resolve to that GPU's home node, which forwards to its own sharers
// (the HMG-only Table I transition). The sender's drain gates count each
// invalidation until its entire fan-out has been delivered.
//
//lint:allow hotalloc invalidation delivery/ack continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) sendInvs(from *GPM, region directory.Region, targets []proto.InvTarget) {
	if len(targets) == 0 {
		return
	}
	line := from.Dir.Dir.FirstLine(region)
	gran := from.Dir.Dir.Config().GranLines
	for _, t := range targets {
		var dest topo.GPMID
		forward := false
		if t.IsGPU {
			dest = s.Pages.GPUHome(topo.GPUID(t.ID), line)
			forward = true
		} else if s.Cfg.Policy.Hierarchical {
			dest = s.Cfg.Topo.GPM(from.gpu, t.ID)
		} else {
			dest = topo.GPMID(t.ID)
		}
		intra := !t.IsGPU && s.Cfg.Topo.SameGPU(from.id, dest)
		from.invAll.Start()
		if intra {
			from.invIntra.Start()
		}
		finish := func() {
			from.invAll.Finish()
			if intra {
				from.invIntra.Finish()
			}
		}
		s.send(from.id, dest, msg.Inv, func() {
			d := s.gpmOf(dest)
			d.L2.InvalidateRegion(line, gran)
			d.poisonRegion(line, gran)
			s.emit(Event{Kind: EvInvDeliver, GPM: dest, SM: NoSM, Line: line, Aux: gran})
			if !forward || d.Dir == nil {
				finish()
				return
			}
			fw := d.Dir.Invalidation(region)
			if len(fw) == 0 {
				finish()
				return
			}
			s.emit(Event{Kind: EvInvForward, GPM: dest, SM: NoSM, Line: line, Aux: len(fw)})
			remaining := len(fw)
			for _, ft := range fw {
				dest2 := s.Cfg.Topo.GPM(d.gpu, ft.ID)
				s.send(dest, dest2, msg.Inv, func() {
					s.gpmOf(dest2).L2.InvalidateRegion(line, gran)
					s.gpmOf(dest2).poisonRegion(line, gran)
					s.emit(Event{Kind: EvInvDeliver, GPM: dest2, SM: NoSM, Line: line, Aux: gran})
					remaining--
					if remaining == 0 {
						finish()
					}
				})
			}
		})
	}
}

// sendInvsAcked dispatches invalidations like sendInvs but additionally
// collects an InvAck from every target, invoking onAllAcked once the
// last acknowledgment returns — the multi-copy-atomic (GPU-VI) variant
// that HMG exists to avoid. Targets resolve exactly as in sendInvs.
//
//lint:allow hotalloc invalidation ack continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) sendInvsAcked(from *GPM, region directory.Region, targets []proto.InvTarget, onAllAcked func()) {
	if len(targets) == 0 {
		onAllAcked()
		return
	}
	line := from.Dir.Dir.FirstLine(region)
	gran := from.Dir.Dir.Config().GranLines
	pending := len(targets)
	for _, t := range targets {
		var dest topo.GPMID
		if t.IsGPU {
			dest = s.Pages.GPUHome(topo.GPUID(t.ID), line)
		} else if s.Cfg.Policy.Hierarchical {
			dest = s.Cfg.Topo.GPM(from.gpu, t.ID)
		} else {
			dest = topo.GPMID(t.ID)
		}
		s.send(from.id, dest, msg.Inv, func() {
			d := s.gpmOf(dest)
			d.L2.InvalidateRegion(line, gran)
			d.poisonRegion(line, gran)
			s.emit(Event{Kind: EvInvDeliver, GPM: dest, SM: NoSM, Line: line, Aux: gran})
			s.send(dest, from.id, msg.InvAck, func() {
				pending--
				if pending == 0 {
					onAllAcked()
				}
			})
		})
	}
}

// ---------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------

// startAtomic begins a scoped read-modify-write. .cta atomics perform at
// the L1; .gpu and .sys atomics at the home node of their scope (where
// the L2 atomic unit serializes them per line), and the result writes
// through toward the system home. done receives the old value.
//
//lint:allow hotalloc atomic round-trip continuations; budget gated by the hmgperf allocs/event baseline
func (sm *SM) startAtomic(op trace.Op, done func(uint64)) {
	s := sm.sys
	line := s.Cfg.Topo.LineOf(op.Addr)
	word := cache.WordOf(op.Addr, s.Cfg.Topo.LineSize)
	delta := op.Val
	if delta == 0 {
		delta = 1
	}
	if op.Scope <= trace.ScopeCTA {
		// RMW through the L1: fetch the line if absent, modify locally,
		// write the result through as an ordinary store.
		loadOp := op
		loadOp.Kind = trace.Load
		loadOp.Scope = trace.ScopeNone
		sm.startLoad(loadOp, false, func(old uint64) {
			if s.Cfg.TrackValues {
				if e, hit := sm.L1.Peek(line); hit {
					e.SetValue(word, old+delta)
				}
			}
			stOp := op
			stOp.Kind = trace.Store
			stOp.Val = old + delta
			sm.startStore(stOp)
			done(old)
		})
		return
	}
	if op.Scope == trace.ScopeGPM {
		// Section VII-D extension: RMW at the GPM-local L2's atomic
		// unit, serialized per line; the result writes through onward.
		s.atomicAtLocalL2(sm, op, line, word, delta, done)
		return
	}
	sm.gpuHomeGate.Start()
	sm.sysHomeGate.Start()
	onGPU := func() { sm.gpuHomeGate.Finish() }
	onSys := func() { sm.sysHomeGate.Finish() }
	sysHome := s.Pages.SysHome(line)
	s.Eng.Schedule(s.Cfg.L1Latency, func() {
		if op.Scope == trace.ScopeGPU && s.Cfg.Policy.Hierarchical {
			gpuHome := s.Pages.GPUHome(sm.gpu, line)
			if gpuHome != sysHome {
				s.send(sm.gpm, gpuHome, msg.AtomicReq, func() {
					s.atomicAtGPUHome(sm, gpuHome, op, line, word, delta, onGPU, onSys, done)
				})
				return
			}
		}
		s.send(sm.gpm, sysHome, msg.AtomicReq, func() {
			s.atomicAtSysHome(sm, sysHome, op, line, word, delta, onGPU, onSys, done)
		})
	})
}

// atomicAtGPUHome performs a .gpu-scoped atomic at the GPU home node:
// directory transitions as a store, RMW on the home copy (fetching from
// the system home if absent), reply to the requester, and write the
// result through to the system home.
//
//lint:allow hotalloc atomic forward/reply continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) atomicAtGPUHome(sm *SM, h topo.GPMID, op trace.Op, line topo.Line, word uint16, delta uint64, onGPU, onSys func(), done func(uint64)) {
	gpm := s.gpmOf(h)
	sysHome := s.Pages.SysHome(line)
	gpm.lockLine(line, func() {
		s.Eng.Schedule(s.Cfg.L2Latency, func() {
			if gpm.Dir != nil {
				if sm.gpm == h {
					s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), gpm.Dir.LocalStore(line))
				} else {
					inv, evR, evT := gpm.Dir.RemoteStore(line, proto.GPMRequester(s.Cfg.Topo.LocalOf(sm.gpm)))
					s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), inv)
					s.sendInvs(gpm, evR, evT)
				}
			}
			finish := func(old uint64) {
				newVal := old + delta
				if s.Cfg.TrackValues {
					e, hit := gpm.L2.Peek(line)
					if !hit {
						e, _ = gpm.L2.Fill(line)
					}
					e.SetValue(word, newVal)
				}
				s.emit(Event{Kind: EvAtomicApply, GPM: h, SM: NoSM, Line: line,
					Addr: op.Addr, Scope: op.Scope, Op: op.Kind, Val: newVal})
				gpm.unlockLine(line)
				onGPU()
				// Reply to the requester and write the result through.
				s.send(h, sm.gpm, msg.AtomicResp, func() { done(old) })
				stOp := op
				stOp.Val = newVal
				s.send(h, sysHome, msg.StoreReq, func() {
					s.sysHomeStore(sysHome, proto.GPURequester(int(gpm.gpu)), false, stOp, line, word, nil, onSys)
				})
			}
			if e, hit := gpm.L2.Lookup(line); hit {
				v, _ := e.Value(word)
				finish(v)
				return
			}
			// Fetch the line from the system home first.
			gpm.fetch(fetchKey{line, sysHome}, func(fill fillData) {
				finish(valOf(fill, word))
			}, func(fetched func(fillData)) {
				s.send(h, sysHome, msg.LoadReq, func() {
					s.sysHomeLoad(sysHome, proto.GPURequester(int(gpm.gpu)), true, line, func(fill fillData) {
						s.send(sysHome, h, msg.DataResp, func() {
							s.fillL2(h, line, fill, true)
							fetched(fill)
						})
					})
				})
			})
		})
	})
}

// atomicAtSysHome performs an atomic at the system home node.
//
//lint:allow hotalloc atomic apply/reply continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) atomicAtSysHome(sm *SM, sh topo.GPMID, op trace.Op, line topo.Line, word uint16, delta uint64, onGPU, onSys func(), done func(uint64)) {
	gpm := s.gpmOf(sh)
	gpm.lockLine(line, func() {
		s.Eng.Schedule(s.Cfg.L2Latency, func() {
			if gpm.classes != nil {
				if s.classifyStore(gpm, line, sm.gpm) {
					s.broadcastInv(gpm, line)
				}
			}
			if gpm.Dir != nil {
				if sm.gpm == sh {
					s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), gpm.Dir.LocalStore(line))
				} else {
					req := s.flatRequester(sm.gpm, sh)
					inv, evR, evT := gpm.Dir.RemoteStore(line, req)
					s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), inv)
					s.sendInvs(gpm, evR, evT)
				}
			}
			finish := func(old uint64) {
				if s.Cfg.TrackValues {
					e, hit := gpm.L2.Peek(line)
					if !hit {
						e, _ = gpm.L2.Fill(line)
						e.MergeFrom(gpm.DRAM.LineValues(line))
					}
					e.SetValue(word, old+delta)
					gpm.DRAM.StoreValue(op.Addr, old+delta)
				}
				gpm.DRAM.Write(s.Cfg.Net.Sizes.StorePayload, nil)
				s.emit(Event{Kind: EvAtomicApply, GPM: sh, SM: NoSM, Line: line,
					Addr: op.Addr, Scope: op.Scope, Op: op.Kind, Val: old + delta})
				gpm.unlockLine(line)
				onGPU()
				onSys()
				s.send(sh, sm.gpm, msg.AtomicResp, func() { done(old) })
			}
			if e, hit := gpm.L2.Lookup(line); hit {
				v, _ := e.Value(word)
				finish(v)
				return
			}
			gpm.fetch(fetchKey{line, sh}, func(fill fillData) {
				finish(valOf(fill, word))
			}, func(fetched func(fillData)) {
				gpm.DRAM.Read(line, func() {
					var fill fillData
					if s.Cfg.TrackValues {
						fill = gpm.DRAM.LineValues(line)
					}
					e, _ := gpm.L2.Fill(line)
					e.MergeFrom(fill)
					fetched(e.Data)
				})
			})
		})
	})
}

// atomicAtLocalL2 performs a .gpm-scoped atomic at the issuing GPM's own
// L2 slice (the Section VII-D extension scope): the slice's atomic unit
// serializes per line, fetching the line through the normal hierarchy if
// absent, and the result writes through onward as a plain store.
//
//lint:allow hotalloc atomic local-slice continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) atomicAtLocalL2(sm *SM, op trace.Op, line topo.Line, word uint16, delta uint64, done func(uint64)) {
	gpm := s.gpmOf(sm.gpm)
	s.Eng.Schedule(s.Cfg.L1Latency, func() {
		gpm.lockLine(line, func() {
			s.Eng.Schedule(s.Cfg.L2Latency, func() {
				finish := func(old uint64) {
					if s.Cfg.TrackValues {
						if e, hit := gpm.L2.Peek(line); hit {
							e.SetValue(word, old+delta)
						}
					}
					gpm.unlockLine(line)
					stOp := op
					stOp.Kind = trace.Store
					stOp.Scope = trace.ScopeNone
					stOp.Val = old + delta
					sm.startStore(stOp)
					done(old)
				}
				if e, hit := gpm.L2.Lookup(line); hit {
					v, _ := e.Value(word)
					finish(v)
					return
				}
				loadOp := op
				loadOp.Kind = trace.Load
				loadOp.Scope = trace.ScopeNone
				s.requesterL2Load(sm, loadOp, line, func(fill fillData) {
					finish(valOf(fill, word))
				})
			})
		})
	})
}

// sysHomeStoreMCA is the multi-copy-atomic store path of the GPU-VI
// baseline: the home line is locked while invalidations fan out, and the
// store (and therefore the storing SM's release-visible completion) only
// finishes when every sharer has acknowledged. This is the latency HMG's
// non-multi-copy-atomic design eliminates.
//
//lint:allow hotalloc MCA store continuation; budget gated by the hmgperf allocs/event baseline
func (s *System) sysHomeStoreMCA(sh topo.GPMID, req proto.Requester, local bool, op trace.Op, line topo.Line, word uint16, onGPU, onSys func()) {
	gpm := s.gpmOf(sh)
	gpm.lockLine(line, func() {
		s.Eng.Schedule(s.Cfg.L2Latency, func() {
			var inv []proto.InvTarget
			var evR directory.Region
			var evT []proto.InvTarget
			if gpm.Dir != nil {
				if local {
					inv = gpm.Dir.LocalStore(line)
				} else {
					inv, evR, evT = gpm.Dir.RemoteStore(line, req)
				}
				// Eviction fan-out keeps the ack-free background path;
				// only the store's own invalidations require acks.
				s.sendInvs(gpm, evR, evT)
			}
			finish := func() {
				if e, hit := gpm.L2.Peek(line); hit {
					if s.Cfg.TrackValues {
						e.SetValue(word, op.Val)
					}
				} else {
					gpm.poisonLine(line)
				}
				if s.Cfg.TrackValues {
					gpm.DRAM.StoreValue(op.Addr, op.Val)
				}
				gpm.DRAM.Write(s.Cfg.Net.Sizes.StorePayload, nil)
				s.emit(Event{Kind: EvHomeStore, GPM: sh, SM: NoSM, Line: line,
					Addr: op.Addr, Scope: op.Scope, Op: op.Kind, Val: op.Val})
				gpm.unlockLine(line)
				if onGPU != nil {
					onGPU()
				}
				if onSys != nil {
					onSys()
				}
			}
			if gpm.Dir == nil || len(inv) == 0 {
				finish()
				return
			}
			s.sendInvsAcked(gpm, gpm.Dir.Dir.RegionOf(line), inv, finish)
		})
	})
}
