package gsim

import (
	"fmt"

	"hmg/internal/cache"
	"hmg/internal/directory"
	"hmg/internal/engine"
	"hmg/internal/link"
	"hmg/internal/memory"
	"hmg/internal/msg"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// GPM is one GPU module: an L2 slice, its coherence directory (hardware
// policies only), and a DRAM partition.
type GPM struct {
	sys *System
	id  topo.GPMID
	gpu topo.GPUID

	L2   *cache.Cache
	Dir  *proto.DirCtrl // nil for software and ideal policies
	DRAM *memory.DRAM

	// invAll tracks background invalidations originated by this GPM's
	// directory (counted until the full hierarchical fan-out delivers);
	// invIntra tracks the subset whose entire fan-out stays within this
	// GPM's GPU. Release fences wait on these.
	invAll   drain
	invIntra drain

	// mshr merges concurrent fetches of the same line toward the same
	// next level, as a real L2's miss-status holding registers do. These
	// are cache structures, not protocol state — the directory itself
	// remains free of transient states.
	mshr map[fetchKey][]func(fillData)
	// pendingLines counts outstanding fetches per line; poisoned marks
	// lines whose in-flight fill was overtaken by an invalidation or
	// store. A poisoned fill still satisfies its waiting requests (their
	// loads raced the write, which the memory model allows) but is not
	// installed in the cache — the MSHR-level resolution of the
	// fill/invalidation race that lets the protocol itself stay free of
	// transient states.
	pendingLines map[topo.Line]int
	poisoned     map[topo.Line]bool
	// atomicQ serializes atomic read-modify-writes per line at home
	// nodes, modeling the L2 atomic unit.
	atomicQ map[topo.Line][]func()

	// classes holds CARVE-style region classifications at system homes
	// (nil unless the policy classifies).
	classes map[directory.Region]classEntry
}

// fetchKey identifies an outstanding line fetch: the line and the level
// it was sent to (the GPM itself for DRAM fetches).
type fetchKey struct {
	line topo.Line
	dest topo.GPMID
}

// fetch merges concurrent requests for the same line+destination: the
// first caller runs start (which must eventually invoke its callback
// exactly once with the response data); later callers just enqueue.
//
//lint:allow hotalloc per-fetch waiter list and reply continuations; budget gated by the hmgperf allocs/event baseline
func (g *GPM) fetch(key fetchKey, reply func(fillData), start func(done func(fillData))) {
	if waiters, busy := g.mshr[key]; busy {
		g.mshr[key] = append(waiters, reply)
		return
	}
	g.mshr[key] = []func(fillData){reply}
	g.pendingLines[key.line]++
	start(func(fill fillData) {
		waiters := g.mshr[key]
		delete(g.mshr, key)
		g.pendingLines[key.line]--
		if g.pendingLines[key.line] == 0 {
			delete(g.pendingLines, key.line)
			delete(g.poisoned, key.line)
		}
		for _, w := range waiters {
			w(fill)
		}
	})
}

// poisonLine marks an in-flight fill for the line as stale; it will not
// be installed. A no-op when no fetch is outstanding.
func (g *GPM) poisonLine(l topo.Line) {
	if g.pendingLines[l] > 0 {
		g.poisoned[l] = true
	}
}

// poisonRegion poisons every line of a directory region.
func (g *GPM) poisonRegion(first topo.Line, n int) {
	for i := 0; i < n; i++ {
		g.poisonLine(first + topo.Line(i))
	}
}

// lockLine serializes atomic operations on one line; fn runs immediately
// if the line is free, else when the current holder unlocks.
//
//lint:allow hotalloc line-lock waiter queue; allocates only on contended lines
func (g *GPM) lockLine(l topo.Line, fn func()) {
	if q, busy := g.atomicQ[l]; busy {
		g.atomicQ[l] = append(q, fn)
		return
	}
	g.atomicQ[l] = []func(){}
	fn()
}

// unlockLine releases the line and runs the next queued atomic, if any.
func (g *GPM) unlockLine(l topo.Line) {
	q, busy := g.atomicQ[l]
	if !busy {
		panic("gsim: unlockLine without lock")
	}
	if len(q) == 0 {
		delete(g.atomicQ, l)
		return
	}
	next := q[0]
	g.atomicQ[l] = q[1:]
	next()
}

// System is a complete simulated multi-GPU machine.
type System struct {
	Eng   *engine.Engine
	Cfg   Config
	Net   *link.Network
	Pages *topo.PageMap
	GPMs  []*GPM
	SMs   []*SM

	// warpsLeft counts unfinished warps in the running kernel.
	warpsLeft  int
	kernelDone func()

	// OnLoadValue, when set, observes every completed load's value — the
	// functional-testing hook used by the consistency harness.
	OnLoadValue func(sm topo.SMID, op trace.Op, val uint64)
	// OnWarpFinished, when set, observes warp completion times.
	OnWarpFinished func(at engine.Cycle)
	// OnEvent, when set, receives every protocol-visible event (see
	// EventKind). Sinks observe only — they must not mutate simulator
	// state — so attaching one cannot perturb timing or results.
	OnEvent func(Event)

	// ctxFree is the free list of pooled per-hop continuation contexts
	// (see opctx.go); steady-state hops schedule without allocating.
	ctxFree []*opCtx

	// counters for results not covered by component stats
	ops, loads, stores, atomics uint64
	interGPULoadResponses       uint64
	loadLatSum                  uint64
	maxLoadLat                  uint64
	lastWarpAt                  engine.Cycle
	drainCycles                 engine.Cycle
}

// New builds a system from a configuration.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng := engine.New(cfg.FrequencyHz)
	s := &System{
		Eng:   eng,
		Cfg:   cfg,
		Net:   link.NewNetwork(eng, cfg.Topo, cfg.Net),
		Pages: topo.NewPageMap(cfg.Topo, cfg.Placement),
	}
	for g := 0; g < cfg.Topo.TotalGPMs(); g++ {
		gpm := &GPM{
			sys:          s,
			id:           topo.GPMID(g),
			gpu:          cfg.Topo.GPUOf(topo.GPMID(g)),
			L2:           cache.New(cfg.L2Slice),
			DRAM:         memory.New(eng, cfg.DRAM),
			mshr:         make(map[fetchKey][]func(fillData)),
			pendingLines: make(map[topo.Line]int),
			poisoned:     make(map[topo.Line]bool),
			atomicQ:      make(map[topo.Line][]func()),
		}
		if cfg.Policy.Hardware {
			dcfg := cfg.Dir
			if dcfg.Shards == 0 {
				// Shard directory storage by address slice in proportion
				// to machine size, so per-GPM allocation scales lazily
				// with the footprint each directory actually tracks.
				// Sharding never changes lookup results or statistics.
				dcfg.Shards = cfg.Topo.TotalGPMs()
			}
			gpm.Dir = proto.NewDirCtrl(dcfg)
			gpm.Dir.Mutate = cfg.Mutation
		}
		if cfg.Policy.Classify {
			gpm.classes = make(map[directory.Region]classEntry)
		}
		s.GPMs = append(s.GPMs, gpm)
	}
	for i := 0; i < cfg.Topo.TotalSMs(); i++ {
		id := topo.SMID(i)
		gpm := cfg.Topo.GPMOfSM(id)
		s.SMs = append(s.SMs, &SM{
			sys: s,
			id:  id,
			gpm: gpm,
			gpu: cfg.Topo.GPUOf(gpm),
			L1:  cache.New(cfg.L1),
		})
	}
	return s, nil
}

// gpmOf returns the GPM structure for an id.
func (s *System) gpmOf(id topo.GPMID) *GPM { return s.GPMs[id] }

// Run executes a trace to completion and returns the results. Kernels
// run in order with an implicit .sys release/acquire pair at every
// boundary: the next kernel starts only after all warps finish, every
// posted store has reached its system home, and every background
// invalidation has been delivered.
func (s *System) Run(tr *trace.Trace) (*Results, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	// Pre-place hinted pages, standing in for a prior first-touch run.
	for _, h := range tr.Placement {
		if int(h.GPM) >= len(s.GPMs) {
			return nil, fmt.Errorf("gsim: placement hint GPM %d out of range", h.GPM)
		}
		s.Pages.Touch(topo.Addr(uint64(h.Page)*uint64(s.Cfg.Topo.PageSize)), h.GPM)
	}
	var kernelCycles []engine.Cycle
	for ki := range tr.Kernels {
		start := s.Eng.Now()
		s.emit(Event{Kind: EvKernelLaunch, SM: NoSM, Aux: ki})
		s.launchKernel(&tr.Kernels[ki])
		finished := false
		s.kernelDone = func() { finished = true; s.Eng.Stop() }
		s.lastWarpAt = s.Eng.Now()
		s.Eng.Run(engine.MaxCycle)
		s.drainCycles += s.Eng.Now() - s.lastWarpAt
		if !finished {
			return nil, fmt.Errorf("gsim: kernel %d of %s deadlocked at cycle %d with %d warps left",
				ki, tr.Name, s.Eng.Now(), s.warpsLeft)
		}
		// The quiescent point: warps done, stores at their system homes,
		// invalidations delivered. The conformance checker scans global
		// state on this event.
		s.emit(Event{Kind: EvKernelDrained, SM: NoSM, Aux: ki})
		kernelCycles = append(kernelCycles, s.Eng.Now()-start)
	}
	res := s.collectResults(tr)
	res.KernelCycles = kernelCycles
	return res, nil
}

// launchKernel applies kernel-boundary acquire effects and schedules the
// kernel's CTAs onto SMs.
func (s *System) launchKernel(k *trace.Kernel) {
	s.kernelBoundaryInvalidate()
	// Contiguous CTA scheduling across all GPMs; round-robin across the
	// SMs of each GPM.
	n := len(k.CTAs)
	perGPMNext := make([]int, len(s.GPMs))
	s.warpsLeft = 0
	type assignment struct {
		sm   *SM
		warp *trace.Warp
	}
	var assigns []assignment
	for i := range k.CTAs {
		g := trace.AssignCTA(i, n, s.Cfg.Topo.TotalGPMs())
		if s.Cfg.ScatterCTAs {
			g = topo.GPMID(i % s.Cfg.Topo.TotalGPMs())
		}
		smLocal := perGPMNext[g] % s.Cfg.Topo.SMsPerGPM
		perGPMNext[g]++
		sm := s.SMs[s.Cfg.Topo.SM(g, smLocal)]
		for w := range k.CTAs[i].Warps {
			wp := &k.CTAs[i].Warps[w]
			if len(wp.Ops) == 0 {
				continue
			}
			assigns = append(assigns, assignment{sm, wp})
			s.warpsLeft++
		}
	}
	if s.warpsLeft == 0 {
		// Degenerate kernel: finish at once (still draining).
		s.Eng.Schedule(0, s.finishKernelWhenDrained)
		return
	}
	for _, a := range assigns {
		a.sm.addWarp(a.warp)
	}
}

// kernelBoundaryInvalidate applies the implicit .sys acquire at kernel
// start: every configuration invalidates the software-managed L1s;
// software protocols additionally bulk-invalidate all L2 slices, while
// hardware, classified (CARVE), and idealized configurations keep L2
// contents.
func (s *System) kernelBoundaryInvalidate() {
	p := s.Cfg.Policy
	// The implicit acquire is a protocol-visible transition like any
	// explicit one: surface it to the event stream so the conformance
	// checker sees the bulk invalidation rather than inferring it.
	s.emit(Event{Kind: EvAcquire, GPM: 0, SM: NoSM, Scope: trace.ScopeSys, Op: trace.LoadAcq})
	// L1s are software-managed on every configuration, including Ideal:
	// a new kernel's implicit acquire always flushes them. What Ideal
	// idealizes is the caching of remote data in the L2 hierarchy.
	for _, sm := range s.SMs {
		sm.L1.InvalidateWhere(nil)
	}
	if p.Hardware || p.NoCoherence || p.Classify {
		return
	}
	for _, g := range s.GPMs {
		g.L2.InvalidateWhere(nil)
	}
}

// Dirty data is always flushed by the kernel-end barrier before the next
// kernelBoundaryInvalidate runs, so the flash-clear above loses nothing
// even under the write-back option.

// warpFinished is called by SMs as warps complete.
func (s *System) warpFinished() {
	if s.OnWarpFinished != nil {
		s.OnWarpFinished(s.Eng.Now())
	}
	s.warpsLeft--
	if s.warpsLeft == 0 {
		s.lastWarpAt = s.Eng.Now()
		s.finishKernelWhenDrained()
	}
}

// finishKernelWhenDrained implements the implicit .sys release at kernel
// end: wait for every SM's posted stores to reach their system home,
// then for every directory's background invalidations to be delivered.
// Store gates are drained first: invalidations are started synchronously
// when a store is processed at its home, so once store gates drain, all
// triggered invalidations are already counted.
//
//lint:allow hotalloc kernel-drain recursion closure; a kernel-boundary event, not steady state
func (s *System) finishKernelWhenDrained() {
	// Under write-back, absorptions may still be in flight when the last
	// warp retires: wait for the store gates first, then flush dirty
	// data, then wait for the flush writes themselves.
	s.waitStoreGates(0, func() {
		s.flushAllDirty()
		s.waitStoreGates(0, func() {
			s.waitInvGates(0, func() {
				if s.kernelDone != nil {
					s.kernelDone()
				}
			})
		})
	})
}

//lint:allow hotalloc kernel-drain recursion closure; a kernel-boundary event, not steady state
func (s *System) waitStoreGates(i int, done func()) {
	if i >= len(s.SMs) {
		done()
		return
	}
	s.SMs[i].sysHomeGate.Wait(func() { s.waitStoreGates(i+1, done) })
}

//lint:allow hotalloc kernel-drain recursion closure; a kernel-boundary event, not steady state
func (s *System) waitInvGates(i int, done func()) {
	if i >= len(s.GPMs) {
		done()
		return
	}
	s.GPMs[i].invAll.Wait(func() { s.waitInvGates(i+1, done) })
}

// send routes a protocol message between GPMs.
func (s *System) send(from, to topo.GPMID, k msg.Kind, deliver func()) {
	s.Net.Send(from, to, k, deliver)
}
