package gsim

// Pooled per-hop continuation contexts.
//
// Every hop through the memory hierarchy used to schedule a fresh
// closure: ~20 `Eng.Schedule(lat, func(){...})` sites in access.go,
// writeback.go, and sm.go each allocated a capture struct per event.
// opCtx replaces the hot subset of those closures with one reusable
// value drawn from a per-System free list: the caller fills in the
// fields its stage needs, schedules the context through the engine's
// allocation-free ScheduleHandler path, and Handle dispatches on the
// stage tag.
//
// Pooling invariant: Handle copies every field it needs into locals and
// releases the context *before* running the stage body. Stage bodies may
// allocate fresh contexts (reusing this very one), and any closure a
// body creates captures those locals — never the pooled struct — so a
// context is only ever live between its Schedule and its dispatch.
// Contexts never cross that boundary, which is what makes the pool safe
// without reference counting.
//
// This transformation is 1:1 with the closures it replaces: each
// converted site still schedules exactly one event with the same
// latency at the same point in execution, so event sequence numbers —
// and therefore cycle-level results — are byte-identical to the closure
// implementation.

import (
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// ctxStage discriminates which continuation a pooled opCtx carries.
type ctxStage uint8

const (
	stageNone ctxStage = iota
	// stageLoadValue delivers a resolved load value: done(v).
	stageLoadValue
	// stageLoadMiss runs the SM-side L1-miss continuation of startLoad.
	stageLoadMiss
	// stageOpDone retires a posted op at its warp: w.opDone().
	stageOpDone
	// stageWarpWake clears a warp's timed-wakeup flag and re-issues.
	stageWarpWake
	// stageSysHomeLoad runs the system-home L2 lookup of a load.
	stageSysHomeLoad
	// stageGPUHomeLoad runs the GPU-home L2 lookup of a load.
	stageGPUHomeLoad
	// stageRequesterProbe runs the requester-side local L2 probe of a
	// load before it escalates to the home hierarchy.
	stageRequesterProbe
	// stageSysHomeStore applies a write-through at the system home.
	stageSysHomeStore
	// stageGPUHomeStore applies a write-through at a GPU home node.
	stageGPUHomeStore
	// stageStartStore runs the SM-side post-L1 leg of a store.
	stageStartStore
	// stageStoreWB runs the write-back-option L2 leg of a store: absorb
	// the store into a dirty local slice hit, or fall through to the
	// write-through path.
	stageStoreWB
	// stageWBSysHome applies a write-back at the system home.
	stageWBSysHome
	// stageWBGPUHome applies a write-back at a GPU home node.
	stageWBGPUHome
)

// opCtx is the pooled continuation context. It is a union: each stage
// reads only the fields its site filled in. Fields are reset on release
// so the pool never pins caches, closures, or fill maps.
type opCtx struct {
	s     *System
	stage ctxStage

	sm   *SM
	w    *warpCtx
	g    topo.GPMID // home (or acting) GPM of the stage
	from topo.GPMID // requesting GPM, for home-side stages
	op   trace.Op
	line topo.Line
	word uint16
	flag bool // l1OK for loads; local for home-side stores
	req  proto.Requester
	v    uint64

	done  func(uint64)
	reply func(fillData)
	next  func()
	onGPU func()
	onSys func()
	data  fillData
}

// newCtx draws a context from the free list (or allocates one while the
// pool warms up) and tags it with a stage.
//
//lint:allow hotalloc pool warm-up allocation; steady state draws from the free list
func (s *System) newCtx(stage ctxStage) *opCtx {
	n := len(s.ctxFree)
	if n == 0 {
		return &opCtx{s: s, stage: stage}
	}
	c := s.ctxFree[n-1]
	s.ctxFree[n-1] = nil
	s.ctxFree = s.ctxFree[:n-1]
	c.stage = stage
	return c
}

// release zeroes the context and returns it to the free list.
//
//lint:allow hotalloc free-list append; growth is amortized across the pool's lifetime
func (c *opCtx) release() {
	s := c.s
	*c = opCtx{s: s}
	s.ctxFree = append(s.ctxFree, c)
}

// Handle dispatches the continuation. Per the pooling invariant, every
// arm copies its fields into locals and releases the context before
// running the stage body.
func (c *opCtx) Handle() {
	switch c.stage {
	case stageLoadValue:
		done, v := c.done, c.v
		c.release()
		done(v)
	case stageLoadMiss:
		sm, op, line, word, l1OK, done := c.sm, c.op, c.line, c.word, c.flag, c.done
		c.release()
		sm.loadAfterL1Miss(op, line, word, l1OK, done)
	case stageOpDone:
		w := c.w
		c.release()
		w.opDone()
	case stageWarpWake:
		w := c.w
		c.release()
		w.wakeup = false
		w.tryIssue()
	case stageSysHomeLoad:
		s, sh, line, reply := c.s, c.g, c.line, c.reply
		c.release()
		s.sysHomeLoadAtL2(sh, line, reply)
	case stageGPUHomeLoad:
		s, h, op, line, reply := c.s, c.g, c.op, c.line, c.reply
		c.release()
		s.gpuHomeLoadAtL2(h, op, line, reply)
	case stageRequesterProbe:
		s, g, line, reply, next := c.s, c.g, c.line, c.reply, c.next
		c.release()
		if e, hit := s.gpmOf(g).L2.Lookup(line); hit {
			reply(e.Data)
			return
		}
		next()
	case stageSysHomeStore:
		s, sh, req, local, op, line, word, onGPU, onSys :=
			c.s, c.g, c.req, c.flag, c.op, c.line, c.word, c.onGPU, c.onSys
		c.release()
		s.sysHomeStoreAtL2(sh, req, local, op, line, word, onGPU, onSys)
	case stageGPUHomeStore:
		s, h, from, op, line, word, onGPU, onSys :=
			c.s, c.g, c.from, c.op, c.line, c.word, c.onGPU, c.onSys
		c.release()
		s.gpuHomeStoreAtL2(h, from, op, line, word, onGPU, onSys)
	case stageStartStore:
		sm, op, line, word := c.sm, c.op, c.line, c.word
		c.release()
		sm.storeAfterL1(op, line, word)
	case stageStoreWB:
		sm, op, line, word := c.sm, c.op, c.line, c.word
		c.release()
		s := sm.sys
		if s.tryWriteBackHit(sm.gpm, line, word, op.Val) {
			sm.gpuHomeGate.Finish()
			sm.sysHomeGate.Finish()
			return
		}
		s.l2Store(sm, op, line, word)
	case stageWBSysHome:
		s, sh, req, local, line, data, onGPU, onSys :=
			c.s, c.g, c.req, c.flag, c.line, c.data, c.onGPU, c.onSys
		c.release()
		s.wbAtSysHomeL2(sh, req, local, line, data, onGPU, onSys)
	case stageWBGPUHome:
		s, h, from, line, data, onGPU, onSys :=
			c.s, c.g, c.from, c.line, c.data, c.onGPU, c.onSys
		c.release()
		s.wbAtGPUHomeL2(h, from, line, data, onGPU, onSys)
	default:
		panic("gsim: opCtx dispatched with no stage")
	}
}
