package gsim

import (
	"hmg/internal/cache"
	"hmg/internal/engine"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// SM is one streaming multiprocessor: an L1 cache plus a set of resident
// warps issuing memory operations with bounded memory-level parallelism.
type SM struct {
	sys *System
	id  topo.SMID
	gpm topo.GPMID
	gpu topo.GPUID
	L1  *cache.Cache

	warps    []*warpCtx
	inflight int // ops outstanding across the SM

	// gpuHomeGate tracks posted stores by this SM that have not yet been
	// processed at their GPU home node (their system home under flat
	// protocols); sysHomeGate tracks those not yet at the system home.
	// Releases wait on the gate matching their scope.
	gpuHomeGate drain
	sysHomeGate drain
}

// warpCtx is one resident warp executing its op stream in order (with up
// to MaxWarpInflight posted ops outstanding; synchronizing ops are
// blocking).
type warpCtx struct {
	sm       *SM
	ops      []trace.Op
	next     int
	inflight int
	blocked  bool
	readyAt  engine.Cycle
	wakeup   bool // a timed wakeup event is scheduled
	finished bool
}

// addWarp makes a warp resident and starts issuing it.
func (sm *SM) addWarp(w *trace.Warp) {
	ctx := &warpCtx{sm: sm, ops: w.Ops, readyAt: sm.sys.Eng.Now() + engine.Cycle(w.Ops[0].Gap)}
	sm.warps = append(sm.warps, ctx)
	ctx.tryIssue()
}

// poke re-attempts issue on every warp, called when SM-level resources
// free up.
func (sm *SM) poke() {
	for _, w := range sm.warps {
		w.tryIssue()
	}
}

// opDone is the completion bookkeeping shared by all op kinds.
func (w *warpCtx) opDone() {
	w.inflight--
	w.sm.inflight--
	w.sm.poke()
}

// tryIssue issues as many ops as resource limits allow.
func (w *warpCtx) tryIssue() {
	for {
		if w.finished || w.blocked {
			return
		}
		if w.next >= len(w.ops) {
			if w.inflight == 0 {
				w.finished = true
				w.sm.sys.warpFinished()
			}
			return
		}
		now := w.sm.sys.Eng.Now()
		if now < w.readyAt {
			if !w.wakeup {
				w.wakeup = true
				c := w.sm.sys.newCtx(stageWarpWake)
				c.w = w
				w.sm.sys.Eng.ScheduleHandlerAt(w.readyAt, c)
			}
			return
		}
		op := w.ops[w.next]
		if op.Kind.IsSync() && w.inflight > 0 {
			return // sync ops wait for all prior ops of the warp
		}
		if w.inflight >= w.sm.sys.Cfg.MaxWarpInflight || w.sm.inflight >= w.sm.sys.Cfg.MaxSMInflight {
			return // re-poked on completions
		}
		w.next++
		if w.next < len(w.ops) {
			w.readyAt = now + engine.Cycle(w.ops[w.next].Gap)
		}
		w.issue(op)
	}
}

// issue dispatches one op into the memory system.
//
//lint:allow hotalloc per-op observe/completion closures; allocation budget gated by the hmgperf allocs/event baseline
func (w *warpCtx) issue(op trace.Op) {
	sm := w.sm
	sys := sm.sys
	sys.ops++
	w.inflight++
	sm.inflight++
	// First touch places the page on the accessing GPM.
	sys.Pages.Touch(op.Addr, sm.gpm)
	observe := func(v uint64) {
		if sys.OnLoadValue != nil {
			sys.OnLoadValue(sm.id, op, v)
		}
		sys.emit(Event{Kind: EvLoadDone, GPM: sm.gpm, SM: sm.id,
			Line: sys.Cfg.Topo.LineOf(op.Addr), Addr: op.Addr,
			Scope: op.Scope, Op: op.Kind, Val: v})
	}
	switch op.Kind {
	case trace.Load:
		sys.loads++
		issued := sys.Eng.Now()
		sm.startLoad(op, false, func(v uint64) {
			lat := uint64(sys.Eng.Now() - issued)
			sys.loadLatSum += lat
			if lat > sys.maxLoadLat {
				sys.maxLoadLat = lat
			}
			observe(v)
			w.opDone()
		})
	case trace.LoadAcq:
		sys.loads++
		w.blocked = true
		sm.acquireInvalidate(op.Scope)
		sm.startLoad(op, true, func(v uint64) {
			observe(v)
			w.blocked = false
			w.opDone()
		})
	case trace.Store:
		sys.stores++
		// Posted: the warp sees completion after L1 access; the
		// write-through proceeds in the background.
		sm.startStore(op)
		c := sys.newCtx(stageOpDone)
		c.w = w
		sys.Eng.ScheduleHandler(sys.Cfg.L1Latency, c)
	case trace.StoreRel:
		sys.stores++
		w.blocked = true
		sm.release(op, func() {
			w.blocked = false
			w.opDone()
		})
	case trace.Atomic:
		sys.atomics++
		w.blocked = true
		sm.startAtomic(op, func(uint64) {
			w.blocked = false
			w.opDone()
		})
	}
}

// acquireInvalidate applies the protocol's acquire actions for the given
// scope. Bulk invalidations are modeled as flash-clears; their cost is
// the refetch traffic they cause.
func (sm *SM) acquireInvalidate(scope trace.Scope) {
	p := sm.sys.Cfg.Policy
	sm.sys.emit(Event{Kind: EvAcquire, GPM: sm.gpm, SM: sm.id, Scope: scope, Op: trace.LoadAcq})
	if scope <= trace.ScopeCTA {
		return // .cta acquires synchronize through the L1 itself
	}
	sm.L1.InvalidateWhere(nil)
	if scope == trace.ScopeGPM {
		// The GPM-local L2 is the .gpm coherence point and is current
		// for .gpm-visible stores under every protocol: only the L1
		// needs invalidating.
		return
	}
	if p.Hardware || p.NoCoherence || p.Classify {
		return // L2s are hardware-coherent (or idealized, or classified)
	}
	// Software coherence: bulk-invalidate L2s between the SM and the
	// scope's coherence point, flushing dirty data first under the
	// write-back option so the flash-clear loses nothing.
	if sm.sys.Cfg.WriteBack {
		sm.sys.flushDirtySlice(sm.gpm, sm)
	}
	sm.sys.gpmOf(sm.gpm).L2.InvalidateWhere(nil)
	if scope == trace.ScopeSys && p.Hierarchical {
		// Hierarchical software coherence: .sys acquires invalidate all
		// L2 slices of the issuing GPU.
		for local := 0; local < sm.sys.Cfg.Topo.GPMsPerGPU; local++ {
			g := sm.sys.Cfg.Topo.GPM(sm.gpu, local)
			if g != sm.gpm {
				if sm.sys.Cfg.WriteBack {
					sm.sys.flushDirtySlice(g, sm)
				}
				sm.sys.gpmOf(g).L2.InvalidateWhere(nil)
			}
		}
	}
}

// release implements store-release: wait for this SM's prior stores to
// reach the scope's home, fence in-flight invalidations for the scope's
// domain (hardware protocols), then perform the releasing store and wait
// for it to reach the scope's home.
//
//lint:allow hotalloc per-op completion closures; budget gated by the hmgperf allocs/event baseline
func (sm *SM) release(op trace.Op, done func()) {
	p := sm.sys.Cfg.Policy
	if p.NoCoherence {
		// Ideal: the release is an ordinary posted store.
		sm.startStore(op)
		sm.sys.Eng.Schedule(sm.sys.Cfg.L1Latency, done)
		return
	}
	if op.Scope <= trace.ScopeCTA {
		// .cta release: ordering through the L1 only; prior warp ops have
		// already drained (sync ops issue with zero warp inflight).
		sm.startStore(op)
		sm.sys.Eng.Schedule(sm.sys.Cfg.L1Latency, done)
		return
	}
	gate := &sm.sysHomeGate
	if op.Scope <= trace.ScopeGPU && p.Hierarchical {
		gate = &sm.gpuHomeGate
	}
	gate.Wait(func() {
		// "Release operations trigger a writeback of all dirty data, at
		// least to the home node for the scope being released." The
		// flush runs after prior stores' absorptions have settled (the
		// gate wait above) and its own writes are covered by the wait
		// below.
		if sm.sys.Cfg.WriteBack {
			sm.sys.flushDirtySlice(sm.gpm, sm)
		}
		gate.Wait(func() {
			sm.fenceInvalidations(op.Scope, func() {
				// The releasing store itself must reach the scope home.
				sm.startStore(op)
				gate.Wait(done)
			})
		})
	})
}

// fenceInvalidations sends release-fence probes to the L2 slices in the
// scope's domain; each acks once the invalidations it had in flight at
// probe arrival are delivered. Software protocols send none (they have
// no background invalidations).
//
//lint:allow hotalloc fence fan-out targets and continuations; fences are synchronization points, not steady-state events
func (sm *SM) fenceInvalidations(scope trace.Scope, done func()) {
	p := sm.sys.Cfg.Policy
	if !p.Hardware || scope <= trace.ScopeGPM {
		// .gpm releases need no invalidation fence: a GPM's threads all
		// read through the one local slice, so no stale sibling copies
		// are involved.
		done()
		return
	}
	var targets []topo.GPMID
	if scope == trace.ScopeGPU {
		for local := 0; local < sm.sys.Cfg.Topo.GPMsPerGPU; local++ {
			targets = append(targets, sm.sys.Cfg.Topo.GPM(sm.gpu, local))
		}
	} else {
		for g := 0; g < sm.sys.Cfg.Topo.TotalGPMs(); g++ {
			targets = append(targets, topo.GPMID(g))
		}
	}
	pending := len(targets)
	for _, tgt := range targets {
		tgt := tgt
		ack := func() {
			pending--
			if pending == 0 {
				done()
			}
		}
		gpm := sm.sys.gpmOf(tgt)
		gateFor := func() *drain {
			if scope == trace.ScopeGPU {
				return &gpm.invIntra
			}
			return &gpm.invAll
		}
		if tgt == sm.gpm {
			gateFor().Wait(ack)
			continue
		}
		sm.sys.send(sm.gpm, tgt, relFenceKind, func() {
			gateFor().Wait(func() {
				sm.sys.send(tgt, sm.gpm, relAckKind, ack)
			})
		})
	}
}
