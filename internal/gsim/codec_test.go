package gsim

import (
	"reflect"
	"testing"

	"hmg/internal/engine"
	"hmg/internal/proto"
)

// fullResults fills every field of Results with a distinct non-zero
// value via reflection, so a field added to the struct but forgotten by
// the codec fails the round-trip below instead of silently decoding to
// zero.
func fullResults(t *testing.T) *Results {
	t.Helper()
	r := &Results{}
	v := reflect.ValueOf(r).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		salt := uint64(i + 3)
		switch f.Kind() {
		case reflect.String:
			f.SetString("bench-αβ") // non-ASCII to exercise byte-exact strings
		case reflect.Uint64:
			f.SetUint(salt * 1_000_003)
		case reflect.Int:
			f.SetInt(int64(proto.HMG))
		case reflect.Float64:
			f.SetFloat(0.001953125 * float64(salt)) // exact binary fraction
		case reflect.Slice:
			f.Set(reflect.ValueOf([]engine.Cycle{7, 11, 1 << 40}))
		default:
			t.Fatalf("Results field %s has kind %v the codec test cannot fill — extend fullResults and the codec",
				v.Type().Field(i).Name, f.Kind())
		}
	}
	return r
}

func TestResultsCodecCoversEveryField(t *testing.T) {
	want := fullResults(t)
	buf, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalResults(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip lost data:\n got %+v\nwant %+v", got, want)
	}
	// The encoding is deterministic: same value, same bytes.
	buf2, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(buf2) {
		t.Fatal("MarshalBinary is not deterministic")
	}
}

func TestResultsCodecZeroValue(t *testing.T) {
	buf, err := (&Results{}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalResults(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, &Results{}) {
		t.Fatalf("zero round trip: %+v", got)
	}
}

// TestResultsCodecRejectsDamage walks every truncation point and a byte
// flip at every offset: decode must return an error or a value unequal
// to the original — never panic, never silently accept damage that
// changes the payload. (Some flips hit encoding slack, e.g. the high
// bits of the float, and legitimately decode unequal.)
func TestResultsCodecRejectsDamage(t *testing.T) {
	want := fullResults(t)
	buf, err := want.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		if _, err := UnmarshalResults(buf[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes decoded without error", cut, len(buf))
		}
	}
	for i := range buf {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x40
		got, err := UnmarshalResults(mut)
		if err == nil && reflect.DeepEqual(got, want) {
			t.Fatalf("flip at offset %d decoded equal to the original", i)
		}
	}
	if _, err := UnmarshalResults(append(buf, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestResultsCodecVersionGate(t *testing.T) {
	buf, err := (&Results{}).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	buf[0] = ResultsCodecVersion + 1
	if _, err := UnmarshalResults(buf); err == nil {
		t.Fatal("future codec version accepted")
	}
}
