package gsim

import (
	"testing"

	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// TestCARVEClassTransitions walks the private → read-only → read-write
// classification sequence.
func TestCARVEClassTransitions(t *testing.T) {
	s, err := New(tinyConfig(proto.CARVE))
	if err != nil {
		t.Fatal(err)
	}
	home := s.GPMs[0]
	s.Pages.Touch(0, 0)
	line := topo.Line(0)
	if got := s.classOf(line); got != classUntouched {
		t.Fatalf("initial class = %d", got)
	}
	s.classifyLoad(home, line, 1)
	if got := s.classOf(line); got != classPrivate {
		t.Fatalf("after first load = %d, want private", got)
	}
	s.classifyLoad(home, line, 1) // same accessor: stays private
	if got := s.classOf(line); got != classPrivate {
		t.Fatalf("repeat load = %d, want private", got)
	}
	s.classifyLoad(home, line, 2)
	if got := s.classOf(line); got != classReadOnly {
		t.Fatalf("second accessor = %d, want read-only", got)
	}
	if bc := s.classifyStore(home, line, 1); !bc {
		t.Fatal("store to read-only region did not broadcast")
	}
	if got := s.classOf(line); got != classReadWrite {
		t.Fatalf("after store = %d, want read-write", got)
	}
	// Further stores broadcast no more: remote copies cannot exist.
	if bc := s.classifyStore(home, line, 2); bc {
		t.Fatal("store to read-write region broadcast again")
	}
}

// TestCARVEPrivateStoresFree: a region written only by its private owner
// never broadcasts.
func TestCARVEPrivateStoresFree(t *testing.T) {
	s, err := New(tinyConfig(proto.CARVE))
	if err != nil {
		t.Fatal(err)
	}
	home := s.GPMs[0]
	s.Pages.Touch(0, 0)
	if bc := s.classifyStore(home, 0, 3); bc {
		t.Fatal("first store broadcast")
	}
	for i := 0; i < 5; i++ {
		if bc := s.classifyStore(home, 0, 3); bc {
			t.Fatal("private store broadcast")
		}
	}
}

// TestCARVERWNotCachedRemotely: once a region goes read-write, remote
// GPMs stop caching it and re-fetch on every access.
func TestCARVERWNotCachedRemotely(t *testing.T) {
	// Kernel 1: GPM 1 reads (private→RO once GPM 2 also reads); kernel
	// 2: GPM 2 writes (→RW, broadcast); kernel 3: GPM 1 reads twice —
	// both reads must cross to the home (no caching).
	k1 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	k1.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0}}}}}
	k1.CTAs[2] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0, Gap: 50000}}}}}
	k2 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	k2.CTAs[2] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Store, Addr: 0, Val: 5}}}}}
	k3 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	k3.CTAs[3] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.Load, Addr: 0},
		{Kind: trace.Load, Addr: 0, Gap: 100000},
	}}}}
	tr := placeAll(&trace.Trace{Name: "carve-rw", Kernels: []trace.Kernel{k1, k2, k3}}, 1, 0)
	s, err := New(tinyConfig(proto.CARVE))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.classOf(0); got != classReadWrite {
		t.Fatalf("class = %d, want read-write", got)
	}
	line := s.Cfg.Topo.LineOf(0)
	if _, cached := s.GPMs[3].L2.Peek(line); cached {
		t.Fatal("read-write region cached remotely under CARVE")
	}
	// GPM 3 is on GPU 1; home is GPM 0 (GPU 0): both kernel-3 loads
	// crossed the inter-GPU link.
	if res.InterGPULoadReqs < 2 {
		t.Fatalf("InterGPULoadReqs = %d, want >= 2 (no remote caching of RW data)", res.InterGPULoadReqs)
	}
	// The RW transition broadcast to every other GPM once.
	if res.InvMsgsOnWire != 3 {
		t.Fatalf("broadcast invs = %d, want 3 (one per other GPM)", res.InvMsgsOnWire)
	}
}

// TestCARVEMessagePassing: CARVE still passes the MP litmus — the
// broadcast plus no-remote-caching of RW data keeps release/acquire
// visibility intact.
func TestCARVEMessagePassing(t *testing.T) {
	flag, data := runMP(t, proto.CARVE, trace.ScopeSys, 3)
	if flag != 1 {
		t.Fatalf("flag = %d, want 1", flag)
	}
	if data != 42 {
		t.Fatalf("data = %d, want 42", data)
	}
}

// TestCARVENoDirectory: CARVE runs without any coherence directory.
func TestCARVENoDirectory(t *testing.T) {
	s, err := New(tinyConfig(proto.CARVE))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range s.GPMs {
		if g.Dir != nil {
			t.Fatal("CARVE allocated a directory")
		}
		if g.classes == nil {
			t.Fatal("CARVE missing classification table")
		}
	}
}
