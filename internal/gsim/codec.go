// Deterministic binary encoding of Results, the payload format of the
// on-disk campaign store (internal/resstore). The encoding is explicit
// and versioned: fields are written in declaration order with
// fixed-width or uvarint encodings, so the same Results value produces
// the same bytes on every machine — the property that lets the store
// address records by content and verify them with a payload digest.
//
// Adding a field to Results requires extending encodeResults/
// decodeResults in the same order and bumping ResultsCodecVersion (a
// version bump changes the model stamp, so every stale store record
// becomes a miss). TestResultsCodecCoversEveryField fails if a field is
// added but not encoded.

package gsim

import (
	"encoding/binary"
	"fmt"
	"math"

	"hmg/internal/engine"
	"hmg/internal/proto"
)

// ResultsCodecVersion identifies the Results wire encoding. It
// participates in the campaign store's model-version stamp: bumping it
// invalidates every cached record.
const ResultsCodecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler with the versioned
// deterministic encoding.
func (r *Results) MarshalBinary() ([]byte, error) {
	b := make([]byte, 0, 256+8*len(r.KernelCycles))
	b = append(b, ResultsCodecVersion)
	b = appendString(b, r.Name)
	if r.Protocol < 0 {
		return nil, fmt.Errorf("gsim: negative protocol kind %d", r.Protocol)
	}
	b = binary.AppendUvarint(b, uint64(r.Protocol))
	b = binary.AppendUvarint(b, uint64(r.Cycles))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.Seconds))
	for _, v := range []uint64{
		r.Ops, r.Loads, r.Stores, r.Atomics,
		r.L1Hits, r.L1Misses, r.L2Hits, r.L2Misses,
		r.InterGPUBytes, r.IntraGPUBytes, r.InterGPULoadReqs,
		r.InvMsgsOnWire, r.InvBytes, r.InterGPUInvBytes,
		r.DirStoresSeen, r.DirStoresShared, r.DirStoresWithInv,
		r.LinesInvByStores, r.DirEvicts, r.LinesInvByEvicts,
		r.DRAMReads, r.DRAMWrites,
		r.LoadLatencySum, r.MaxLoadLatency,
		uint64(r.DrainCycles),
	} {
		b = binary.AppendUvarint(b, v)
	}
	b = binary.AppendUvarint(b, uint64(len(r.KernelCycles)))
	for _, c := range r.KernelCycles {
		b = binary.AppendUvarint(b, uint64(c))
	}
	b = binary.AppendUvarint(b, r.EventsExecuted)
	return b, nil
}

// UnmarshalResults decodes a Results record produced by MarshalBinary.
// It is strict: version mismatch, truncation, or trailing bytes are
// errors — the store treats any of them as a cache miss.
func UnmarshalResults(data []byte) (*Results, error) {
	d := &decoder{buf: data}
	if v := d.byte(); v != ResultsCodecVersion {
		return nil, fmt.Errorf("gsim: results codec version %d, want %d", v, ResultsCodecVersion)
	}
	r := &Results{}
	r.Name = d.str()
	r.Protocol = proto.Kind(d.u64())
	r.Cycles = engine.Cycle(d.u64())
	r.Seconds = math.Float64frombits(d.fixed64())
	for _, p := range []*uint64{
		&r.Ops, &r.Loads, &r.Stores, &r.Atomics,
		&r.L1Hits, &r.L1Misses, &r.L2Hits, &r.L2Misses,
		&r.InterGPUBytes, &r.IntraGPUBytes, &r.InterGPULoadReqs,
		&r.InvMsgsOnWire, &r.InvBytes, &r.InterGPUInvBytes,
		&r.DirStoresSeen, &r.DirStoresShared, &r.DirStoresWithInv,
		&r.LinesInvByStores, &r.DirEvicts, &r.LinesInvByEvicts,
		&r.DRAMReads, &r.DRAMWrites,
		&r.LoadLatencySum, &r.MaxLoadLatency,
	} {
		*p = d.u64()
	}
	r.DrainCycles = engine.Cycle(d.u64())
	if n := d.u64(); n > 0 {
		if n > uint64(len(data)) { // a kernel cycle takes ≥1 byte
			return nil, fmt.Errorf("gsim: results record claims %d kernel cycles in %d bytes", n, len(data))
		}
		r.KernelCycles = make([]engine.Cycle, n)
		for i := range r.KernelCycles {
			r.KernelCycles[i] = engine.Cycle(d.u64())
		}
	}
	r.EventsExecuted = d.u64()
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("gsim: %d trailing bytes after results record", len(d.buf))
	}
	return r, nil
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decoder consumes the encoding front to back, latching the first
// error so call sites stay linear.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("gsim: truncated results record")
	}
}

func (d *decoder) byte() byte {
	if len(d.buf) < 1 {
		d.fail()
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) u64() uint64 {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) fixed64() uint64 {
	if len(d.buf) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) str() string {
	n := d.u64()
	if uint64(len(d.buf)) < n {
		d.fail()
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}
