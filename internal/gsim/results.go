package gsim

import (
	"hmg/internal/engine"
	"hmg/internal/msg"
	"hmg/internal/proto"
	"hmg/internal/stats"
	"hmg/internal/trace"
)

// Results is everything a simulation run reports. All byte counts are
// wire bytes including headers.
type Results struct {
	Name     string
	Protocol proto.Kind

	Cycles  engine.Cycle
	Seconds float64

	Ops, Loads, Stores, Atomics uint64

	L1Hits, L1Misses uint64
	L2Hits, L2Misses uint64

	// Traffic.
	InterGPUBytes    uint64
	IntraGPUBytes    uint64
	InterGPULoadReqs uint64
	InvMsgsOnWire    uint64
	InvBytes         uint64 // all links, Fig. 11 numerator
	InterGPUInvBytes uint64 // inter-GPU links only, the toposcale metric

	// Directory profile (hardware protocols).
	DirStoresSeen    uint64
	DirStoresShared  uint64
	DirStoresWithInv uint64
	LinesInvByStores uint64 // Fig. 9 numerator
	DirEvicts        uint64
	LinesInvByEvicts uint64 // Fig. 10 numerator

	DRAMReads, DRAMWrites uint64

	// LoadLatencySum accumulates issue-to-completion cycles over plain
	// loads, for average-latency reporting.
	LoadLatencySum uint64
	MaxLoadLatency uint64

	// DrainCycles is time spent in kernel-end barriers after the last
	// warp finished (store and invalidation drain).
	DrainCycles engine.Cycle

	KernelCycles   []engine.Cycle
	EventsExecuted uint64
}

// collectResults aggregates component statistics after a run.
func (s *System) collectResults(tr *trace.Trace) *Results {
	r := &Results{
		Name:           tr.Name,
		Protocol:       s.Cfg.Policy.Kind,
		Cycles:         s.Eng.Now(),
		Seconds:        s.Eng.Seconds(s.Eng.Now()),
		Ops:            s.ops,
		Loads:          s.loads,
		Stores:         s.stores,
		Atomics:        s.atomics,
		EventsExecuted: s.Eng.Executed,
		LoadLatencySum: s.loadLatSum,
		MaxLoadLatency: s.maxLoadLat,
		DrainCycles:    s.drainCycles,
	}
	for _, sm := range s.SMs {
		r.L1Hits += sm.L1.Stats.Hits
		r.L1Misses += sm.L1.Stats.Misses
	}
	for _, g := range s.GPMs {
		r.L2Hits += g.L2.Stats.Hits
		r.L2Misses += g.L2.Stats.Misses
		r.DRAMReads += g.DRAM.Stats.Reads
		r.DRAMWrites += g.DRAM.Stats.Writes
		if g.Dir != nil {
			r.DirStoresSeen += g.Dir.StoresSeen
			r.DirStoresShared += g.Dir.StoresSharedData
			r.DirStoresWithInv += g.Dir.StoresWithInvs
			r.LinesInvByStores += g.Dir.LinesInvByStores
			r.DirEvicts += g.Dir.Dir.Stats.Evicts
			r.LinesInvByEvicts += g.Dir.LinesInvByEvicts
		}
	}
	inter := s.Net.InterGPUBytes()
	intra := s.Net.IntraGPUBytes()
	for k := 0; k < msg.NumKinds; k++ {
		r.InterGPUBytes += inter[k]
		r.IntraGPUBytes += intra[k]
	}
	r.InvBytes = inter[msg.Inv] + intra[msg.Inv]
	r.InterGPUInvBytes = inter[msg.Inv]
	r.InvMsgsOnWire = s.Net.InterGPUMsgs[msg.Inv] + s.Net.IntraGPUMsgs[msg.Inv]
	r.InterGPULoadReqs = s.Net.InterGPUMsgs[msg.LoadReq]
	return r
}

// AvgLoadLatency returns mean plain-load latency in cycles.
func (r *Results) AvgLoadLatency() float64 { return stats.Ratio(r.LoadLatencySum, r.Loads) }

// L1HitRate returns the L1 hit fraction.
func (r *Results) L1HitRate() float64 { return stats.Ratio(r.L1Hits, r.L1Hits+r.L1Misses) }

// L2HitRate returns the L2 hit fraction.
func (r *Results) L2HitRate() float64 { return stats.Ratio(r.L2Hits, r.L2Hits+r.L2Misses) }

// InvLinesPerStore returns the Fig. 9 metric: average cache lines
// invalidated per store request on shared (directory-tracked) data.
func (r *Results) InvLinesPerStore() float64 {
	return stats.Ratio(r.LinesInvByStores, r.DirStoresShared)
}

// InvLinesPerDirEvict returns the Fig. 10 metric: average cache lines
// invalidated per coherence directory eviction.
func (r *Results) InvLinesPerDirEvict() float64 {
	return stats.Ratio(r.LinesInvByEvicts, r.DirEvicts)
}

// InvBandwidthGBs returns the Fig. 11 metric: total bandwidth cost of
// invalidation messages in GB/s of simulated time.
func (r *Results) InvBandwidthGBs() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.InvBytes) / r.Seconds / 1e9
}

// InterGPUInvGBs returns the bandwidth cost of invalidation messages
// crossing inter-GPU links in GB/s of simulated time — the traffic the
// hierarchical protocol's GPU-coalesced invalidations are designed to
// bound as the machine grows.
func (r *Results) InterGPUInvGBs() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.InterGPUInvBytes) / r.Seconds / 1e9
}

// InterGPUGBs returns the average inter-GPU traffic in GB/s.
func (r *Results) InterGPUGBs() float64 {
	if r.Seconds == 0 {
		return 0
	}
	return float64(r.InterGPUBytes) / r.Seconds / 1e9
}
