// Package gsim is the cycle-level timing and functional model of a
// hierarchical multi-GPU system: SMs with software-managed L1 caches,
// per-GPM L2 slices with coherence directories, per-GPM DRAM partitions,
// intra-GPU crossbars, and inter-GPU links. It executes traces under any
// of the six coherence configurations of internal/proto and is the
// engine behind every experiment in the paper reproduction.
package gsim

import (
	"fmt"

	"hmg/internal/cache"
	"hmg/internal/directory"
	"hmg/internal/engine"
	"hmg/internal/link"
	"hmg/internal/memory"
	"hmg/internal/proto"
	"hmg/internal/topo"
)

// Config describes a complete simulated system. DefaultConfig reproduces
// Table II of the paper.
type Config struct {
	Topo      topo.Topology
	Net       link.NetConfig
	DRAM      memory.Config // per-GPM partition
	L1        cache.Config  // per SM
	L2Slice   cache.Config  // per GPM
	Dir       directory.Config
	Policy    proto.Policy
	Placement topo.Placement

	// FrequencyHz is the core clock (1.3 GHz in Table II).
	FrequencyHz float64
	// L1Latency and L2Latency are cache access latencies in cycles.
	L1Latency engine.Cycle
	L2Latency engine.Cycle
	// MaxWarpInflight bounds outstanding memory ops per warp;
	// MaxSMInflight bounds them per SM. Together they set the
	// memory-level parallelism that lets GPUs tolerate latency.
	MaxWarpInflight int
	MaxSMInflight   int
	// TrackValues enables functional value propagation through caches
	// and DRAM so protocol correctness can be checked; timing runs leave
	// it off.
	TrackValues bool
	// ScatterCTAs replaces the contiguous CTA scheduling the paper
	// inherits from MCM-GPU (adjacent CTAs on the same GPM) with
	// round-robin assignment, destroying inter-CTA locality — an
	// ablation knob, off by default.
	ScatterCTAs bool
	// WriteBack selects the write-back L2 design option of Section IV:
	// plain stores that hit in the local slice dirty it instead of
	// writing through; dirty lines flush to their homes on release
	// operations, kernel boundaries, and evictions. The paper's
	// evaluation (and this repo's default) uses write-through.
	// Synchronizing stores always write through, as required for forward
	// progress.
	WriteBack bool
	// Mutation deliberately breaks Table I transitions in the directory
	// controllers — a test-only knob the conformance harness uses to
	// prove its invariant checker and litmus fuzzer detect protocol
	// bugs. Zero (no mutation) in every production configuration.
	Mutation proto.Mutation
}

// DefaultConfig returns the paper's Table II system: 4 GPUs × 4 GPMs,
// 12MB L2 and 12K directory entries per GPU module-group, 2 TB/s
// intra-GPU and 200 GB/s inter-GPU bandwidth, 1 TB/s DRAM per GPU.
//
// SMs are modeled at a granularity of smPerGPM modeled SMs per GPM; each
// modeled SM aggregates several physical SMs (and their L1 capacity), a
// standard fidelity/speed trade in trace-driven GPU simulation. Pass 32
// for one-to-one modeling of the 128-SM GPUs.
func DefaultConfig(smPerGPM int, policy proto.Kind) Config {
	if smPerGPM <= 0 {
		smPerGPM = 8 // each modeled SM aggregates 4 physical SMs
	}
	aggregation := 32 / smPerGPM
	if aggregation < 1 {
		aggregation = 1
	}
	return Config{
		Topo: topo.Topology{
			NumGPUs:    4,
			GPMsPerGPU: 4,
			SMsPerGPM:  smPerGPM,
			LineSize:   128,
			PageSize:   2 << 20,
		},
		Net:  link.DefaultNetConfig(),
		DRAM: memory.DefaultConfig(),
		L1: cache.Config{
			CapacityBytes: 128 * 1024 * aggregation, // 128KB per physical SM
			LineSize:      128,
			Ways:          8,
		},
		L2Slice: cache.Config{
			CapacityBytes: 3 << 20, // 12MB per GPU / 4 GPMs
			LineSize:      128,
			Ways:          16,
		},
		Dir:             directory.DefaultConfig(),
		Policy:          proto.For(policy),
		Placement:       topo.FirstTouch,
		FrequencyHz:     engine.DefaultFrequencyHz,
		L1Latency:       28,
		L2Latency:       96,
		MaxWarpInflight: 32,
		MaxSMInflight:   256,
	}
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if err := c.Topo.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("L1: %w", err)
	}
	if err := c.L2Slice.Validate(); err != nil {
		return fmt.Errorf("L2: %w", err)
	}
	if c.Policy.Hardware {
		if err := c.Dir.Validate(); err != nil {
			return fmt.Errorf("directory: %w", err)
		}
	}
	if c.L1.LineSize != c.Topo.LineSize || c.L2Slice.LineSize != c.Topo.LineSize {
		return fmt.Errorf("gsim: cache line sizes must match topology line size %d", c.Topo.LineSize)
	}
	if c.MaxWarpInflight <= 0 || c.MaxSMInflight <= 0 {
		return fmt.Errorf("gsim: inflight limits must be positive")
	}
	// Sharer-id-space validation is protocol-aware: flat hardware
	// protocols name sharers by global GPM id, so the whole machine must
	// fit one id space; hierarchical ones name GPU-local module indices
	// and GPU ids, so each axis is bounded independently. Software and
	// ideal policies track no sharers and accept any shape. Rejecting
	// here turns what used to be a directory.GPMBit panic deep inside
	// the first access into a constructor error.
	if c.Policy.Hardware {
		if c.Policy.Hierarchical {
			if c.Topo.GPMsPerGPU > directory.MaxSharerIDs || c.Topo.NumGPUs > directory.MaxSharerIDs {
				return fmt.Errorf("gsim: %v tracks GPU-local module and GPU ids: topology %v exceeds the %d-id sharer space",
					c.Policy.Kind, c.Topo, directory.MaxSharerIDs)
			}
		} else if c.Topo.TotalGPMs() > directory.MaxSharerIDs {
			return fmt.Errorf("gsim: %v tracks global GPM ids: topology %v has %d GPMs, exceeding the %d-id sharer space",
				c.Policy.Kind, c.Topo, c.Topo.TotalGPMs(), directory.MaxSharerIDs)
		}
	}
	return nil
}
