package gsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDrainImmediateWait(t *testing.T) {
	var d drain
	fired := false
	d.Wait(func() { fired = true })
	if !fired {
		t.Fatal("Wait with nothing pending did not fire immediately")
	}
}

func TestDrainEpochSemantics(t *testing.T) {
	var d drain
	d.Start()
	d.Start()
	fired := false
	d.Wait(func() { fired = true })
	// New work started after the wait must not delay it.
	d.Start()
	d.Finish()
	if fired {
		t.Fatal("fired with one of two epoch ops outstanding")
	}
	d.Finish()
	if !fired {
		t.Fatal("did not fire after epoch drained (later op still pending)")
	}
	if d.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", d.Pending())
	}
}

func TestDrainMultipleWaiters(t *testing.T) {
	var d drain
	d.Start()
	count := 0
	for i := 0; i < 5; i++ {
		d.Wait(func() { count++ })
	}
	d.Finish()
	if count != 5 {
		t.Fatalf("fired %d of 5 waiters", count)
	}
}

func TestDrainOverFinishPanics(t *testing.T) {
	var d drain
	d.Start()
	d.Finish()
	defer func() {
		if recover() == nil {
			t.Error("Finish beyond Start did not panic")
		}
	}()
	d.Finish()
}

func TestDrainWaiterOrdering(t *testing.T) {
	var d drain
	d.Start()
	var order []int
	d.Wait(func() { order = append(order, 1) })
	d.Start()
	d.Wait(func() { order = append(order, 2) })
	d.Finish() // epoch 1 drained
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order after first finish = %v", order)
	}
	d.Finish()
	if len(order) != 2 || order[1] != 2 {
		t.Fatalf("order after second finish = %v", order)
	}
}

// TestDrainRandomProperty: under random interleavings of Start/Finish/
// Wait, every waiter eventually fires, none fires early (while its epoch
// has outstanding work), and Pending never underflows.
func TestDrainRandomProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var d drain
		outstanding := 0
		type waiter struct {
			epoch uint64
			fired *bool
		}
		var waiters []waiter
		for i := 0; i < 300; i++ {
			switch rng.Intn(3) {
			case 0:
				d.Start()
				outstanding++
			case 1:
				if outstanding > 0 {
					d.Finish()
					outstanding--
				}
			case 2:
				fired := false
				waiters = append(waiters, waiter{epoch: d.started, fired: &fired})
				d.Wait(func() { fired = true })
			}
			// No waiter may fire while its epoch is not drained.
			for _, w := range waiters {
				if *w.fired && d.finished < w.epoch {
					return false
				}
				if !*w.fired && d.finished >= w.epoch {
					return false
				}
			}
			if d.Pending() != uint64(outstanding) {
				return false
			}
		}
		for outstanding > 0 {
			d.Finish()
			outstanding--
		}
		for _, w := range waiters {
			if !*w.fired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
