package gsim

import (
	"testing"

	"hmg/internal/directory"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// TestScopedLoadsBypassL1: .gpu and .sys loads never hit (or fill) the
// L1, per the forward-progress rules of Sections IV/V.
func TestScopedLoadsBypassL1(t *testing.T) {
	for _, scope := range []trace.Scope{trace.ScopeGPU, trace.ScopeSys} {
		tr := placeAll(warpsTrace([]trace.Op{
			{Kind: trace.Load, Addr: 0},                              // fills L1
			{Kind: trace.LoadAcq, Scope: scope, Addr: 0, Gap: 50000}, // must bypass
		}), 1, 0)
		cfg := tinyConfig(proto.HMG)
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		// The acquire invalidates L1 and bypasses: zero L1 hits for it.
		// (First load misses; second op must not count an L1 hit.)
		if res.L1Hits != 0 {
			t.Fatalf("scope %v: L1Hits = %d, want 0", scope, res.L1Hits)
		}
	}
}

// TestGPULoadHitsAtGPUHome: a .gpu-scoped load may hit at the GPU home
// node but must miss below it.
func TestGPULoadHitsAtGPUHome(t *testing.T) {
	cfg := tinyConfig(proto.HMG)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Page owned by GPM 3 (GPU 1); requester CTAs on GPU 0 (GPMs 0, 1).
	line := topo.Line(0)
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	kern.CTAs[0] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.Load, Addr: 0}, // populates GPU home via the hierarchy
	}}}}
	kern.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.LoadAcq, Scope: trace.ScopeGPU, Addr: 0, Gap: 200000},
	}}}}
	tr := placeAll(&trace.Trace{Name: "gpuhit", Kernels: []trace.Kernel{kern}}, 1, 3)
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	gh := s.Pages.GPUHome(0, line)
	if _, ok := s.gpmOf(gh).L2.Peek(line); !ok {
		t.Fatal("GPU home does not hold the line after a plain load")
	}
	// The .gpu load must not have crossed to GPU 1 if it hit at GPU 0's
	// home: at most the single plain-load fetch crossed.
	if res.InterGPULoadReqs != 1 {
		t.Fatalf("InterGPULoadReqs = %d, want 1 (the .gpu load should hit the GPU home)", res.InterGPULoadReqs)
	}
}

// TestDowngradeDropsSharer: with the optional optimization enabled, a
// clean eviction at a requester slice removes it from the home's sharer
// set.
func TestDowngradeDropsSharer(t *testing.T) {
	cfg := tinyConfig(proto.HMG)
	cfg.Policy.Downgrade = true
	// Shrink the L2 to force evictions quickly.
	cfg.L2Slice.CapacityBytes = 4 * 128 * 2 // 2 sets × ... tiny
	cfg.L2Slice.Ways = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// GPM 1 loads many lines owned by GPM 0 until its tiny L2 cycles.
	var ops []trace.Op
	for i := 0; i < 64; i++ {
		ops = append(ops, trace.Op{Kind: trace.Load, Addr: topo.Addr(i * 128), Gap: 500})
	}
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	kern.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
	tr := placeAll(&trace.Trace{Name: "down", Kernels: []trace.Kernel{kern}}, 8, 0)
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	// GPM 0 and GPM 1 share GPU 0: GPM 1's requests go straight to the
	// system home. After downgrades, only lines still resident in GPM
	// 1's L2 keep it as a sharer.
	dir := s.GPMs[0].Dir
	resident := 0
	tracked := 0
	for i := 0; i < 64; i++ {
		line := topo.Line(i)
		if _, ok := s.GPMs[1].L2.Peek(line); ok {
			resident++
		}
		if e, ok := dir.Dir.Lookup(dir.Dir.RegionOf(line)); ok && e.Sharers.Has(directory.GPMBit(1)) {
			tracked++
		}
	}
	// Tracking granularity is 4 lines, so tracked regions can exceed
	// resident lines slightly, but with 60+ evictions and downgrades the
	// tracked count must be far below the full 64.
	if tracked >= 48 {
		t.Fatalf("tracked=%d of 64 despite downgrades (resident=%d)", tracked, resident)
	}
}

// TestReleaseWaitsForStores: a .sys release does not complete before the
// releasing SM's prior stores reach their system home.
func TestReleaseWaitsForStores(t *testing.T) {
	cfg := tinyConfig(proto.HMG)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Store to a remote page, then release: by completion of the warp,
	// the store must be in the remote DRAM.
	tr := placeAll(warpsTrace([]trace.Op{
		{Kind: trace.Store, Addr: 256, Val: 5},
		{Kind: trace.StoreRel, Scope: trace.ScopeSys, Addr: 512, Val: 1},
		{Kind: trace.Load, Addr: 1024}, // issued only after the release
	}), 1, 3)
	var sawRelease bool
	var storeVisibleAtRelease bool
	// Observe via a probe op: when the post-release load completes,
	// check DRAM.
	s.OnLoadValue = func(_ topo.SMID, op trace.Op, _ uint64) {
		if op.Addr == 1024 {
			sawRelease = true
			storeVisibleAtRelease = s.GPMs[3].DRAM.LoadValue(256) == 5
		}
	}
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	if !sawRelease {
		t.Fatal("post-release load never completed")
	}
	if !storeVisibleAtRelease {
		t.Fatal("release completed before the prior store reached its system home")
	}
}

// TestGPUReleaseCheaperThanSys: under HMG, a .gpu release completes
// without waiting on cross-GPU drains, so a workload of
// store+release pairs to remote pages finishes sooner with .gpu scope.
func TestGPUReleaseCheaperThanSys(t *testing.T) {
	mk := func(scope trace.Scope) *trace.Trace {
		var ops []trace.Op
		for i := 0; i < 10; i++ {
			ops = append(ops, trace.Op{Kind: trace.Store, Addr: topo.Addr(i * 128), Val: 1})
			ops = append(ops, trace.Op{Kind: trace.StoreRel, Scope: scope, Addr: 4096, Val: 1})
		}
		return placeAll(warpsTrace(ops), 2, 3) // pages on GPU 1, warp on GPU 0
	}
	gpu := mustRun(t, tinyConfig(proto.HMG), mk(trace.ScopeGPU))
	sys := mustRun(t, tinyConfig(proto.HMG), mk(trace.ScopeSys))
	if gpu.Cycles >= sys.Cycles {
		t.Fatalf(".gpu releases (%d cycles) not cheaper than .sys (%d)", gpu.Cycles, sys.Cycles)
	}
}

// TestMSHRMergesConcurrentFetches: two SMs of one GPM requesting the
// same remote line in the same window produce one inter-GPU fetch.
func TestMSHRMergesConcurrentFetches(t *testing.T) {
	cfg := tinyConfig(proto.HMG)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two CTAs both on GPM 1 region (CTA slots 2,3 of 8 map to GPM 1).
	kern := trace.Kernel{CTAs: make([]trace.CTA, 8)}
	kern.CTAs[2] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0}}}}}
	kern.CTAs[3] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0}}}}}
	tr := placeAll(&trace.Trace{Name: "mshr", Kernels: []trace.Kernel{kern}}, 1, 3)
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.InterGPULoadReqs != 1 {
		t.Fatalf("InterGPULoadReqs = %d, want 1 (MSHR merge)", res.InterGPULoadReqs)
	}
}

// TestFalseSharingInvalidations: word-disjoint stores from different
// GPMs to one directory region ping-pong invalidations (the mst
// pathology of Section VII-A).
func TestFalseSharingInvalidations(t *testing.T) {
	cfg := tinyConfig(proto.HMG)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	for c := 0; c < 4; c++ {
		var ops []trace.Op
		for i := 0; i < 10; i++ {
			// All four GPMs read then write their own word of line 0's
			// region.
			ops = append(ops, trace.Op{Kind: trace.Load, Addr: topo.Addr(c * 4), Gap: 2000})
			ops = append(ops, trace.Op{Kind: trace.Store, Addr: topo.Addr(c * 4), Val: uint64(i), Gap: 2000})
		}
		kern.CTAs[c] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
	}
	tr := placeAll(&trace.Trace{Name: "false", Kernels: []trace.Kernel{kern}}, 1, 0)
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinesInvByStores == 0 {
		t.Fatal("false sharing produced no store-triggered invalidations")
	}
	if res.InvLinesPerStore() <= 0 {
		t.Fatal("Fig. 9 metric zero under false sharing")
	}
}

// TestSWHierSysAcquireNukesWholeGPU: hierarchical software coherence
// invalidates every L2 slice of the issuing GPU on a .sys acquire.
func TestSWHierSysAcquireNukesWholeGPU(t *testing.T) {
	cfg := tinyConfig(proto.SWHier)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kern1 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	// Both GPMs of GPU 0 cache some lines.
	kern1.CTAs[0] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 128}}}}}
	kern1.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 256}}}}}
	tr := placeAll(&trace.Trace{Name: "nuke", Kernels: []trace.Kernel{kern1}}, 1, 0)
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	if s.GPMs[0].L2.Lines() == 0 && s.GPMs[1].L2.Lines() == 0 {
		t.Skip("nothing cached; cannot observe the nuke")
	}
	// Directly exercise the acquire path on SM 0.
	s.SMs[0].acquireInvalidate(trace.ScopeSys)
	if s.GPMs[0].L2.Lines() != 0 || s.GPMs[1].L2.Lines() != 0 {
		t.Fatal(".sys acquire left lines in GPU 0's L2 slices")
	}
}

// TestScatterCTAsChangesAssignment: scattering breaks contiguous
// locality — private pages get first-touched by different GPMs, and the
// run still completes deterministically.
func TestScatterCTAsChangesAssignment(t *testing.T) {
	mk := func(scatter bool) *Results {
		cfg := tinyConfig(proto.HMG)
		cfg.ScatterCTAs = scatter
		// Adjacent CTA pairs share a page placed where contiguous
		// scheduling puts both of them: CTAs 2p and 2p+1 read page p,
		// which lives on GPM p. Contiguous scheduling makes every access
		// local; scattering sends half of them across the machine.
		kern := trace.Kernel{}
		tr := &trace.Trace{Name: "scatter"}
		for c := 0; c < 8; c++ {
			var ops []trace.Op
			for i := 0; i < 8; i++ {
				ops = append(ops, trace.Op{Kind: trace.Load, Addr: topo.Addr((c/2)*4096 + i*128)})
			}
			kern.CTAs = append(kern.CTAs, trace.CTA{Warps: []trace.Warp{{Ops: ops}}})
		}
		for p := 0; p < 4; p++ {
			tr.Placement = append(tr.Placement, trace.PlacementHint{Page: topo.Page(p), GPM: topo.GPMID(p)})
		}
		tr.Kernels = []trace.Kernel{kern}
		return mustRun(t, cfg, tr)
	}
	contig := mk(false)
	scat := mk(true)
	if contig.IntraGPUBytes+contig.InterGPUBytes >= scat.IntraGPUBytes+scat.InterGPUBytes {
		t.Fatalf("scattering did not add traffic: contiguous %d+%d vs scattered %d+%d",
			contig.IntraGPUBytes, contig.InterGPUBytes, scat.IntraGPUBytes, scat.InterGPUBytes)
	}
}

// TestMCAStoreBlocksLine: under the GPU-VI multi-copy-atomic baseline, a
// store to shared data holds its home line until the sharer's
// invalidation is acknowledged, so a racing load at the home completes
// later than it would under the ack-free protocols.
func TestMCAStoreBlocksLine(t *testing.T) {
	run := func(k proto.Kind) *Results {
		// Kernel 1: GPM 3 (other GPU) caches the line → becomes a sharer.
		k1 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
		k1.CTAs[3] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0}}}}}
		// Kernel 2: GPM 1 stores (triggers inv to GPM 3 with ack under
		// MCA), then immediately loads the line again .sys-scoped so the
		// load must visit the home while the store may be blocking it.
		k2 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
		k2.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
			{Kind: trace.Store, Addr: 0, Val: 1},
			{Kind: trace.LoadAcq, Scope: trace.ScopeSys, Addr: 0, Gap: 1},
		}}}}
		tr := placeAll(&trace.Trace{Name: "mca", Kernels: []trace.Kernel{k1, k2}}, 1, 0)
		return mustRun(t, tinyConfig(k), tr)
	}
	nhcc := run(proto.NHCC)
	mca := run(proto.GPUVI)
	if mca.Cycles <= nhcc.Cycles {
		t.Fatalf("MCA run (%d cycles) not slower than ack-free NHCC (%d)", mca.Cycles, nhcc.Cycles)
	}
	// The MCA run produced acknowledgment traffic; NHCC produced none.
	if nhccAcks := nhcc.InterGPUBytes + nhcc.IntraGPUBytes; nhccAcks == mca.InterGPUBytes+mca.IntraGPUBytes {
		t.Log("traffic identical; acceptable only if ack crossed zero links")
	}
}

// TestMCAMessagePassing: the multi-copy-atomic baseline still passes the
// MP litmus (it is strictly stronger than required).
func TestMCAMessagePassing(t *testing.T) {
	flag, data := runMP(t, proto.GPUVI, trace.ScopeSys, 3)
	if flag != 1 || data != 42 {
		t.Fatalf("flag=%d data=%d, want 1/42", flag, data)
	}
	flag, data = runMP(t, proto.GPUVI, trace.ScopeGPU, 1)
	if flag != 1 || data != 42 {
		t.Fatalf(".gpu: flag=%d data=%d, want 1/42", flag, data)
	}
}
