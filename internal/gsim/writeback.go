package gsim

// The write-back L2 design option of Section IV. Plain (.cta-or-weaker)
// stores that hit in the GPM-local L2 slice dirty it instead of writing
// through. Dirty data flushes to the home hierarchy:
//
//   - on release operations and kernel boundaries ("release operations
//     trigger a writeback of all dirty data to the respective home
//     nodes"),
//   - on acquire-driven bulk invalidations under software coherence (the
//     data would otherwise be lost with the flash-clear),
//   - on dirty-line evictions, using the WriteBack message whose issuing
//     GPM "need not be tracked as a sharer going forward".
//
// Synchronizing stores always write through, preserving forward
// progress. All flushes are tracked by the issuing SM's store gates, so
// releases and kernel barriers wait for them exactly as they wait for
// write-throughs.

import (
	"hmg/internal/cache"
	"hmg/internal/msg"
	"hmg/internal/proto"
	"hmg/internal/topo"
)

// tryWriteBackHit attempts to absorb a plain store into the local L2
// slice. It returns true when absorbed; the caller then releases the
// store's gates (the flush mechanism takes over the visibility
// obligation).
func (s *System) tryWriteBackHit(g topo.GPMID, line topo.Line, word uint16, val uint64) bool {
	e, hit := s.gpmOf(g).L2.Lookup(line)
	if !hit {
		return false
	}
	//lint:allow eventemit absorption is covered by the caller's EvStoreIssue; the flush path emits the home-side events
	e.Dirty = true
	if s.Cfg.TrackValues {
		//lint:allow eventemit same absorption; the value surfaces via EvHomeStore when the dirty line flushes
		e.SetValue(word, val)
	}
	return true
}

// flushDirtySlice writes every dirty line of one GPM's L2 slice back to
// its home hierarchy, charging the given SM's store gates. It returns
// the number of lines flushed.
//
//lint:allow hotalloc flush continuation; release/kernel-boundary work, not steady state
func (s *System) flushDirtySlice(g topo.GPMID, sm *SM) int {
	//lint:allow eventemit FlushDirty only clears dirty bits; each flushed line's home-side events are emitted by the scheduled wbAtGPUHomeL2/wbAtSysHomeL2 continuations
	return s.gpmOf(g).L2.FlushDirty(func(e cache.Entry) {
		s.writeBackLine(g, sm, e.Line, e.Data)
	})
}

// flushAllDirty flushes every GPM's dirty lines, charging each GPM's
// first SM — the implicit .sys release of a kernel boundary.
func (s *System) flushAllDirty() {
	if !s.Cfg.WriteBack {
		return
	}
	for _, g := range s.GPMs {
		sm := s.SMs[s.Cfg.Topo.SM(g.id, 0)]
		s.flushDirtySlice(g.id, sm)
	}
}

// writeBackLine sends one dirty line toward its home nodes. Routing
// follows the store path (GPU home, then system home, under hierarchical
// policies); the line's data is carried whole.
//
//lint:allow hotalloc write-back data snapshot and per-hop continuations; budget gated by the hmgperf allocs/event baseline
func (s *System) writeBackLine(g topo.GPMID, sm *SM, line topo.Line, data fillData) {
	sm.gpuHomeGate.Start()
	sm.sysHomeGate.Start()
	onGPU := func() { sm.gpuHomeGate.Finish() }
	onSys := func() { sm.sysHomeGate.Finish() }
	sysHome := s.Pages.SysHome(line)
	hier := s.Cfg.Policy.Hierarchical
	gpuHome := sysHome
	if hier {
		gpuHome = s.Pages.GPUHome(s.Cfg.Topo.GPUOf(g), line)
	}
	var snapshot fillData
	if s.Cfg.TrackValues {
		snapshot = make(fillData, len(data))
		//lint:allow determinism word-keyed map copy; every word is written to a distinct key, so order cannot matter
		for w, v := range data {
			snapshot[w] = v
		}
	}
	switch {
	case g == sysHome:
		s.wbAtSysHome(g, proto.Requester{}, true, line, snapshot, onGPU, onSys)
	case hier && gpuHome != sysHome && g == gpuHome:
		s.wbAtGPUHome(g, g, line, snapshot, onGPU, onSys)
	case hier && gpuHome != sysHome:
		s.send(g, gpuHome, msg.WriteBack, func() {
			s.wbAtGPUHome(gpuHome, g, line, snapshot, onGPU, onSys)
		})
	default:
		req := s.flatRequester(g, sysHome)
		s.send(g, sysHome, msg.WriteBack, func() {
			s.wbAtSysHome(sysHome, req, false, line, snapshot, onGPU, onSys)
		})
	}
}

// wbAtGPUHome applies a writeback at a GPU home node and forwards it to
// the system home. Per the Section IV option, the issuing GPM is not
// recorded as a sharer; other sharers of changed data are invalidated.
func (s *System) wbAtGPUHome(h, fromGPM topo.GPMID, line topo.Line, data fillData, onGPU, onSys func()) {
	c := s.newCtx(stageWBGPUHome)
	c.g, c.from, c.line, c.data, c.onGPU, c.onSys = h, fromGPM, line, data, onGPU, onSys
	s.Eng.ScheduleHandler(s.Cfg.L2Latency, c)
}

// wbAtGPUHomeL2 is the GPU-home continuation of a writeback one L2
// latency after arrival.
//
//lint:allow hotalloc write-back forward continuation; budget gated by the hmgperf allocs/event baseline
func (s *System) wbAtGPUHomeL2(h, fromGPM topo.GPMID, line topo.Line, data fillData, onGPU, onSys func()) {
	gpm := s.gpmOf(h)
	sysHome := s.Pages.SysHome(line)
	if gpm.Dir != nil {
		req := proto.GPMRequester(s.Cfg.Topo.LocalOf(fromGPM))
		if fromGPM == h {
			s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), gpm.Dir.LocalStore(line))
		} else {
			inv, evR, evT := gpm.Dir.RemoteStore(line, req)
			s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), inv)
			s.sendInvs(gpm, evR, evT)
			gpm.Dir.DropSharer(line, req) // "need not be tracked going forward"
		}
	}
	if e, hit := gpm.L2.Peek(line); hit {
		if s.Cfg.TrackValues {
			e.MergeFrom(data)
		}
	} else {
		gpm.poisonLine(line)
	}
	onGPU()
	s.send(h, sysHome, msg.WriteBack, func() {
		s.wbAtSysHome(sysHome, proto.GPURequester(int(gpm.gpu)), false, line, data, nil, onSys)
	})
}

// wbAtSysHome applies a writeback at the system home: directory store
// transition without retaining the writer as a sharer, home-copy merge,
// and the DRAM write.
func (s *System) wbAtSysHome(sh topo.GPMID, req proto.Requester, local bool, line topo.Line, data fillData, onGPU, onSys func()) {
	c := s.newCtx(stageWBSysHome)
	c.g, c.req, c.flag, c.line, c.data, c.onGPU, c.onSys = sh, req, local, line, data, onGPU, onSys
	s.Eng.ScheduleHandler(s.Cfg.L2Latency, c)
}

// wbAtSysHomeL2 is the system-home continuation of a writeback one L2
// latency after arrival.
func (s *System) wbAtSysHomeL2(sh topo.GPMID, req proto.Requester, local bool, line topo.Line, data fillData, onGPU, onSys func()) {
	gpm := s.gpmOf(sh)
	if gpm.Dir != nil {
		if local {
			s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), gpm.Dir.LocalStore(line))
		} else {
			inv, evR, evT := gpm.Dir.RemoteStore(line, req)
			s.sendInvs(gpm, gpm.Dir.Dir.RegionOf(line), inv)
			s.sendInvs(gpm, evR, evT)
			gpm.Dir.DropSharer(line, req)
		}
	}
	if e, hit := gpm.L2.Peek(line); hit {
		if s.Cfg.TrackValues {
			e.MergeFrom(data)
		}
	} else {
		gpm.poisonLine(line)
	}
	if s.Cfg.TrackValues {
		base := topo.Addr(uint64(line) * uint64(s.Cfg.Topo.LineSize))
		//lint:allow determinism each word stores to its own address; per-word DRAM writes commute
		for w, v := range data {
			gpm.DRAM.StoreValue(base+topo.Addr(w)*4, v)
		}
	}
	gpm.DRAM.Write(s.Cfg.Topo.LineSize, nil)
	if onGPU != nil {
		onGPU()
	}
	if onSys != nil {
		onSys()
	}
}
