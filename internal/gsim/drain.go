package gsim

// drain tracks completion of asynchronous operations (posted stores,
// background invalidations) with epoch semantics: a waiter registered at
// time T fires once every operation started before T has finished,
// regardless of operations started afterwards. This models release
// fences faithfully — a fence flushes what is in flight when it arrives;
// it does not require global quiescence (which could livelock under
// continuous traffic from other SMs).
type drain struct {
	started  uint64
	finished uint64
	waiters  []drainWaiter
}

type drainWaiter struct {
	threshold uint64
	fn        func()
}

// Start records the launch of one tracked operation.
func (d *drain) Start() { d.started++ }

// Finish records completion of one tracked operation and fires any
// waiters whose epoch has drained. Operations must finish exactly once.
//
//lint:allow hotalloc waiter fire list; allocates only when a fence is actually waiting
func (d *drain) Finish() {
	d.finished++
	if d.finished > d.started {
		panic("gsim: drain finished more operations than started")
	}
	if len(d.waiters) == 0 {
		return
	}
	kept := d.waiters[:0]
	var fire []func()
	for _, w := range d.waiters {
		if d.finished >= w.threshold {
			fire = append(fire, w.fn)
		} else {
			kept = append(kept, w)
		}
	}
	d.waiters = kept
	for _, fn := range fire {
		fn()
	}
}

// Wait invokes fn once all currently started operations have finished;
// immediately if none are outstanding.
//
//lint:allow hotalloc fence waiter registration; fences are synchronization points, not steady-state events
func (d *drain) Wait(fn func()) {
	if d.finished >= d.started {
		fn()
		return
	}
	d.waiters = append(d.waiters, drainWaiter{threshold: d.started, fn: fn})
}

// Pending returns the number of outstanding operations.
func (d *drain) Pending() uint64 { return d.started - d.finished }

// PendingDrains reports the system-wide outstanding posted stores (SM
// store gates toward the system home) and background invalidations
// (directory invAll gates). Both must be zero at a drained kernel
// boundary — the quiescence invariant the conformance checker asserts
// on every EvKernelDrained event.
func (s *System) PendingDrains() (stores, invs uint64) {
	for _, sm := range s.SMs {
		stores += sm.sysHomeGate.Pending()
	}
	for _, g := range s.GPMs {
		invs += g.invAll.Pending()
	}
	return stores, invs
}

// OutstandingFetches counts in-flight line fetches across all GPM
// MSHRs. Every fetch is tied to a load or atomic that must complete
// before its warp retires, so this too must be zero at a drained
// kernel boundary.
func (s *System) OutstandingFetches() int {
	n := 0
	for _, g := range s.GPMs {
		n += len(g.mshr)
	}
	return n
}
