package gsim

import (
	"testing"

	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

func wbConfig(k proto.Kind) Config {
	cfg := tinyConfig(k)
	cfg.WriteBack = true
	return cfg
}

// TestWBStoreAbsorbedLocally: a plain store to a locally cached line
// dirties the slice and produces no write-through traffic.
func TestWBStoreAbsorbedLocally(t *testing.T) {
	cfg := wbConfig(proto.HMG)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Load (fills local L2), then store to the same line, owned remotely.
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	kern.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.Load, Addr: 0},
		{Kind: trace.Store, Addr: 0, Val: 7, Gap: 100000},
	}}}}
	tr := placeAll(&trace.Trace{Name: "wb", Kernels: []trace.Kernel{kern}}, 1, 3)
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	// The kernel-end barrier flushed the dirty line: DRAM must hold 7.
	if got := s.GPMs[3].DRAM.LoadValue(0); got != 7 {
		t.Fatalf("DRAM after kernel barrier = %d, want 7 (flush missing)", got)
	}
}

// TestWBDirtyNotFlushedBeforeBarrier: mid-kernel, the dirty value stays
// local (that is the point of write-back): probe via a sibling's read of
// the home, which must still see the old value while the line is dirty.
func TestWBDirtyLineIsDirty(t *testing.T) {
	cfg := wbConfig(proto.HMG)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	s.OnLoadValue = func(_ topo.SMID, op trace.Op, v uint64) {
		if op.Addr == 128 { // the probe op
			// At probe time the store to line 0 was absorbed: check the
			// local slice is dirty.
			line := s.Cfg.Topo.LineOf(0)
			if e, ok := s.GPMs[1].L2.Peek(line); !ok || !e.Dirty {
				t.Error("store not absorbed as dirty data")
			}
			done = true
		}
	}
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	kern.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.Load, Addr: 0},
		{Kind: trace.Store, Addr: 0, Val: 9, Gap: 100000},
		{Kind: trace.Load, Addr: 128, Gap: 100000}, // probe
	}}}}
	tr := placeAll(&trace.Trace{Name: "wbdirty", Kernels: []trace.Kernel{kern}}, 1, 3)
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("probe never ran")
	}
}

// TestWBReleaseFlushes: a .sys release flushes dirty data so the MP
// litmus still passes under write-back for every coherent protocol.
func TestWBMessagePassing(t *testing.T) {
	for _, k := range []proto.Kind{proto.NoRemoteCache, proto.SWNonHier, proto.SWHier, proto.NHCC, proto.HMG} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := wbConfig(k)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var flag, data uint64
			s.OnLoadValue = func(_ topo.SMID, op trace.Op, v uint64) {
				switch {
				case op.Addr == 0x200 && op.Kind == trace.LoadAcq:
					flag = v
				case op.Addr == 0x100 && op.Kind == trace.Load:
					data = v
				}
			}
			// Writer warms its own cache (so the data store is absorbed
			// as dirty — the interesting case), then stores + releases.
			k1 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
			k1.CTAs[0] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
				{Kind: trace.Load, Addr: 0x100},
			}}}}
			k2 := trace.Kernel{CTAs: make([]trace.CTA, 4)}
			k2.CTAs[0] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
				{Kind: trace.Store, Addr: 0x100, Val: 42},
				{Kind: trace.StoreRel, Scope: trace.ScopeSys, Addr: 0x200, Val: 1},
			}}}}
			k2.CTAs[3] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
				{Kind: trace.LoadAcq, Scope: trace.ScopeSys, Addr: 0x200, Gap: 3_000_000},
				{Kind: trace.Load, Addr: 0x100},
			}}}}
			tr := placeAll(&trace.Trace{Name: "wbmp", Kernels: []trace.Kernel{k1, k2}}, 1, 0)
			if _, err := s.Run(tr); err != nil {
				t.Fatal(err)
			}
			if flag != 1 {
				t.Fatalf("flag = %d, want 1", flag)
			}
			if data != 42 {
				t.Fatalf("data = %d, want 42 (dirty line not flushed by release)", data)
			}
		})
	}
}

// TestWBDirtyEvictionWritesBack: evicting a dirty line sends its data
// home.
func TestWBDirtyEvictionWritesBack(t *testing.T) {
	cfg := wbConfig(proto.HMG)
	cfg.L2Slice.CapacityBytes = 2 * 128 * 2 // 2 sets × 2 ways: tiny
	cfg.L2Slice.Ways = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ops []trace.Op
	// Dirty line 0, then stream enough lines through the tiny slice to
	// evict it, then wait.
	ops = append(ops, trace.Op{Kind: trace.Load, Addr: 0})
	ops = append(ops, trace.Op{Kind: trace.Store, Addr: 0, Val: 77, Gap: 50000})
	for i := 1; i <= 8; i++ {
		ops = append(ops, trace.Op{Kind: trace.Load, Addr: topo.Addr(i * 128), Gap: 50000})
	}
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	kern.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
	tr := placeAll(&trace.Trace{Name: "wbevict", Kernels: []trace.Kernel{kern}}, 1, 3)
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	if got := s.GPMs[3].DRAM.LoadValue(0); got != 77 {
		t.Fatalf("evicted dirty data lost: DRAM = %d, want 77", got)
	}
}

// TestWBSyncStoresStillWriteThrough: scoped stores are never absorbed
// (forward progress requires write-through to the scope home).
func TestWBSyncStoresStillWriteThrough(t *testing.T) {
	cfg := wbConfig(proto.HMG)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
	kern.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: []trace.Op{
		{Kind: trace.Load, Addr: 0},
		{Kind: trace.StoreRel, Scope: trace.ScopeSys, Addr: 0, Val: 5, Gap: 100000},
		{Kind: trace.Load, Addr: 512, Gap: 100000}, // probe after release
	}}}}
	hit := false
	s.OnLoadValue = func(_ topo.SMID, op trace.Op, _ uint64) {
		if op.Addr == 512 {
			hit = true
			if got := s.GPMs[3].DRAM.LoadValue(0); got != 5 {
				t.Errorf("release store not at DRAM before release completed: %d", got)
			}
		}
	}
	tr := placeAll(&trace.Trace{Name: "wbsync", Kernels: []trace.Kernel{kern}}, 1, 3)
	if _, err := s.Run(tr); err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("probe never ran")
	}
}

// TestWBReducesStoreTraffic: on a store-heavy workload with locality,
// write-back produces less inter-GPU store traffic than write-through.
func TestWBReducesStoreTraffic(t *testing.T) {
	mk := func(wb bool) *Results {
		cfg := tinyConfig(proto.HMG)
		cfg.WriteBack = wb
		var ops []trace.Op
		for i := 0; i < 8; i++ {
			ops = append(ops, trace.Op{Kind: trace.Load, Addr: topo.Addr(i * 128)})
		}
		for r := 0; r < 10; r++ {
			for i := 0; i < 8; i++ {
				ops = append(ops, trace.Op{Kind: trace.Store, Addr: topo.Addr(i * 128), Val: uint64(r), Gap: 200})
			}
		}
		kern := trace.Kernel{CTAs: make([]trace.CTA, 4)}
		kern.CTAs[1] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
		tr := placeAll(&trace.Trace{Name: "wbtraffic", Kernels: []trace.Kernel{kern}}, 1, 3)
		return mustRun(t, cfg, tr)
	}
	wt := mk(false)
	wb := mk(true)
	if wb.InterGPUBytes >= wt.InterGPUBytes {
		t.Fatalf("write-back traffic (%d B) not below write-through (%d B)", wb.InterGPUBytes, wt.InterGPUBytes)
	}
}
