package gsim

// CARVE-style region classification (the related-work baseline the paper
// contrasts HMG against in Sections II-A and VII-A). Instead of tracking
// sharers, each system home classifies its regions as private,
// read-only, or read-write shared:
//
//   - private and read-only regions are cached freely with no coherence
//     traffic at all;
//   - the transition to read-write broadcasts one invalidation wave to
//     every other GPM (there is no sharer list to narrow it);
//   - read-write regions are not cached by remote GPMs afterwards, so no
//     further invalidations are needed — at the cost of every subsequent
//     access crossing the network.
//
// The classification granule matches the home-interleaving granule.

import (
	"hmg/internal/directory"
	"hmg/internal/msg"
	"hmg/internal/topo"
)

type regionClass uint8

const (
	classUntouched regionClass = iota
	classPrivate
	classReadOnly
	classReadWrite
)

// classEntry is one classified region at its system home.
type classEntry struct {
	state regionClass
	owner topo.GPMID // first accessor, meaningful in classPrivate
}

func classRegionOf(l topo.Line) directory.Region {
	return directory.Region(uint64(l) / topo.HomeGranuleLines)
}

// classOf returns the classification of a line at its system home
// (classUntouched when never classified).
func (s *System) classOf(l topo.Line) regionClass {
	home := s.gpmOf(s.Pages.SysHome(l))
	if home.classes == nil {
		return classUntouched
	}
	return home.classes[classRegionOf(l)].state
}

// classifyLoad updates a region's class for a load by accessor.
func (s *System) classifyLoad(home *GPM, l topo.Line, accessor topo.GPMID) {
	r := classRegionOf(l)
	e := home.classes[r]
	switch e.state {
	case classUntouched:
		home.classes[r] = classEntry{state: classPrivate, owner: accessor}
	case classPrivate:
		if e.owner != accessor {
			home.classes[r] = classEntry{state: classReadOnly}
		}
	case classReadOnly, classReadWrite:
		// Terminal for loads: reads never demote a classification.
	}
}

// classifyStore updates a region's class for a store by accessor and
// reports whether the transition to read-write requires a broadcast
// invalidation.
func (s *System) classifyStore(home *GPM, l topo.Line, accessor topo.GPMID) bool {
	r := classRegionOf(l)
	e := home.classes[r]
	switch e.state {
	case classUntouched:
		home.classes[r] = classEntry{state: classPrivate, owner: accessor}
		return false
	case classPrivate:
		if e.owner == accessor {
			return false
		}
		home.classes[r] = classEntry{state: classReadWrite}
		return true
	case classReadOnly:
		home.classes[r] = classEntry{state: classReadWrite}
		return true
	default:
		return false
	}
}

// broadcastInv invalidates a region in every other GPM's L2 — CARVE's
// untargeted fan-out, tracked by the home's invalidation gates exactly
// like directory-generated invalidations.
//
//lint:allow hotalloc CARVE broadcast delivery continuation; budget gated by the hmgperf allocs/event baseline
func (s *System) broadcastInv(home *GPM, l topo.Line) {
	first := topo.Line(uint64(classRegionOf(l)) * topo.HomeGranuleLines)
	for g := 0; g < s.Cfg.Topo.TotalGPMs(); g++ {
		dest := topo.GPMID(g)
		if dest == home.id {
			continue
		}
		intra := s.Cfg.Topo.SameGPU(home.id, dest)
		home.invAll.Start()
		if intra {
			home.invIntra.Start()
		}
		s.send(home.id, dest, msg.Inv, func() {
			s.gpmOf(dest).L2.InvalidateRegion(first, topo.HomeGranuleLines)
			s.emit(Event{Kind: EvInvDeliver, GPM: dest, SM: NoSM, Line: first, Aux: topo.HomeGranuleLines})
			home.invAll.Finish()
			if intra {
				home.invIntra.Finish()
			}
		})
	}
}
