package msg

import (
	"strings"
	"testing"
)

func TestKindStrings(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.Contains(Kind(200).String(), "200") {
		t.Error("unknown kind string wrong")
	}
}

func TestDefaultSizes(t *testing.T) {
	s := DefaultSizes()
	if s.Header != 16 || s.Line != 128 || s.StorePayload != 32 {
		t.Fatalf("defaults = %+v", s)
	}
	cases := map[Kind]int{
		LoadReq:    16,
		StoreReq:   48,
		AtomicReq:  24,
		AtomicResp: 24,
		DataResp:   144,
		WriteBack:  144,
		Inv:        16,
		RelFence:   16,
		RelAck:     16,
		Downgrade:  16,
	}
	for k, want := range cases {
		if got := s.Bytes(k); got != want {
			t.Errorf("Bytes(%v) = %d, want %d", k, got, want)
		}
	}
}

// TestInvalidationsAreCheap documents the property Fig. 11 relies on:
// an invalidation is small relative to a cache line transfer.
func TestInvalidationsAreCheap(t *testing.T) {
	s := DefaultSizes()
	if s.Bytes(Inv)*4 > s.Bytes(DataResp) {
		t.Fatal("invalidation messages not small relative to data transfers")
	}
}
