// Package msg defines the coherence and memory-system message vocabulary
// exchanged between L1 controllers, L2 slices, coherence directories, and
// DRAM partitions, together with the on-wire sizes used for bandwidth
// accounting.
//
// HMG's protocol (paper Table I) needs remarkably few message kinds
// because it has no transient states and no invalidation acknowledgments:
// requests, data replies, background invalidations, and the release
// fence/ack pair are the entire vocabulary.
package msg

import "fmt"

// Kind enumerates message types.
type Kind uint8

const (
	// LoadReq requests a line (or word) from a lower level or a home node.
	LoadReq Kind = iota
	// StoreReq carries write-through data toward a home node.
	StoreReq
	// AtomicReq requests a read-modify-write at the home node of the
	// operation's scope.
	AtomicReq
	// DataResp returns a full cache line in response to a LoadReq.
	DataResp
	// AtomicResp returns the pre-image of an atomic operation.
	AtomicResp
	// Inv invalidates any clean copy of a region at the receiver. No
	// acknowledgment is ever sent (non-multi-copy-atomic model).
	Inv
	// RelFence probes a remote L2 during a release operation, asking it
	// to acknowledge once in-flight invalidations have been delivered.
	RelFence
	// RelAck acknowledges a RelFence.
	RelAck
	// Downgrade notifies a home node that a clean line was evicted so the
	// sharer can be dropped (optional protocol optimization; modeled but
	// disabled in the paper's evaluation and in ours by default).
	Downgrade
	// InvAck acknowledges an invalidation — used only by the
	// multi-copy-atomic GPU-VI baseline; HMG's headline property is that
	// it needs none.
	InvAck
	// WriteBack carries a dirty line to its home under the write-back L2
	// design option: the home updates its copy but need not track the
	// issuing GPM as a sharer going forward (Section IV, cache
	// eviction discussion).
	WriteBack
)

var kindNames = [...]string{
	LoadReq:    "LoadReq",
	StoreReq:   "StoreReq",
	AtomicReq:  "AtomicReq",
	DataResp:   "DataResp",
	AtomicResp: "AtomicResp",
	Inv:        "Inv",
	RelFence:   "RelFence",
	RelAck:     "RelAck",
	Downgrade:  "Downgrade",
	InvAck:     "InvAck",
	WriteBack:  "WriteBack",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NumKinds is the number of defined message kinds, for stats arrays.
const NumKinds = len(kindNames)

// Sizes gives the on-wire size in bytes of each message kind. These feed
// the link serialization model and the Fig. 11 invalidation-bandwidth
// accounting.
type Sizes struct {
	// Header is the size of any control message (requests, invs, acks).
	Header int
	// StorePayload is the sector size carried by a write-through store.
	StorePayload int
	// Line is the cache line size carried by a DataResp.
	Line int
}

// DefaultSizes matches the paper's 128-byte lines with a 16-byte header
// and 32-byte write-through sectors.
func DefaultSizes() Sizes { return Sizes{Header: 16, StorePayload: 32, Line: 128} }

// Bytes returns the wire size of a message of kind k.
func (s Sizes) Bytes(k Kind) int {
	switch k {
	case DataResp, WriteBack:
		return s.Header + s.Line
	case StoreReq:
		return s.Header + s.StorePayload
	case AtomicReq, AtomicResp:
		return s.Header + 8
	default:
		return s.Header
	}
}
