package workload

import (
	"fmt"
	"sort"

	"hmg/internal/trace"
)

// The twenty Table III benchmarks. Footprints are the paper's, scaled
// ~64× down to match scaled trace lengths; sharing/synchronization
// parameters are set from each workload's published characteristics and
// the paper's own profiles (Fig. 3 intra-GPU redundancy, Fig. 9/10
// invalidation behaviour, the Fig. 8 grouping into bulk-synchronous
// workloads on the left and fine-grained-sharing workloads on the
// right).
//
// Presentation order matches the paper's figures.
var suite = []Params{
	{
		Name: "HPC MiniAMR-test2", Abbrev: "MiniAMR", TableIIIFootprint: "1.80 GB",
		FootprintMB: 28, Kernels: 4, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.70, SharedFrac: 0.15, Redundancy: 0.97, RWShared: 0.03,
		InKernelReuse: 4, CrossKernelReuse: 0.85, GapMean: 3, Seed: 101,
	},
	{
		Name: "ML overfeat layer1", Abbrev: "overfeat", TableIIIFootprint: "618 MB",
		FootprintMB: 10, Kernels: 2, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.75, SharedFrac: 0.12, Redundancy: 0.95, RWShared: 0.02,
		InKernelReuse: 3, CrossKernelReuse: 0.70, GapMean: 2, Seed: 102,
	},
	{
		Name: "ML AlexNet conv2", Abbrev: "AlexNet", TableIIIFootprint: "812 MB",
		FootprintMB: 13, Kernels: 3, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.75, SharedFrac: 0.25, Redundancy: 0.90, RWShared: 0.02,
		InKernelReuse: 4, CrossKernelReuse: 0.80, GapMean: 4, Seed: 103,
	},
	{
		Name: "HPC CoMD-xyz49", Abbrev: "CoMD", TableIIIFootprint: "313 MB",
		FootprintMB: 5, Kernels: 4, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.70, SharedFrac: 0.18, Redundancy: 0.55, RWShared: 0.05,
		InKernelReuse: 3, CrossKernelReuse: 0.70, GapMean: 3, Seed: 104,
	},
	{
		Name: "HPC HPGMG", Abbrev: "HPGMG", TableIIIFootprint: "1.32 GB",
		FootprintMB: 21, Kernels: 6, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.72, SharedFrac: 0.28, Redundancy: 0.80, RWShared: 0.05,
		InKernelReuse: 3, CrossKernelReuse: 0.75, GapMean: 4, Seed: 105,
	},
	{
		Name: "HPC MiniContact", Abbrev: "MiniContact", TableIIIFootprint: "246 MB",
		FootprintMB: 4, Kernels: 4, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.70, SharedFrac: 0.30, Redundancy: 0.65, RWShared: 0.08,
		InKernelReuse: 4, CrossKernelReuse: 0.70, GapMean: 4, Seed: 106,
	},
	{
		Name: "Rodinia pathfinder", Abbrev: "pathfinder", TableIIIFootprint: "1.49 GB",
		FootprintMB: 23, Kernels: 6, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.80, SharedFrac: 0.12, Redundancy: 0.75, RWShared: 0.02,
		InKernelReuse: 2, CrossKernelReuse: 0.75, GapMean: 2, Seed: 107,
	},
	{
		Name: "HPC Nekbone-10", Abbrev: "Nekbone", TableIIIFootprint: "178 MB",
		FootprintMB: 3, Kernels: 4, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.75, SharedFrac: 0.22, Redundancy: 0.85, RWShared: 0.04,
		InKernelReuse: 4, CrossKernelReuse: 0.75, GapMean: 3, Seed: 108,
	},
	{
		Name: "HPC namd2.10", Abbrev: "namd2.10", TableIIIFootprint: "72 MB",
		FootprintMB: 2, Kernels: 2, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.70, SharedFrac: 0.18, Redundancy: 0.45, RWShared: 0.06,
		InKernelReuse: 4, CrossKernelReuse: 0.65, SyncScope: trace.ScopeGPU, SyncEvery: 80, AtomicFrac: 0.3,
		GapMean: 3, Seed: 109,
	},
	{
		Name: "cuSolver", Abbrev: "cuSolver", TableIIIFootprint: "1.60 GB",
		FootprintMB: 25, Kernels: 4, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.72, SharedFrac: 0.25, Redundancy: 0.70, RWShared: 0.05,
		InKernelReuse: 3, CrossKernelReuse: 0.60, SyncScope: trace.ScopeGPU, SyncEvery: 100, AtomicFrac: 0.2,
		GapMean: 4, Seed: 110,
	},
	{
		Name: "ML resnet", Abbrev: "resnet", TableIIIFootprint: "3.20 GB",
		FootprintMB: 48, Kernels: 8, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.75, SharedFrac: 0.50, Redundancy: 0.88, RWShared: 0.04,
		InKernelReuse: 2, CrossKernelReuse: 0.70, GapMean: 2, Seed: 111,
	},
	{
		Name: "Lonestar mst-road-fla", Abbrev: "mst", TableIIIFootprint: "83 MB",
		FootprintMB: 1.5, Kernels: 10, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 150,
		ReadFrac: 0.60, SharedFrac: 0.45, Redundancy: 0.55, RWShared: 0.30,
		InKernelReuse: 2, CrossKernelReuse: 0.60, SyncScope: trace.ScopeGPU, SyncEvery: 40, AtomicFrac: 0.5,
		FalseSharing: true, GapMean: 4, Seed: 112,
	},
	{
		Name: "Rodinia nw-16K-10", Abbrev: "nw-16K", TableIIIFootprint: "2.00 GB",
		FootprintMB: 31, Kernels: 20, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 120,
		ReadFrac: 0.70, SharedFrac: 0.70, Redundancy: 0.75, RWShared: 0.10,
		InKernelReuse: 2, CrossKernelReuse: 0.90, GapMean: 3, Seed: 113,
	},
	{
		Name: "ML lstm layer2", Abbrev: "lstm", TableIIIFootprint: "710 MB",
		FootprintMB: 11, Kernels: 16, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 120,
		ReadFrac: 0.72, SharedFrac: 0.60, Redundancy: 0.85, RWShared: 0.08,
		InKernelReuse: 2, CrossKernelReuse: 0.85, GapMean: 3, Seed: 114,
	},
	{
		Name: "ML RNN layer4 FW", Abbrev: "RNN_FW", TableIIIFootprint: "40 MB",
		FootprintMB: 1, Kernels: 16, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 120,
		ReadFrac: 0.75, SharedFrac: 0.65, Redundancy: 0.88, RWShared: 0.05,
		InKernelReuse: 2, CrossKernelReuse: 0.90, GapMean: 3, Seed: 115,
	},
	{
		Name: "ML RNN layer4 DGRAD", Abbrev: "RNN_DGRAD", TableIIIFootprint: "29 MB",
		FootprintMB: 1, Kernels: 12, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 120,
		ReadFrac: 0.78, SharedFrac: 0.70, Redundancy: 0.85, RWShared: 0.02,
		InKernelReuse: 10, CrossKernelReuse: 0.90, GapMean: 3, Seed: 116,
	},
	{
		Name: "ML GoogLeNet conv2", Abbrev: "GoogLeNet", TableIIIFootprint: "1.15 GB",
		FootprintMB: 18, Kernels: 12, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 120,
		ReadFrac: 0.75, SharedFrac: 0.55, Redundancy: 0.82, RWShared: 0.05,
		InKernelReuse: 2, CrossKernelReuse: 0.80, GapMean: 2, Seed: 117,
	},
	{
		Name: "Lonestar bfs-road-fla", Abbrev: "bfs", TableIIIFootprint: "26 MB",
		FootprintMB: 1, Kernels: 16, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 120,
		ReadFrac: 0.65, SharedFrac: 0.40, Redundancy: 0.60, RWShared: 0.20,
		InKernelReuse: 2, CrossKernelReuse: 0.70, FalseSharing: true, GapMean: 4, Seed: 118,
	},
	{
		Name: "HPC snap", Abbrev: "snap", TableIIIFootprint: "3.44 GB",
		FootprintMB: 48, Kernels: 8, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 120,
		ReadFrac: 0.72, SharedFrac: 0.55, Redundancy: 0.78, RWShared: 0.06,
		InKernelReuse: 2, CrossKernelReuse: 0.75, GapMean: 2, Seed: 119,
	},
	{
		Name: "ML RNN layer4 WGRAD", Abbrev: "RNN_WGRAD", TableIIIFootprint: "38 MB",
		FootprintMB: 1, Kernels: 24, CTAsPerGPM: 8, WarpsPerCTA: 2, OpsPerWarp: 100,
		ReadFrac: 0.75, SharedFrac: 0.75, Redundancy: 0.92, RWShared: 0.04,
		InKernelReuse: 1, CrossKernelReuse: 1.00, GapMean: 2, Seed: 120,
	},
}

// Suite returns the Table III benchmark parameter sets in the paper's
// figure order.
func Suite() []Params {
	out := make([]Params, len(suite))
	copy(out, suite)
	return out
}

// Names returns the benchmark abbreviations in figure order.
func Names() []string {
	var out []string
	for _, p := range suite {
		out = append(out, p.Abbrev)
	}
	return out
}

// Get returns a benchmark's parameters by abbreviation.
func Get(abbrev string) (Params, error) {
	for _, p := range suite {
		if p.Abbrev == abbrev {
			return p, nil
		}
	}
	var known []string
	for _, p := range suite {
		known = append(known, p.Abbrev)
	}
	sort.Strings(known)
	return Params{}, fmt.Errorf("workload: unknown benchmark %q (known: %v)", abbrev, known)
}
