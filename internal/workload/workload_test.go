package workload

import (
	"bytes"
	"testing"

	"hmg/internal/topo"
	"hmg/internal/trace"
)

func expTopo() topo.Topology {
	return topo.Topology{NumGPUs: 4, GPMsPerGPU: 4, SMsPerGPM: 8, LineSize: 128, PageSize: 64 * 1024}
}

func TestSuiteComplete(t *testing.T) {
	if len(Suite()) != 20 {
		t.Fatalf("suite has %d benchmarks, want the 20 of Table III", len(Suite()))
	}
	want := map[string]bool{
		"cuSolver": true, "CoMD": true, "HPGMG": true, "MiniAMR": true,
		"MiniContact": true, "namd2.10": true, "Nekbone": true, "snap": true,
		"bfs": true, "mst": true, "AlexNet": true, "GoogLeNet": true,
		"lstm": true, "overfeat": true, "resnet": true, "RNN_DGRAD": true,
		"RNN_FW": true, "RNN_WGRAD": true, "nw-16K": true, "pathfinder": true,
	}
	for _, n := range Names() {
		if !want[n] {
			t.Errorf("unexpected benchmark %q", n)
		}
		delete(want, n)
	}
	for n := range want {
		t.Errorf("missing Table III benchmark %q", n)
	}
}

func TestAllParamsValid(t *testing.T) {
	for _, p := range Suite() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Abbrev, err)
		}
	}
}

func TestGet(t *testing.T) {
	p, err := Get("mst")
	if err != nil {
		t.Fatal(err)
	}
	if !p.FalseSharing {
		t.Error("mst must model false sharing (paper §VII-A)")
	}
	if p.SyncScope != trace.ScopeGPU {
		t.Error("mst must use .gpu-scoped synchronization (paper §VI)")
	}
	if _, err := Get("nosuch"); err == nil {
		t.Error("Get accepted unknown benchmark")
	}
}

func TestExplicitScopedSyncBenchmarks(t *testing.T) {
	// The paper names cuSolver, namd2.10, and mst as explicit .gpu-scope
	// synchronizers.
	for _, n := range []string{"cuSolver", "namd2.10", "mst"} {
		p, err := Get(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.SyncScope != trace.ScopeGPU {
			t.Errorf("%s: SyncScope = %v, want .gpu", n, p.SyncScope)
		}
	}
}

func TestGenerateValidates(t *testing.T) {
	tt := expTopo()
	for _, p := range Suite() {
		tr := p.Generate(tt, 0.1)
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: generated invalid trace: %v", p.Abbrev, err)
		}
		if tr.Ops() == 0 {
			t.Errorf("%s: empty trace", p.Abbrev)
		}
		if len(tr.Placement) == 0 {
			t.Errorf("%s: no placement hints", p.Abbrev)
		}
		if len(tr.Kernels) != p.Kernels {
			t.Errorf("%s: %d kernels, want %d", p.Abbrev, len(tr.Kernels), p.Kernels)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := Get("lstm")
	tt := expTopo()
	a := p.Generate(tt, 0.1)
	b := p.Generate(tt, 0.1)
	var ba, bb bytes.Buffer
	if err := trace.Encode(&ba, a); err != nil {
		t.Fatal(err)
	}
	if err := trace.Encode(&bb, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Fatal("generation is not deterministic")
	}
}

func TestScaleShrinksOps(t *testing.T) {
	p, _ := Get("snap")
	tt := expTopo()
	full := p.Generate(tt, 1.0).Ops()
	small := p.Generate(tt, 0.25).Ops()
	if small >= full {
		t.Fatalf("scale 0.25 ops (%d) not fewer than full (%d)", small, full)
	}
}

func TestCrossKernelReuse(t *testing.T) {
	// Kernels of one benchmark touch the same working set: the address
	// sets of kernel 0 and kernel 1 overlap heavily.
	p, _ := Get("nw-16K")
	tt := expTopo()
	tr := p.Generate(tt, 0.2)
	addrs := func(k int) map[topo.Addr]bool {
		m := map[topo.Addr]bool{}
		for _, c := range tr.Kernels[k].CTAs {
			for _, w := range c.Warps {
				for _, op := range w.Ops {
					m[op.Addr] = true
				}
			}
		}
		return m
	}
	a0, a1 := addrs(0), addrs(1)
	common := 0
	for a := range a1 {
		if a0[a] {
			common++
		}
	}
	if frac := float64(common) / float64(len(a1)); frac < 0.7 {
		t.Fatalf("cross-kernel address overlap = %.2f, want >= 0.7 (CrossKernelReuse 0.9)", frac)
	}
}

// TestCrossKernelFreshness: a bulk-synchronous benchmark with low
// CrossKernelReuse touches mostly fresh data each kernel.
func TestCrossKernelFreshness(t *testing.T) {
	p, _ := Get("pathfinder")
	p.CrossKernelReuse = 0.2 // force a mostly-fresh variant
	tt := expTopo()
	tr := p.Generate(tt, 0.2)
	addrs := func(k int) map[topo.Addr]bool {
		m := map[topo.Addr]bool{}
		for _, c := range tr.Kernels[k].CTAs {
			for _, w := range c.Warps {
				for _, op := range w.Ops {
					m[op.Addr] = true
				}
			}
		}
		return m
	}
	a0, a1 := addrs(0), addrs(1)
	common := 0
	for a := range a1 {
		if a0[a] {
			common++
		}
	}
	hi := float64(common) / float64(len(a1))
	// Compare against a high-reuse benchmark: pathfinder must overlap
	// substantially less than nw-16K.
	if hi > 0.6 {
		t.Fatalf("pathfinder cross-kernel overlap = %.2f, want < 0.6", hi)
	}
}

func TestRedundancyTracksParameter(t *testing.T) {
	// Fig. 3: benchmarks with higher Redundancy parameters must show
	// higher measured inter-GPU load redundancy.
	tt := expTopo()
	measure := func(name string) float64 {
		p, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		return InterGPURedundancy(p.Generate(tt, 0.2), tt)
	}
	hi := measure("MiniAMR")  // Redundancy 0.97
	lo := measure("namd2.10") // Redundancy 0.45
	if hi <= lo {
		t.Fatalf("MiniAMR redundancy (%.2f) not above namd2.10 (%.2f)", hi, lo)
	}
	if hi < 0.5 {
		t.Fatalf("MiniAMR measured redundancy %.2f unreasonably low", hi)
	}
}

func TestSyncOpsPresent(t *testing.T) {
	tt := expTopo()
	p, _ := Get("cuSolver")
	st := Summarize(p.Generate(tt, 0.3), tt)
	if st.Syncs == 0 {
		t.Fatal("cuSolver generated no synchronization ops")
	}
	p2, _ := Get("overfeat")
	st2 := Summarize(p2.Generate(tt, 0.3), tt)
	if st2.Syncs != 0 {
		t.Fatal("overfeat (bulk-synchronous) generated sync ops")
	}
}

func TestStoresRespectReadFrac(t *testing.T) {
	tt := expTopo()
	for _, name := range []string{"mst", "overfeat"} {
		p, _ := Get(name)
		st := Summarize(p.Generate(tt, 0.3), tt)
		frac := float64(st.Stores) / float64(st.Loads+st.Stores)
		if frac <= 0 || frac >= 0.6 {
			t.Errorf("%s: store fraction %.2f implausible", name, frac)
		}
	}
}

func TestFalseSharingWritesDisjointWords(t *testing.T) {
	tt := expTopo()
	p, _ := Get("bfs")
	tr := p.Generate(tt, 0.2)
	// Find a line written by two different GPMs at different words.
	type writer struct{ gpms, words map[uint64]bool }
	byLine := map[topo.Line]*writer{}
	forEachOp(tr, tt, func(g topo.GPMID, op trace.Op) {
		if op.Kind != trace.Store {
			return
		}
		l := tt.LineOf(op.Addr)
		w := byLine[l]
		if w == nil {
			w = &writer{map[uint64]bool{}, map[uint64]bool{}}
			byLine[l] = w
		}
		w.gpms[uint64(g)] = true
		w.words[uint64(op.Addr)%128/4] = true
	})
	found := false
	for _, w := range byLine {
		if len(w.gpms) >= 2 && len(w.words) >= 2 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no multi-GPM multi-word (false-shared) line found in bfs")
	}
}

func TestInterGPURedundancyEdgeCases(t *testing.T) {
	tt := expTopo()
	// A trace with no inter-GPU loads yields 0.
	tr := &trace.Trace{Name: "local", Kernels: []trace.Kernel{{CTAs: []trace.CTA{
		{Warps: []trace.Warp{{Ops: []trace.Op{{Kind: trace.Load, Addr: 0}}}}},
	}}}}
	if got := InterGPURedundancy(tr, tt); got != 0 {
		t.Fatalf("redundancy of local-only trace = %v", got)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	good, _ := Get("lstm")
	cases := []func(*Params){
		func(p *Params) { p.Name = "" },
		func(p *Params) { p.FootprintMB = 0 },
		func(p *Params) { p.Kernels = 0 },
		func(p *Params) { p.ReadFrac = 1.5 },
		func(p *Params) { p.Redundancy = -0.1 },
		func(p *Params) { p.SyncScope = trace.ScopeGPU; p.SyncEvery = 0 },
	}
	for i, mut := range cases {
		p := good
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}

func TestGeneratePanicsOnBadScale(t *testing.T) {
	p, _ := Get("lstm")
	defer func() {
		if recover() == nil {
			t.Error("Generate with scale 0 did not panic")
		}
	}()
	p.Generate(expTopo(), 0)
}
