// Package workload synthesizes traces for the twenty Table III
// benchmarks of the paper (plus calibration microbenchmarks). The
// authors' proprietary traces are unavailable, so each benchmark is
// modeled by the protocol-visible properties that differentiate the
// coherence configurations:
//
//   - footprint and read/write mix,
//   - the fraction of accesses to data shared across GPMs/GPUs,
//   - the intra-GPU redundancy of remote accesses (paper Fig. 3): how
//     often sibling GPMs of one GPU touch the same remote lines,
//   - the amount of read-write sharing (invalidation pressure),
//   - reuse within a kernel versus across dependent kernel launches
//     (software coherence loses cross-kernel reuse to bulk
//     invalidation; hardware coherence keeps it),
//   - explicit .gpu/.sys-scoped synchronization and atomics,
//   - false sharing at directory-entry granularity (graph workloads).
//
// Generators are deterministic for a given seed and scale.
package workload

import (
	"fmt"
	"math/rand"

	"hmg/internal/topo"
	"hmg/internal/trace"
)

// Params describes one synthetic workload.
type Params struct {
	Name   string
	Abbrev string

	// FootprintMB is the scaled memory footprint in MiB (the Table III
	// footprints scaled down ~64× to match scaled trace lengths).
	FootprintMB float64
	// TableIIIFootprint records the paper's original footprint, for
	// documentation.
	TableIIIFootprint string

	// Kernels is the number of dependent kernel launches.
	Kernels int
	// CTAsPerGPM × total GPMs gives the CTA count per kernel.
	CTAsPerGPM  int
	WarpsPerCTA int
	OpsPerWarp  int

	// ReadFrac is the fraction of data ops that are loads.
	ReadFrac float64
	// SharedFrac is the fraction of accesses targeting the globally
	// shared region (the rest are CTA-private).
	SharedFrac float64
	// Redundancy is the probability that a shared access draws from the
	// hot subset common to all GPMs — this directly produces the Fig. 3
	// intra-GPU redundancy of inter-GPU loads.
	Redundancy float64
	// RWShared is the probability that a store is allowed to target
	// shared data (read-write sharing; drives invalidations).
	RWShared float64
	// InKernelReuse is how many times each warp re-walks its working set
	// within one kernel (reuse every protocol can exploit).
	InKernelReuse int
	// CrossKernelReuse is the fraction of the working set shared with the
	// previous kernel: dependent RNN-style kernels re-read the same data
	// (1.0, reuse only hardware coherence retains across the implicit
	// kernel-boundary invalidations), while bulk-synchronous kernels walk
	// mostly fresh data (low values make software and hardware coherence
	// perform alike, as in the paper's left-half benchmarks).
	CrossKernelReuse float64
	// SyncScope, when not ScopeNone, inserts an acquire/release pair
	// every SyncEvery ops at that scope.
	SyncScope trace.Scope
	SyncEvery int
	// AtomicFrac is the probability a sync point uses an atomic RMW
	// instead of the acquire/release pair.
	AtomicFrac float64
	// FalseSharing makes shared stores stride at word granularity within
	// a small set of lines so distinct GPMs write disjoint words of the
	// same directory regions (the graph-workload pathology).
	FalseSharing bool
	// GapMean is the mean compute gap between memory ops, in cycles.
	GapMean int

	Seed int64
}

// Validate reports whether the parameters are generatable.
func (p Params) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: empty name")
	case p.FootprintMB <= 0:
		return fmt.Errorf("workload %s: FootprintMB %v", p.Name, p.FootprintMB)
	case p.Kernels <= 0 || p.CTAsPerGPM <= 0 || p.WarpsPerCTA <= 0 || p.OpsPerWarp <= 0:
		return fmt.Errorf("workload %s: non-positive shape", p.Name)
	case p.ReadFrac < 0 || p.ReadFrac > 1 || p.SharedFrac < 0 || p.SharedFrac > 1:
		return fmt.Errorf("workload %s: fraction out of range", p.Name)
	case p.Redundancy < 0 || p.Redundancy > 1 || p.RWShared < 0 || p.RWShared > 1:
		return fmt.Errorf("workload %s: fraction out of range", p.Name)
	case p.SyncScope != trace.ScopeNone && p.SyncEvery <= 0:
		return fmt.Errorf("workload %s: SyncScope without SyncEvery", p.Name)
	case p.CrossKernelReuse < 0 || p.CrossKernelReuse > 1:
		return fmt.Errorf("workload %s: CrossKernelReuse out of range", p.Name)
	}
	return nil
}

const lineBytes = 128

// layout captures the generated address-space arrangement:
//
//	[ per-CTA private chunks | per-GPU shared tiles | per-GPM shared
//	  slices | global read-write hot lines | sync flags ]
//
// Tiles are walked by every GPM of their GPU (the Fig. 3 redundancy a
// GPU home node can coalesce); slices are walked by a single GPM but
// still live on remote pages; the RW-hot lines are written by all GPMs
// (false sharing); pages of the whole shared area are distributed
// round-robin across all GPMs, reproducing the ownership spread a
// first-touch run of the original multi-kernel application produces.
type layout struct {
	privPerCTA int64 // bytes of private data per CTA
	tileBase   int64
	tileBytes  int64 // per GPU (whole span across sliding windows)
	tileLines  int64 // window size walked within one kernel
	tileSlide  int64 // lines the window advances per kernel
	sliceBase  int64
	sliceBytes int64 // per GPM (whole span)
	sliceLines int64 // window size
	sliceSlide int64
	rwBase     int64
	rwLines    int64
	syncBase   int64
	numGPUs    int
	totalGPMs  int
	gpmsPerGPU int
}

// alignLine rounds up to a whole number of cache lines.
func alignLine(b int64) int64 {
	if b < lineBytes {
		return lineBytes
	}
	return (b + lineBytes - 1) / lineBytes * lineBytes
}

func clampLines(v, lo int64) int64 {
	if v < lo {
		return lo
	}
	return v
}

// layoutFor arranges the address space. The tile and slice working sets
// are sized from the expected shared-draw counts so that tiles see ~2
// draws per line per kernel (sibling overlap) at any scale.
func (p Params) layoutFor(t topo.Topology, numCTAs, setSize int) layout {
	slideFrac := 1 - p.CrossKernelReuse
	l := layout{
		numGPUs:    t.NumGPUs,
		totalGPMs:  t.TotalGPMs(),
		gpmsPerGPU: t.GPMsPerGPU,
	}
	foot := int64(p.FootprintMB * (1 << 20))
	l.privPerCTA = alignLine(int64(float64(foot) * (1 - p.SharedFrac) / float64(numCTAs)))

	warpsPerGPU := float64(p.CTAsPerGPM * t.GPMsPerGPU * p.WarpsPerCTA)
	tileDraws := warpsPerGPU * float64(setSize) * p.SharedFrac * p.Redundancy
	// The tile is capped at ~1.5 of a (scaled) 3MB L2 slice: big enough
	// that one GPM's slice thrashes, small enough that a GPU's four
	// slices hold it — the regime where hierarchical caching pays.
	tileLines := clampLines(int64(tileDraws/2), 64)
	if tileLines > 640 {
		tileLines = 640
	}
	sliceDraws := float64(p.CTAsPerGPM*p.WarpsPerCTA*setSize) * p.SharedFrac * (1 - p.Redundancy)
	sliceLines := clampLines(int64(sliceDraws/2), 16)
	if sliceLines > 64 {
		sliceLines = 64
	}

	l.tileLines = tileLines
	l.tileSlide = int64(slideFrac * float64(tileLines))
	l.sliceLines = sliceLines
	l.sliceSlide = int64(slideFrac * float64(sliceLines))

	tileSpan := tileLines + l.tileSlide*int64(p.Kernels-1)
	sliceSpan := sliceLines + l.sliceSlide*int64(p.Kernels-1)
	l.tileBase = l.privPerCTA * int64(numCTAs)
	l.tileBytes = tileSpan * lineBytes
	l.sliceBase = l.tileBase + int64(t.NumGPUs)*l.tileBytes
	l.sliceBytes = sliceSpan * lineBytes
	l.rwBase = l.sliceBase + int64(t.TotalGPMs())*l.sliceBytes
	l.rwLines = 256
	l.syncBase = l.rwBase + l.rwLines*lineBytes
	return l
}

// Generate synthesizes the trace for a system topology. scale ∈ (0, 1]
// shrinks the op count (for sensitivity sweeps and unit tests); 1 is the
// full scaled workload.
func (p Params) Generate(t topo.Topology, scale float64) *trace.Trace {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("workload %s: scale %v out of (0,1]", p.Name, scale))
	}
	numCTAs := p.CTAsPerGPM * t.TotalGPMs()
	opsPerWarp := int(float64(p.OpsPerWarp) * scale)
	if opsPerWarp < 8 {
		opsPerWarp = 8
	}
	setSize := setSizeFor(p, opsPerWarp)
	l := p.layoutFor(t, numCTAs, setSize)
	// Synchronization cadence scales with the trace so scaled-down runs
	// keep the workload's sync-to-compute ratio.
	syncEvery := p.SyncEvery
	if p.SyncScope != trace.ScopeNone {
		syncEvery = int(float64(p.SyncEvery) * scale)
		if syncEvery < 16 {
			syncEvery = 16
		}
	}
	tr := &trace.Trace{
		Name:           p.Abbrev,
		FootprintBytes: l.syncBase + int64(t.NumGPUs+t.TotalGPMs()+1)*32*lineBytes,
	}
	p.placePages(t, tr, l, numCTAs)
	for k := 0; k < p.Kernels; k++ {
		kern := trace.Kernel{}
		for c := 0; c < numCTAs; c++ {
			cta := trace.CTA{}
			gpm := trace.AssignCTA(c, numCTAs, t.TotalGPMs())
			for w := 0; w < p.WarpsPerCTA; w++ {
				// The same seed across kernels gives each warp an
				// identical working set in every kernel: cross-kernel
				// reuse that only hardware coherence retains.
				rng := rand.New(rand.NewSource(p.Seed ^ int64(c)<<20 ^ int64(w)<<8))
				ops := p.genWarp(rng, l, c, int(gpm), w, k, opsPerWarp, syncEvery)
				cta.Warps = append(cta.Warps, trace.Warp{Ops: ops})
			}
			kern.CTAs = append(kern.CTAs, cta)
		}
		tr.Kernels = append(tr.Kernels, kern)
	}
	return tr
}

// placePages emits placement hints reproducing a first-touch run:
// private pages on their CTA's GPM, shared pages round-robin across all
// GPMs.
func (p Params) placePages(t topo.Topology, tr *trace.Trace, l layout, numCTAs int) {
	page := int64(t.PageSize)
	seen := make(map[topo.Page]bool)
	hint := func(addr int64, g topo.GPMID) {
		pg := topo.Page(addr / page)
		if !seen[pg] {
			seen[pg] = true
			tr.Placement = append(tr.Placement, trace.PlacementHint{Page: pg, GPM: g})
		}
	}
	for c := 0; c < numCTAs; c++ {
		g := trace.AssignCTA(c, numCTAs, t.TotalGPMs())
		base := int64(c) * l.privPerCTA
		for a := base; a < base+l.privPerCTA; a += page {
			hint(a, g)
		}
	}
	// Shared pages are owned by a pseudo-random GPM (hash of the page
	// number), as if scattered by the first-touch pattern of the
	// producing kernels: consecutive pages of one GPU's working set must
	// not cluster on that GPU, or the data would hardly be remote at all.
	for a := l.tileBase; a < l.syncBase+int64(t.NumGPUs+t.TotalGPMs()+1)*32*lineBytes; a += page {
		pg := uint64(a) / uint64(page)
		h := (pg*2654435761 + 0x9e3779b9) % uint64(t.TotalGPMs())
		hint(a, topo.GPMID(h))
	}
}

// setSizeFor returns the unique working-set size of a warp stream.
func setSizeFor(p Params, opsPerWarp int) int {
	setSize := opsPerWarp
	if p.InKernelReuse > 1 {
		setSize = opsPerWarp / p.InKernelReuse
		if setSize < 4 {
			setSize = 4
		}
	}
	return setSize
}

// genWarp produces one warp's op stream.
func (p Params) genWarp(rng *rand.Rand, l layout, cta, gpm, warp, kernel, opsPerWarp, syncEvery int) []trace.Op {
	var ops []trace.Op
	gpu := gpm / l.gpmsPerGPU
	privBase := int64(cta) * l.privPerCTA
	privLines := l.privPerCTA / lineBytes
	tileLines := l.tileLines
	sliceLines := l.sliceLines
	// Each kernel's window slides by (1-CrossKernelReuse) of the working
	// set, so only that fraction of last kernel's lines recur.
	tileWin := int64(kernel) * l.tileSlide
	sliceWin := int64(kernel) * l.sliceSlide
	privSlide := int64((1 - p.CrossKernelReuse) * float64(setSizeFor(p, opsPerWarp)))
	privPos := (int64(warp)*17 + int64(kernel)*privSlide) % privLines
	tilePos := rng.Int63n(tileLines)
	slicePos := rng.Int63n(sliceLines)
	// Stride the tile walk so each warp's draws spread across the whole
	// tile: every GPM then touches (a sample of) the full shared working
	// set, the redundancy pattern of Fig. 3.
	perWarpTileDraws := int64(float64(setSizeFor(p, opsPerWarp)) * p.SharedFrac * p.Redundancy)
	tileStride := int64(1)
	if perWarpTileDraws > 0 {
		tileStride = tileLines/perWarpTileDraws + 1
	}

	gap := func() uint32 {
		if p.GapMean <= 0 {
			return 0
		}
		return uint32(rng.Intn(2 * p.GapMean))
	}
	// The per-warp working set: a fixed list of draws, re-walked
	// InKernelReuse times. Drawing the set once per warp (independent of
	// the kernel index) creates cross-kernel reuse.
	setSize := setSizeFor(p, opsPerWarp)
	type slot struct {
		addr   int64
		shared bool
	}
	set := make([]slot, 0, setSize)
	for i := 0; i < setSize; i++ {
		if rng.Float64() < p.SharedFrac {
			var a int64
			if p.FalseSharing && rng.Float64() < 0.4 {
				// Graph frontiers: the false-shared hot lines are also
				// read by every GPM, so writers keep finding sharers to
				// invalidate (the Fig. 9 outlier behaviour).
				a = l.rwBase + rng.Int63n(l.rwLines)*lineBytes
			} else if rng.Float64() < p.Redundancy {
				// Sequential walk of this GPU's tile: all GPMs of the
				// GPU collectively cover (and re-cover) the same lines.
				a = l.tileBase + int64(gpu)*l.tileBytes + (tileWin+tilePos%tileLines)*lineBytes
				tilePos += tileStride
			} else {
				// Walk of this GPM's exclusive (but remotely homed) slice.
				a = l.sliceBase + int64(gpm)*l.sliceBytes + (sliceWin+slicePos%sliceLines)*lineBytes
				slicePos++
			}
			set = append(set, slot{a, true})
		} else {
			a := privBase + (privPos%privLines)*lineBytes
			privPos++
			set = append(set, slot{a, false})
		}
	}
	sinceSync := 0
	emit := 0
	for reuse := 0; emit < opsPerWarp; reuse++ {
		for i := 0; i < len(set) && emit < opsPerWarp; i++ {
			s := set[i]
			isLoad := rng.Float64() < p.ReadFrac
			if !isLoad && s.shared && rng.Float64() >= p.RWShared {
				isLoad = true // shared data is mostly read
			}
			op := trace.Op{Kind: trace.Load, Addr: topo.Addr(s.addr), Gap: gap()}
			if !isLoad {
				op.Kind = trace.Store
				op.Val = uint64(cta)<<16 | uint64(emit)
				if s.shared && p.FalseSharing {
					// Write a GPM-specific word of a globally hot line:
					// disjoint words, same directory region — pure false
					// sharing.
					op.Addr = topo.Addr(l.rwBase + rng.Int63n(l.rwLines)*lineBytes + int64(gpm%32)*4)
				} else if s.shared {
					if rng.Float64() < 0.25 {
						// True read-write sharing concentrates in a small
						// segment of the tile ("only a small percentage of
						// the memory footprint contains read-write shared
						// data").
						rwSeg := tileLines / 8
						if rwSeg < 8 {
							rwSeg = 8
						}
						rel := (s.addr-(l.tileBase+int64(gpu)*l.tileBytes))/lineBytes - tileWin
						op.Addr = topo.Addr(l.tileBase + int64(gpu)*l.tileBytes + (tileWin+rel%rwSeg)*lineBytes)
					} else {
						// Most shared-structure writes land in the GPM's
						// exclusive output slice: nobody else reads them
						// concurrently, so they trigger no invalidations.
						op.Addr = topo.Addr(l.sliceBase + int64(gpm)*l.sliceBytes + (sliceWin+slicePos%sliceLines)*lineBytes)
						slicePos++
					}
				}
			}
			ops = append(ops, op)
			emit++
			sinceSync++
			if p.SyncScope != trace.ScopeNone && sinceSync >= syncEvery {
				sinceSync = 0
				ops = append(ops, p.syncOps(rng, l, cta, gpm, gpu, warp)...)
				emit += 2
			}
		}
	}
	return ops
}

// syncOps emits one synchronization episode: either an atomic RMW on a
// shared counter or a release/acquire pair on a flag. Flags are
// partitioned per GPU: .gpu-scoped synchronization only ever involves
// threads of one GPU, so distinct GPUs must not false-share sync lines.
func (p Params) syncOps(rng *rand.Rand, l layout, cta, gpm, gpu, warp int) []trace.Op {
	// Flags are partitioned by the synchronization domain: per GPM for
	// the .gpm extension scope, per GPU otherwise, so partners never
	// span the scope they synchronize at.
	domain := gpu
	if p.SyncScope == trace.ScopeGPM {
		domain = l.numGPUs + gpm // distinct flag space per GPM
	}
	flag := l.syncBase + int64(domain*32+(cta*7+warp)%32)*lineBytes
	if rng.Float64() < p.AtomicFrac {
		return []trace.Op{
			{Kind: trace.Atomic, Scope: p.SyncScope, Addr: topo.Addr(flag), Val: 1},
			{Kind: trace.LoadAcq, Scope: p.SyncScope, Addr: topo.Addr(flag)},
		}
	}
	return []trace.Op{
		{Kind: trace.StoreRel, Scope: p.SyncScope, Addr: topo.Addr(flag), Val: uint64(cta + 1)},
		{Kind: trace.LoadAcq, Scope: p.SyncScope, Addr: topo.Addr(flag)},
	}
}
