package workload

import (
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// InterGPURedundancy computes the paper's Fig. 3 metric for a trace: the
// fraction of inter-GPU loads destined to lines that are also accessed
// by another GPM of the same GPU — the locality a hierarchical protocol
// can coalesce at the GPU home node. Placement hints determine line
// ownership; unplaced pages fall back to first-touch by trace order.
func InterGPURedundancy(tr *trace.Trace, t topo.Topology) float64 {
	owner := make(map[topo.Page]topo.GPMID)
	for _, h := range tr.Placement {
		owner[h.Page] = h.GPM
	}
	// accessedBy[line] is a bitmask of the GPMs that touch it.
	accessedBy := make(map[topo.Line]uint32)
	forEachOp(tr, t, func(gpm topo.GPMID, op trace.Op) {
		page := t.PageOf(op.Addr)
		if _, ok := owner[page]; !ok {
			owner[page] = gpm // first touch
		}
		accessedBy[t.LineOf(op.Addr)] |= 1 << uint(gpm)
	})
	var interGPULoads, redundant uint64
	forEachOp(tr, t, func(gpm topo.GPMID, op trace.Op) {
		if !op.Kind.IsLoad() {
			return
		}
		line := t.LineOf(op.Addr)
		if t.GPUOf(owner[t.PageOf(op.Addr)]) == t.GPUOf(gpm) {
			return
		}
		interGPULoads++
		gpu := t.GPUOf(gpm)
		mask := accessedBy[line]
		for local := 0; local < t.GPMsPerGPU; local++ {
			sibling := t.GPM(gpu, local)
			if sibling != gpm && mask&(1<<uint(sibling)) != 0 {
				redundant++
				break
			}
		}
	})
	if interGPULoads == 0 {
		return 0
	}
	return float64(redundant) / float64(interGPULoads)
}

// forEachOp visits every op with the GPM its CTA is scheduled on.
func forEachOp(tr *trace.Trace, t topo.Topology, fn func(topo.GPMID, trace.Op)) {
	for ki := range tr.Kernels {
		n := len(tr.Kernels[ki].CTAs)
		for ci := range tr.Kernels[ki].CTAs {
			gpm := trace.AssignCTA(ci, n, t.TotalGPMs())
			for wi := range tr.Kernels[ki].CTAs[ci].Warps {
				for _, op := range tr.Kernels[ki].CTAs[ci].Warps[wi].Ops {
					fn(gpm, op)
				}
			}
		}
	}
}

// Stats summarizes a generated trace for documentation and tests.
type Stats struct {
	Ops, Loads, Stores, Atomics int
	Syncs                       int
	FootprintBytes              int64
	Kernels                     int
}

// Summarize computes trace statistics.
func Summarize(tr *trace.Trace, t topo.Topology) Stats {
	st := Stats{FootprintBytes: tr.FootprintBytes, Kernels: len(tr.Kernels)}
	forEachOp(tr, t, func(_ topo.GPMID, op trace.Op) {
		st.Ops++
		switch op.Kind {
		case trace.Load:
			st.Loads++
		case trace.Store:
			st.Stores++
		case trace.Atomic:
			st.Atomics++
			st.Syncs++
		case trace.LoadAcq, trace.StoreRel:
			st.Syncs++
		}
	})
	return st
}
