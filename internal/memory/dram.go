// Package memory models the per-GPM DRAM partitions: a fixed access
// latency plus a bandwidth-limited service queue, and a sparse word-value
// store that makes the memory system functionally checkable.
package memory

import (
	"math"

	"hmg/internal/engine"
	"hmg/internal/topo"
)

// Config sizes one DRAM partition.
type Config struct {
	// BandwidthGBs is the partition's bandwidth (Table II: 1 TB/s per
	// GPU = 250 GB/s per GPM). Non-positive means infinite.
	BandwidthGBs float64
	// Latency is the access latency in cycles.
	Latency engine.Cycle
	// LineSize is the transfer granule in bytes.
	LineSize int
}

// DefaultConfig returns the Table II per-GPM partition.
func DefaultConfig() Config { return Config{BandwidthGBs: 250, Latency: 250, LineSize: 128} }

// Stats counts DRAM events.
type Stats struct {
	Reads, Writes uint64
	Bytes         uint64
}

// DRAM is one GPM's memory partition.
type DRAM struct {
	eng           *engine.Engine
	cfg           Config
	bytesPerCycle float64
	nextFree      float64 // fractional, to avoid per-access quantization

	// values holds the authoritative word values, keyed by global word
	// index (addr / WordSize). Nil map entries mean "never written"
	// (reads return 0).
	values map[uint64]uint64

	Stats Stats
}

// WordSize is the value-tracking granularity in bytes.
const WordSize = 4

// New builds a DRAM partition.
func New(eng *engine.Engine, cfg Config) *DRAM {
	d := &DRAM{eng: eng, cfg: cfg, values: make(map[uint64]uint64)}
	if cfg.BandwidthGBs > 0 {
		d.bytesPerCycle = cfg.BandwidthGBs * 1e9 / eng.FrequencyHz()
	}
	return d
}

// Config returns the partition's configuration.
func (d *DRAM) Config() Config { return d.cfg }

func (d *DRAM) occupy(bytes int) engine.Cycle {
	now := float64(d.eng.Now())
	depart := now
	if d.nextFree > depart {
		depart = d.nextFree
	}
	var ser float64
	if d.bytesPerCycle > 0 {
		ser = float64(bytes) / d.bytesPerCycle
	}
	d.nextFree = depart + ser
	d.Stats.Bytes += uint64(bytes)
	return engine.Cycle(math.Ceil(d.nextFree)) + d.cfg.Latency
}

// Read fetches a line, invoking done when the data is available.
func (d *DRAM) Read(l topo.Line, done func()) {
	d.Stats.Reads++
	d.eng.ScheduleAt(d.occupy(d.cfg.LineSize), done)
}

// Write stores write-through data of the given size, invoking done (which
// may be nil) when the write has been accepted by the partition.
func (d *DRAM) Write(bytes int, done func()) {
	d.Stats.Writes++
	at := d.occupy(bytes)
	if done != nil {
		d.eng.ScheduleAt(at, done)
	}
}

// wordIndex returns the global word index of an address.
func wordIndex(a topo.Addr) uint64 { return uint64(a) / WordSize }

// StoreValue records the authoritative value of the word at a. It is a
// functional (zero-time) operation; timing comes from Write.
func (d *DRAM) StoreValue(a topo.Addr, v uint64) { d.values[wordIndex(a)] = v }

// LoadValue returns the authoritative value of the word at a (0 if never
// written).
func (d *DRAM) LoadValue(a topo.Addr) uint64 { return d.values[wordIndex(a)] }

// LineValues returns the tracked words of line l as line-relative word
// index → value, for installing into cache entries on fills. Returns nil
// when no word of the line was ever written.
//
//lint:allow hotalloc value-tracking snapshot map; runs only on TrackValues configurations
func (d *DRAM) LineValues(l topo.Line) map[uint16]uint64 {
	base := wordIndex(topo.Addr(uint64(l) * uint64(d.cfg.LineSize)))
	words := uint64(d.cfg.LineSize / WordSize)
	var out map[uint16]uint64
	for w := uint64(0); w < words; w++ {
		if v, ok := d.values[base+w]; ok {
			if out == nil {
				out = make(map[uint16]uint64, 4)
			}
			out[uint16(w)] = v
		}
	}
	return out
}
