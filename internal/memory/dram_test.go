package memory

import (
	"testing"

	"hmg/internal/engine"
)

func TestReadLatency(t *testing.T) {
	e := engine.New(1.3e9)
	d := New(e, Config{BandwidthGBs: 0, Latency: 250, LineSize: 128})
	var at engine.Cycle
	d.Read(0, func() { at = e.Now() })
	e.Drain()
	if at != 250 {
		t.Fatalf("read completed at %d, want 250", at)
	}
	if d.Stats.Reads != 1 || d.Stats.Bytes != 128 {
		t.Fatalf("stats = %+v", d.Stats)
	}
}

func TestBandwidthQueueing(t *testing.T) {
	e := engine.New(1.3e9)
	// 130 GB/s = 100 B/cyc; a 128B line occupies 2 cycles.
	d := New(e, Config{BandwidthGBs: 130, Latency: 10, LineSize: 128})
	var times []engine.Cycle
	for i := 0; i < 3; i++ {
		d.Read(0, func() { times = append(times, e.Now()) })
	}
	e.Drain()
	// 1.28 cycles of serialization per line, accumulated fractionally.
	want := []engine.Cycle{12, 13, 14}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("read %d at %d, want %d (FIFO bandwidth queue)", i, times[i], want[i])
		}
	}
}

func TestWriteNilDone(t *testing.T) {
	e := engine.New(1.3e9)
	d := New(e, DefaultConfig())
	d.Write(32, nil) // must not panic
	e.Drain()
	if d.Stats.Writes != 1 {
		t.Fatalf("Writes = %d", d.Stats.Writes)
	}
}

func TestWriteDone(t *testing.T) {
	e := engine.New(1.3e9)
	d := New(e, Config{BandwidthGBs: 0, Latency: 5, LineSize: 128})
	var at engine.Cycle
	d.Write(32, func() { at = e.Now() })
	e.Drain()
	if at != 5 {
		t.Fatalf("write done at %d, want 5", at)
	}
}

func TestValueStore(t *testing.T) {
	e := engine.New(0)
	d := New(e, DefaultConfig())
	if d.LoadValue(64) != 0 {
		t.Fatal("unwritten word not zero")
	}
	d.StoreValue(64, 42)
	d.StoreValue(68, 43)
	if d.LoadValue(64) != 42 || d.LoadValue(68) != 43 {
		t.Fatal("StoreValue/LoadValue mismatch")
	}
	// Overwrite.
	d.StoreValue(64, 99)
	if d.LoadValue(64) != 99 {
		t.Fatal("overwrite failed")
	}
}

func TestLineValues(t *testing.T) {
	e := engine.New(0)
	d := New(e, DefaultConfig())
	if d.LineValues(1) != nil {
		t.Fatal("LineValues non-nil for untouched line")
	}
	// Line 1 covers bytes 128..255; words 32..63 globally.
	d.StoreValue(128, 7)  // word 0 of line 1
	d.StoreValue(132, 8)  // word 1 of line 1
	d.StoreValue(256, 99) // line 2, must not appear
	vals := d.LineValues(1)
	if len(vals) != 2 || vals[0] != 7 || vals[1] != 8 {
		t.Fatalf("LineValues = %v", vals)
	}
}
