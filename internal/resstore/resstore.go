// Package resstore is the on-disk content-addressed result store
// behind the experiment campaign's second memo tier: simulation results
// keyed by a SHA-256 digest of their canonicalized run specification
// and a model-version stamp, so re-running a 21-figure campaign after a
// one-figure change only simulates the delta — across processes and
// machines, not just within one run. Byte-identical determinism (the
// simulator produces the same Results for the same spec everywhere) is
// what makes cached records safely shareable.
//
// Records are self-verifying: a fixed magic, the store's model-version
// stamp, the payload length, and a SHA-256 payload digest precede the
// gsim.Results binary encoding. A record that is missing, truncated,
// corrupted, stamped with a stale model version, or undecodable is a
// cache miss — the caller re-simulates; a damaged store can cost time
// but never a wrong figure. Writes go through a temp file and rename,
// so concurrent writers (or a crash mid-write) leave either the old
// record or the new one, never a torn file.
//
// Layout: records fan out two levels deep by digest prefix
// (root/ab/cd/abcd….res), keeping directories small at campaign scale.
package resstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Key is the content address of one simulation run.
type Key [sha256.Size]byte

// String renders the key as lowercase hex, the record's file basename.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// SumKey hashes an ordered list of canonical string parts into a Key.
// Each part is length-prefixed, so no two distinct part lists collide
// by concatenation.
func SumKey(parts ...string) Key {
	h := sha256.New()
	var n [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
		h.Write(n[:])
		io.WriteString(h, p)
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// magic opens every record file; the trailing byte is the record format
// version.
var magic = [8]byte{'H', 'M', 'G', 'R', 'E', 'S', 0, 1}

// Ext is the record file extension (tooling that corrupts or garbage-
// collects entries globs on it).
const Ext = ".res"

// Store is an on-disk result store rooted at one directory. All
// methods are safe for concurrent use by any number of processes.
type Store struct {
	root    string
	version string
}

// Open returns a store rooted at dir, creating it if needed. version
// is the model-version stamp: records written by a store with a
// different stamp are treated as misses (the simulated model changed,
// so their payloads describe a machine that no longer exists).
func Open(dir, version string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("resstore: empty store directory")
	}
	if version == "" {
		return nil, fmt.Errorf("resstore: empty model-version stamp")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("resstore: %w", err)
	}
	return &Store{root: dir, version: version}, nil
}

// Version returns the model-version stamp the store was opened with.
func (s *Store) Version() string { return s.version }

// Path returns where a key's record lives (whether or not it exists).
func (s *Store) Path(k Key) string {
	hx := k.String()
	return filepath.Join(s.root, hx[:2], hx[2:4], hx+Ext)
}

// GetBytes reads a key's verified payload. It returns (nil, false) on
// any miss — absent, truncated, corrupt, or version-mismatched records
// are all equally untrusted and never an error: the caller's recovery
// is the same (re-simulate), and a store that could fail a campaign on
// a damaged file would be worse than no store at all.
func (s *Store) GetBytes(k Key) ([]byte, bool) {
	buf, err := os.ReadFile(s.Path(k))
	if err != nil {
		return nil, false
	}
	payload, ok := parseRecord(buf, s.version)
	return payload, ok
}

// parseRecord validates one record image and returns its payload.
func parseRecord(buf []byte, version string) ([]byte, bool) {
	if len(buf) < len(magic)+2 || !bytes.Equal(buf[:len(magic)], magic[:]) {
		return nil, false
	}
	rest := buf[len(magic):]
	vlen := int(binary.LittleEndian.Uint16(rest))
	rest = rest[2:]
	if len(rest) < vlen || string(rest[:vlen]) != version {
		return nil, false
	}
	rest = rest[vlen:]
	if len(rest) < 8+sha256.Size {
		return nil, false
	}
	plen := binary.LittleEndian.Uint64(rest)
	rest = rest[8:]
	var digest [sha256.Size]byte
	copy(digest[:], rest)
	payload := rest[sha256.Size:]
	if uint64(len(payload)) != plen || sha256.Sum256(payload) != digest {
		return nil, false
	}
	return payload, true
}

// PutBytes writes a payload under a key, replacing any existing record.
// The write is atomic (temp file + rename): readers see the old record
// or the new one, never a partial file.
func (s *Store) PutBytes(k Key, payload []byte) error {
	if len(s.version) > 1<<16-1 {
		return fmt.Errorf("resstore: model-version stamp longer than 64KiB")
	}
	path := s.Path(k)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("resstore: %w", err)
	}
	rec := make([]byte, 0, len(magic)+2+len(s.version)+8+sha256.Size+len(payload))
	rec = append(rec, magic[:]...)
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(s.version)))
	rec = append(rec, s.version...)
	rec = binary.LittleEndian.AppendUint64(rec, uint64(len(payload)))
	digest := sha256.Sum256(payload)
	rec = append(rec, digest[:]...)
	rec = append(rec, payload...)

	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("resstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(rec); err != nil {
		tmp.Close()
		return fmt.Errorf("resstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("resstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("resstore: %w", err)
	}
	return nil
}

// Len counts the records currently on disk (verified or not); it is an
// observability helper for tests and tooling, not a hot path.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == Ext {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("resstore: %w", err)
	}
	return n, nil
}
