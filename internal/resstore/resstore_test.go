package resstore

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hmg/internal/engine"
	"hmg/internal/gsim"
	"hmg/internal/proto"
)

func testStore(t *testing.T, version string) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "store"), version)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func sampleResults() *gsim.Results {
	return &gsim.Results{
		Name:           "lstm",
		Protocol:       proto.HMG,
		Cycles:         123456,
		Seconds:        0.0125,
		Ops:            9999,
		L2Hits:         888,
		InterGPUBytes:  1 << 30,
		KernelCycles:   []engine.Cycle{100, 200, 300},
		EventsExecuted: 424242,
	}
}

func TestSumKeyDistinguishesParts(t *testing.T) {
	a := SumKey("ab", "c")
	b := SumKey("a", "bc")
	c := SumKey("abc")
	if a == b || a == c || b == c {
		t.Fatalf("length-prefixed hashing collided: %v %v %v", a, b, c)
	}
	if SumKey("x", "y") != SumKey("x", "y") {
		t.Fatal("SumKey is not deterministic")
	}
}

func TestRoundTrip(t *testing.T) {
	s := testStore(t, "model/v1")
	k := SumKey("run1")
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on an empty store")
	}
	want := sampleResults()
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
	// Overwrite is idempotent and keys are independent.
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want 1 record", n, err)
	}
	if _, ok := s.Get(SumKey("run2")); ok {
		t.Fatal("hit on a never-written key")
	}
}

func TestPathFanOut(t *testing.T) {
	s := testStore(t, "v")
	k := SumKey("x")
	hx := k.String()
	want := filepath.Join(s.root, hx[:2], hx[2:4], hx+Ext)
	if got := s.Path(k); got != want {
		t.Fatalf("Path = %q, want %q", got, want)
	}
	if err := s.Put(k, sampleResults()); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("record not at fan-out path: %v", err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(want))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left after Put", e.Name())
		}
	}
}

// damage writes a mutated copy of the record and asserts Get misses
// without panicking; then restores, proving the miss was the damage.
func damage(t *testing.T, s *Store, k Key, what string, mutate func([]byte) []byte) {
	t.Helper()
	path := s.Path(k)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(append([]byte(nil), orig...)), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatalf("%s: damaged record served as a hit", what)
	}
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatalf("%s: restored record misses — test harness bug", what)
	}
}

func TestCorruptionIsAMiss(t *testing.T) {
	s := testStore(t, "model/v1")
	k := SumKey("victim")
	if err := s.Put(k, sampleResults()); err != nil {
		t.Fatal(err)
	}
	damage(t, s, k, "truncated to empty", func(b []byte) []byte { return nil })
	damage(t, s, k, "truncated mid-header", func(b []byte) []byte { return b[:7] })
	damage(t, s, k, "truncated by one byte", func(b []byte) []byte { return b[:len(b)-1] })
	damage(t, s, k, "flipped payload byte", func(b []byte) []byte {
		b[len(b)-1] ^= 0xFF
		return b
	})
	damage(t, s, k, "flipped digest byte", func(b []byte) []byte {
		b[len(b)-len(sampleResultsPayload(t))-1] ^= 0xFF
		return b
	})
	damage(t, s, k, "bad magic", func(b []byte) []byte {
		b[0] = 'X'
		return b
	})
	damage(t, s, k, "appended garbage", func(b []byte) []byte { return append(b, 0xEE) })
}

func sampleResultsPayload(t *testing.T) []byte {
	t.Helper()
	p, err := sampleResults().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestTruncationSweep shears the record at every length: none may
// panic or hit.
func TestTruncationSweep(t *testing.T) {
	s := testStore(t, "v1")
	k := SumKey("sweep")
	if err := s.Put(k, sampleResults()); err != nil {
		t.Fatal(err)
	}
	path := s.Path(k)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(orig); cut++ {
		if err := os.WriteFile(path, orig[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k); ok {
			t.Fatalf("record truncated to %d/%d bytes served as a hit", cut, len(orig))
		}
	}
}

// TestStaleModelVersion: records written under one model stamp are
// misses for a store opened with another — the simulated model changed,
// so the cached figures describe a machine that no longer exists.
func TestStaleModelVersion(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store")
	v1, err := Open(dir, "model/v1")
	if err != nil {
		t.Fatal(err)
	}
	k := SumKey("run")
	if err := v1.Put(k, sampleResults()); err != nil {
		t.Fatal(err)
	}
	v2, err := Open(dir, "model/v2")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(k); ok {
		t.Fatal("v2 store trusted a v1-stamped record")
	}
	if _, ok := v1.Get(k); !ok {
		t.Fatal("v1 store misses its own record")
	}
	// The v2 store re-populates over the stale record.
	if err := v2.Put(k, sampleResults()); err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Get(k); !ok {
		t.Fatal("v2 store misses after re-populating")
	}
	if _, ok := v1.Get(k); ok {
		t.Fatal("v1 store trusted a v2-stamped record")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", "v"); err == nil {
		t.Fatal("Open accepted an empty directory")
	}
	if _, err := Open(t.TempDir(), ""); err == nil {
		t.Fatal("Open accepted an empty model-version stamp")
	}
}

// TestUndecodablePayloadIsAMiss plants a record whose framing verifies
// (digest matches) but whose payload is not a Results encoding.
func TestUndecodablePayloadIsAMiss(t *testing.T) {
	s := testStore(t, "v1")
	k := SumKey("junk")
	if err := s.PutBytes(k, []byte{0xFF, 0x00, 0x13}); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.GetBytes(k); !ok || len(got) != 3 {
		t.Fatal("byte layer should verify the junk payload")
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("undecodable payload served as a results hit")
	}
}
