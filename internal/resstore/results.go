// The typed layer: records hold gsim.Results in their versioned binary
// encoding. Decode failures are misses like any other damage — the
// payload digest already matched, so a failure here means the record
// was written by an incompatible codec (which the model-version stamp
// normally rules out) and must not be trusted.

package resstore

import (
	"fmt"

	"hmg/internal/gsim"
)

// Get reads and verifies a key's simulation results. The second return
// is false on any miss: absent, damaged, stale-stamped, or undecodable
// records all mean "re-simulate".
func (s *Store) Get(k Key) (*gsim.Results, bool) {
	payload, ok := s.GetBytes(k)
	if !ok {
		return nil, false
	}
	res, err := gsim.UnmarshalResults(payload)
	if err != nil {
		return nil, false
	}
	return res, true
}

// Put writes a run's results under its content address.
func (s *Store) Put(k Key, r *gsim.Results) error {
	payload, err := r.MarshalBinary()
	if err != nil {
		return fmt.Errorf("resstore: %w", err)
	}
	return s.PutBytes(k, payload)
}
