package link

import (
	"testing"
	"testing/quick"

	"hmg/internal/engine"
	"hmg/internal/msg"
	"hmg/internal/topo"
)

func testTopo() topo.Topology {
	return topo.Topology{NumGPUs: 2, GPMsPerGPU: 2, SMsPerGPM: 1, LineSize: 128, PageSize: 4096}
}

func TestLinkLatencyOnly(t *testing.T) {
	e := engine.New(0)
	l := NewLink(e, "test", 0, 100) // infinite bandwidth
	var at engine.Cycle
	l.Send(msg.LoadReq, 1<<20, func() { at = e.Now() })
	e.Drain()
	if at != 100 {
		t.Fatalf("delivered at %d, want 100 (no serialization on infinite link)", at)
	}
}

func TestLinkSerialization(t *testing.T) {
	e := engine.New(1.3e9)
	// 130 GB/s at 1.3 GHz = 100 bytes/cycle.
	l := NewLink(e, "test", 130, 10)
	var first, second engine.Cycle
	l.Send(msg.DataResp, 1000, func() { first = e.Now() }) // 10 ser cycles
	l.Send(msg.DataResp, 500, func() { second = e.Now() }) // queued behind
	e.Drain()
	if first != 20 { // depart 0, ser 10, +lat 10
		t.Fatalf("first delivered at %d, want 20", first)
	}
	if second != 25 { // depart 10, ser 5, +lat 10
		t.Fatalf("second delivered at %d, want 25", second)
	}
	if l.Busy != 15 {
		t.Fatalf("Busy = %d, want 15", l.Busy)
	}
	if l.Msgs != 2 {
		t.Fatalf("Msgs = %d, want 2", l.Msgs)
	}
	if got := l.Bytes[msg.DataResp]; got != 1500 {
		t.Fatalf("Bytes[DataResp] = %d, want 1500", got)
	}
	if l.TotalBytes() != 1500 {
		t.Fatalf("TotalBytes = %d", l.TotalBytes())
	}
}

func TestLinkBacklogDrains(t *testing.T) {
	e := engine.New(1.3e9)
	l := NewLink(e, "test", 130, 0) // 100 B/cyc
	delivered := 0
	for i := 0; i < 50; i++ {
		l.Send(msg.LoadReq, 100, func() { delivered++ })
	}
	end := e.Drain()
	if delivered != 50 {
		t.Fatalf("delivered %d of 50", delivered)
	}
	if end != 50 { // 50 messages × 1 cycle each, FIFO
		t.Fatalf("drained at %d, want 50", end)
	}
}

func TestLinkUtilization(t *testing.T) {
	e := engine.New(1.3e9)
	l := NewLink(e, "test", 130, 0)
	l.Send(msg.LoadReq, 500, func() {}) // 5 busy cycles
	e.Drain()
	if got := l.Utilization(10); got != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", got)
	}
	if got := l.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", got)
	}
}

func TestNetworkLocalSend(t *testing.T) {
	e := engine.New(0)
	n := NewNetwork(e, testTopo(), DefaultNetConfig())
	var at engine.Cycle
	n.Send(1, 1, msg.LoadReq, func() { at = e.Now() })
	e.Drain()
	if at != DefaultNetConfig().LocalLatency {
		t.Fatalf("local send at %d, want %d", at, DefaultNetConfig().LocalLatency)
	}
	if n.LocalMsgs != 1 {
		t.Fatalf("LocalMsgs = %d", n.LocalMsgs)
	}
	if n.InterGPUBytes()[msg.LoadReq] != 0 {
		t.Fatal("local send leaked onto inter-GPU links")
	}
}

func TestNetworkIntraGPU(t *testing.T) {
	e := engine.New(0)
	cfg := DefaultNetConfig()
	n := NewNetwork(e, testTopo(), cfg)
	var at engine.Cycle
	n.Send(0, 1, msg.LoadReq, func() { at = e.Now() }) // GPMs 0,1 share GPU 0
	e.Drain()
	if at < cfg.XbarLatency {
		t.Fatalf("intra-GPU send at %d, want >= %d", at, cfg.XbarLatency)
	}
	if n.IntraGPUMsgs[msg.LoadReq] != 1 {
		t.Fatalf("IntraGPUMsgs = %d", n.IntraGPUMsgs[msg.LoadReq])
	}
	if n.InterGPUBytes()[msg.LoadReq] != 0 {
		t.Fatal("intra-GPU send crossed GPUs")
	}
	if got := n.IntraGPUBytes()[msg.LoadReq]; got != uint64(2*cfg.Sizes.Bytes(msg.LoadReq)) {
		t.Fatalf("IntraGPUBytes = %d, want both ports charged", got)
	}
}

func TestNetworkInterGPU(t *testing.T) {
	e := engine.New(0)
	cfg := DefaultNetConfig()
	n := NewNetwork(e, testTopo(), cfg)
	var at engine.Cycle
	n.Send(0, 3, msg.DataResp, func() { at = e.Now() }) // GPU0 → GPU1
	e.Drain()
	min := cfg.XbarLatency + cfg.NVLinkLatency
	if at < min {
		t.Fatalf("inter-GPU send at %d, want >= %d", at, min)
	}
	if n.InterGPUMsgs[msg.DataResp] != 1 {
		t.Fatalf("InterGPUMsgs = %d", n.InterGPUMsgs[msg.DataResp])
	}
	want := uint64(2 * cfg.Sizes.Bytes(msg.DataResp)) // up + down
	if got := n.InterGPUBytes()[msg.DataResp]; got != want {
		t.Fatalf("InterGPUBytes = %d, want %d", got, want)
	}
}

func TestNetworkInterGPUSaturation(t *testing.T) {
	e := engine.New(1.3e9)
	cfg := DefaultNetConfig()
	cfg.NVLinkGBs = 130 // 100 B/cycle
	cfg.XbarPortGBs = 0 // infinite, isolate the NVLink
	n := NewNetwork(e, testTopo(), cfg)
	const msgs = 100
	done := 0
	for i := 0; i < msgs; i++ {
		n.Send(0, 2, msg.DataResp, func() { done++ })
	}
	end := e.Drain()
	if done != msgs {
		t.Fatalf("delivered %d of %d", done, msgs)
	}
	// 100 messages × 144 bytes at 100 B/cyc ≈ 144 cycles of serialization
	// on the uplink alone; total time must reflect that backlog.
	if end < 144 {
		t.Fatalf("saturated run finished at %d, want >= 144 (bandwidth not modeled?)", end)
	}
	// Mean over both GPUs' uplinks; only GPU0's carried traffic.
	if u := n.UpLinkUtilization(end); u <= 0.1 {
		t.Fatalf("uplink utilization %v suspiciously low under saturation", u)
	}
}

func TestNetworkMessagesArriveInOrderPerRoute(t *testing.T) {
	e := engine.New(1.3e9)
	n := NewNetwork(e, testTopo(), DefaultNetConfig())
	var order []int
	for i := 0; i < 20; i++ {
		i := i
		n.Send(0, 3, msg.LoadReq, func() { order = append(order, i) })
	}
	e.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated on fixed route: %v", order)
		}
	}
}

func TestBandwidthSweepMonotone(t *testing.T) {
	// Higher NVLink bandwidth must never slow down a fixed message load.
	prev := engine.Cycle(engine.MaxCycle)
	for _, gbs := range []float64{100, 200, 300, 400} {
		e := engine.New(1.3e9)
		cfg := DefaultNetConfig()
		cfg.NVLinkGBs = gbs
		n := NewNetwork(e, testTopo(), cfg)
		for i := 0; i < 200; i++ {
			n.Send(0, 2, msg.DataResp, func() {})
		}
		end := e.Drain()
		if end > prev {
			t.Fatalf("at %v GB/s run took %d cycles, slower than lower bandwidth (%d)", gbs, end, prev)
		}
		prev = end
	}
}

// Property: messages on one link always deliver in send order (FIFO),
// and total bytes accounting matches what was sent.
func TestLinkFIFOProperty(t *testing.T) {
	prop := func(sizes []uint16) bool {
		e := engine.New(1.3e9)
		l := NewLink(e, "p", 100, 7)
		var order []int
		var want uint64
		for i, sz := range sizes {
			i := i
			b := int(sz%2000) + 1
			want += uint64(b)
			l.Send(msg.LoadReq, b, func() { order = append(order, i) })
		}
		e.Drain()
		if len(order) != len(sizes) {
			return false
		}
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return l.TotalBytes() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
