package link

import (
	"fmt"

	"hmg/internal/engine"
	"hmg/internal/msg"
	"hmg/internal/topo"
)

// NetConfig parameterizes the system interconnect. Bandwidths are per
// direction; latencies are one-way.
type NetConfig struct {
	// XbarPortGBs is the bandwidth of each GPM's crossbar port, per
	// direction. With GPMsPerGPU ports this yields the paper's aggregate
	// inter-GPM bandwidth (2 TB/s per GPU at 4 × 500 GB/s).
	XbarPortGBs float64
	// NVLinkGBs is the per-GPU inter-GPU link bandwidth per direction
	// (200 GB/s in Table II).
	NVLinkGBs float64
	// XbarLatency is the one-way latency of an intra-GPU hop.
	XbarLatency engine.Cycle
	// NVLinkLatency is the additional one-way latency of an inter-GPU hop
	// (on top of the crossbar hops at both ends).
	NVLinkLatency engine.Cycle
	// LocalLatency is the cost of a GPM-internal L2 visit hop.
	LocalLatency engine.Cycle
	// Sizes gives the wire size of each message kind.
	Sizes msg.Sizes
}

// DefaultNetConfig returns the Table II interconnect.
func DefaultNetConfig() NetConfig {
	return NetConfig{
		XbarPortGBs:   500,
		NVLinkGBs:     200,
		XbarLatency:   45,
		NVLinkLatency: 250,
		LocalLatency:  1,
		Sizes:         msg.DefaultSizes(),
	}
}

// Network routes messages between GPMs through crossbar ports and
// inter-GPU links, modeling bandwidth at every traversed port.
type Network struct {
	eng  *engine.Engine
	topo topo.Topology
	cfg  NetConfig

	xbarOut []*Link // per GPM, onto the GPU crossbar
	xbarIn  []*Link // per GPM, from the GPU crossbar
	upLink  []*Link // per GPU, to the NVSwitch
	dnLink  []*Link // per GPU, from the NVSwitch

	// InterGPUMsgs counts messages that crossed GPUs, by kind.
	InterGPUMsgs [msg.NumKinds]uint64
	// IntraGPUMsgs counts messages between distinct GPMs of one GPU.
	IntraGPUMsgs [msg.NumKinds]uint64
	// LocalMsgs counts GPM-internal messages.
	LocalMsgs uint64
}

// NewNetwork builds the interconnect for a topology.
func NewNetwork(eng *engine.Engine, t topo.Topology, cfg NetConfig) *Network {
	n := &Network{eng: eng, topo: t, cfg: cfg}
	for g := 0; g < t.TotalGPMs(); g++ {
		n.xbarOut = append(n.xbarOut, NewLink(eng, fmt.Sprintf("xbar-out[gpm%d]", g), cfg.XbarPortGBs, cfg.XbarLatency))
		n.xbarIn = append(n.xbarIn, NewLink(eng, fmt.Sprintf("xbar-in[gpm%d]", g), cfg.XbarPortGBs, 0))
	}
	for u := 0; u < t.NumGPUs; u++ {
		n.upLink = append(n.upLink, NewLink(eng, fmt.Sprintf("nvlink-up[gpu%d]", u), cfg.NVLinkGBs, cfg.NVLinkLatency/2))
		n.dnLink = append(n.dnLink, NewLink(eng, fmt.Sprintf("nvlink-dn[gpu%d]", u), cfg.NVLinkGBs, cfg.NVLinkLatency/2))
	}
	return n
}

// Config returns the network's configuration.
func (n *Network) Config() NetConfig { return n.cfg }

// Send routes a message of kind k from one GPM to another, invoking
// deliver on arrival. Same-GPM sends take only LocalLatency and consume
// no link bandwidth.
//
//lint:allow hotalloc per-message multi-hop delivery continuations; budget gated by the hmgperf allocs/event baseline
func (n *Network) Send(from, to topo.GPMID, k msg.Kind, deliver func()) {
	bytes := n.cfg.Sizes.Bytes(k)
	switch {
	case from == to:
		n.LocalMsgs++
		n.eng.Schedule(n.cfg.LocalLatency, deliver)
	case n.topo.SameGPU(from, to):
		n.IntraGPUMsgs[k]++
		n.xbarOut[from].Send(k, bytes, func() {
			n.xbarIn[to].Send(k, bytes, deliver)
		})
	default:
		n.InterGPUMsgs[k]++
		src, dst := n.topo.GPUOf(from), n.topo.GPUOf(to)
		n.xbarOut[from].Send(k, bytes, func() {
			n.upLink[src].Send(k, bytes, func() {
				n.dnLink[dst].Send(k, bytes, func() {
					n.xbarIn[to].Send(k, bytes, deliver)
				})
			})
		})
	}
}

// InterGPUBytes returns total bytes carried over inter-GPU links (up and
// down), by kind.
func (n *Network) InterGPUBytes() [msg.NumKinds]uint64 {
	var out [msg.NumKinds]uint64
	for _, l := range n.upLink {
		for k, b := range l.Bytes {
			out[k] += b
		}
	}
	for _, l := range n.dnLink {
		for k, b := range l.Bytes {
			out[k] += b
		}
	}
	return out
}

// IntraGPUBytes returns total bytes carried over crossbar ports, by kind.
func (n *Network) IntraGPUBytes() [msg.NumKinds]uint64 {
	var out [msg.NumKinds]uint64
	for _, l := range n.xbarOut {
		for k, b := range l.Bytes {
			out[k] += b
		}
	}
	for _, l := range n.xbarIn {
		for k, b := range l.Bytes {
			out[k] += b
		}
	}
	return out
}

// UpLinkUtilization returns the mean utilization of the GPU uplinks over
// the elapsed simulated cycles.
func (n *Network) UpLinkUtilization(elapsed engine.Cycle) float64 {
	var u float64
	for _, l := range n.upLink {
		u += l.Utilization(elapsed)
	}
	return u / float64(len(n.upLink))
}
