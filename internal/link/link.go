// Package link models the bandwidth-constrained interconnects of a
// hierarchical multi-GPU system: per-GPM crossbar ports inside each GPU
// and NVSwitch-style per-GPU links between GPUs.
//
// Every Link applies a latency plus a FIFO serialization model: a message
// of B bytes occupies the link for ceil(B / bytesPerCycle) cycles, and
// messages queue behind one another. This captures the saturation
// behaviour of the inter-GPU links that drives every NUMA effect in the
// paper.
package link

import (
	"fmt"
	"math"

	"hmg/internal/engine"
	"hmg/internal/msg"
)

// Link is a unidirectional, bandwidth-limited, fixed-latency channel.
type Link struct {
	eng           *engine.Engine
	name          string
	latency       engine.Cycle
	bytesPerCycle float64
	// nextFree is fractional: serialization accumulates at byte
	// granularity so that bandwidths above one message per cycle still
	// differ (a per-message ceil would quantize every fast link to the
	// same rate).
	nextFree float64

	// Bytes is the total traffic carried, by message kind.
	Bytes [msg.NumKinds]uint64
	// Busy accumulates serialization cycles, for utilization reporting.
	Busy  engine.Cycle
	busyF float64
	// Msgs counts messages carried.
	Msgs uint64
}

// NewLink creates a link with the given bandwidth in GB/s at the engine's
// clock frequency. A non-positive bandwidth means "infinite" (pure
// latency, no serialization), used by idealized configurations.
func NewLink(eng *engine.Engine, name string, gbPerSec float64, latency engine.Cycle) *Link {
	l := &Link{eng: eng, name: name, latency: latency}
	if gbPerSec > 0 {
		l.bytesPerCycle = gbPerSec * 1e9 / eng.FrequencyHz()
	}
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// Send transmits a message of kind k and the given wire size, invoking
// deliver when the tail of the message arrives at the far end.
func (l *Link) Send(k msg.Kind, bytes int, deliver func()) {
	now := float64(l.eng.Now())
	depart := now
	if l.nextFree > depart {
		depart = l.nextFree
	}
	var ser float64
	if l.bytesPerCycle > 0 {
		ser = float64(bytes) / l.bytesPerCycle
	}
	l.nextFree = depart + ser
	l.busyF += ser
	l.Busy = engine.Cycle(l.busyF)
	l.Msgs++
	l.Bytes[k] += uint64(bytes)
	l.eng.ScheduleAt(engine.Cycle(math.Ceil(l.nextFree))+l.latency, deliver)
}

// TotalBytes returns the total traffic carried across all message kinds.
func (l *Link) TotalBytes() uint64 {
	var t uint64
	for _, b := range l.Bytes {
		t += b
	}
	return t
}

// Utilization returns the fraction of elapsed cycles the link spent
// serializing data, given the total simulated cycles.
func (l *Link) Utilization(elapsed engine.Cycle) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(l.Busy) / float64(elapsed)
}

// String implements fmt.Stringer for diagnostics.
func (l *Link) String() string {
	return fmt.Sprintf("link %s: %d msgs, %d bytes", l.name, l.Msgs, l.TotalBytes())
}
