package check

import "testing"

// FuzzLitmus is the conformance fuzzer entry point: every seed expands
// to a litmus case (CaseFromSeed), runs it on the small conformance
// machine with the invariant checker attached, and applies the oracle.
// Any failure — a forbidden outcome, a fabricated value, or an invariant
// violation — is a protocol bug (or an oracle bug; both are worth a
// crash artifact).
//
//	go test ./internal/check -fuzz=FuzzLitmus -fuzztime=30s
func FuzzLitmus(f *testing.F) {
	// The checked-in corpus (testdata/fuzz/FuzzLitmus) plus a spread of
	// seeds chosen to hit each shape, flat and hierarchical protocols,
	// synchronized and plain cases.
	for seed := uint64(0); seed < 32; seed++ {
		f.Add(seed)
	}
	f.Add(uint64(1 << 20))
	f.Add(uint64(0xdeadbeef))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		if err := CaseFromSeed(seed).Run(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestFuzzSeedsSmoke replays a deterministic slice of the seed space in
// a plain `go test` run, so the fuzzer's property gets exercised even
// when nobody passes -fuzz.
func TestFuzzSeedsSmoke(t *testing.T) {
	n := uint64(96)
	if testing.Short() {
		n = 16
	}
	for seed := uint64(0); seed < n; seed++ {
		seed := seed
		t.Run(CaseFromSeed(seed).Name(), func(t *testing.T) {
			t.Parallel()
			if err := CaseFromSeed(seed).Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
