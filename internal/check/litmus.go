package check

import (
	"fmt"

	"hmg/internal/consist"
	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// Shape selects a litmus skeleton.
type Shape uint8

const (
	// ShapeMP is message passing: store data, release flag / acquire
	// flag, load data.
	ShapeMP Shape = iota
	// ShapeSB is store buffering: each thread stores one location and
	// loads the other. Every outcome is allowed under the scoped model.
	ShapeSB
	// ShapeLB is load buffering: each thread loads one location then
	// stores the other. Both-loads-observe-stores is forbidden when the
	// loads are acquires (acquires block their warp).
	ShapeLB
	// ShapeCoRR is coherent read-read: one thread stores 1 then 2 to a
	// location; a reader's two same-scope acquires must not observe them
	// moving backwards.
	ShapeCoRR

	numShapes = 4
)

var shapeNames = [...]string{ShapeMP: "MP", ShapeSB: "SB", ShapeLB: "LB", ShapeCoRR: "CoRR"}

// String implements fmt.Stringer.
func (sh Shape) String() string {
	if int(sh) < len(shapeNames) {
		return shapeNames[sh]
	}
	return fmt.Sprintf("Shape(%d)", uint8(sh))
}

// Litmus addresses: two words on distinct lines of one page, so a single
// Home placement governs both.
const (
	addrX topo.Addr = 0x100
	addrY topo.Addr = 0x200
)

// Case is one generated litmus instance on the conformance topology
// (2 GPUs × 2 GPMs × 2 SMs, 8 CTA slots: slot/2 is the GPM, slot/4 the
// GPU).
type Case struct {
	Shape    Shape
	Protocol proto.Kind
	// Scope of the synchronizing (or would-be synchronizing) accesses.
	Scope trace.Scope
	// Sync selects release/acquire accesses; false leaves them plain,
	// turning every forbidden outcome into an allowed relaxation.
	Sync bool
	// WSlot and RSlot place the writer and reader threads (0–7).
	WSlot, RSlot int
	// Home owns the page holding both litmus addresses (0–3).
	Home topo.GPMID
	// Warmup pre-loads both addresses on the reader slot, seeding
	// potentially-stale copies in its caches.
	Warmup bool
	// Gap delays the reader thread's first op.
	Gap uint32
}

// Name renders a compact case identifier for failure messages.
func (cs Case) Name() string {
	sync := "plain"
	if cs.Sync {
		sync = "sync"
	}
	warm := ""
	if cs.Warmup {
		warm = "+warm"
	}
	return fmt.Sprintf("%v/%v/%v/%s w%d r%d h%d g%d%s",
		cs.Shape, cs.Protocol, cs.Scope, sync, cs.WSlot, cs.RSlot, int(cs.Home), cs.Gap, warm)
}

// splitmix64 is the seed expander: deterministic, well-mixed, and
// dependency-free.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CaseFromSeed expands a fuzz seed into a valid case. Synchronized
// cases give the reader a long start delay so that by the time its
// acquire executes, the writer's stores and their invalidations have
// drained — making the forbidden-outcome oracle exact rather than
// probabilistic. Unsynchronized cases use short delays to maximize the
// chance of observing (legal) staleness.
func CaseFromSeed(seed uint64) Case {
	s := seed
	scopes := []trace.Scope{trace.ScopeCTA, trace.ScopeGPM, trace.ScopeGPU, trace.ScopeSys}
	cs := Case{
		Shape:    Shape(splitmix64(&s) % numShapes),
		Protocol: proto.Kinds()[splitmix64(&s)%uint64(len(proto.Kinds()))],
		Scope:    scopes[splitmix64(&s)%uint64(len(scopes))],
		Sync:     splitmix64(&s)%2 == 0,
		WSlot:    int(splitmix64(&s) % 8),
		RSlot:    int(splitmix64(&s) % 8),
		Home:     topo.GPMID(splitmix64(&s) % 4),
		Warmup:   splitmix64(&s)%2 == 0,
	}
	if cs.Sync {
		cs.Gap = 2_000_000 + uint32(splitmix64(&s)%10_000)
	} else {
		cs.Gap = uint32(splitmix64(&s) % 8192)
	}
	return cs
}

// covered reports whether the case's scope spans both the writer and
// reader slots: .cta needs the same slot, .gpm the same module, .gpu the
// same GPU, .sys always.
func (cs Case) covered() bool {
	switch cs.Scope {
	case trace.ScopeCTA:
		return cs.WSlot == cs.RSlot
	case trace.ScopeGPM:
		return cs.WSlot/2 == cs.RSlot/2
	case trace.ScopeGPU:
		return cs.WSlot/4 == cs.RSlot/4
	default:
		return true
	}
}

// Program builds the case's litmus program. Thread 0 is the writer,
// thread 1 the reader (for SB and LB the roles are symmetric).
func (cs Case) Program() consist.Program {
	ld, st := trace.Load, trace.Store
	ldScope, stScope := trace.ScopeNone, trace.ScopeNone
	if cs.Sync {
		ld, st = trace.LoadAcq, trace.StoreRel
		ldScope, stScope = cs.Scope, cs.Scope
	}
	b := consist.New(cs.Name()).Slots(8).Home(cs.Home)
	if cs.Warmup {
		b.Warmup(cs.RSlot, addrX, addrY)
	}
	switch cs.Shape {
	case ShapeMP:
		b.Thread(cs.WSlot,
			trace.Op{Kind: trace.Store, Addr: addrX, Val: 42},
			trace.Op{Kind: st, Scope: stScope, Addr: addrY, Val: 1})
		b.Thread(cs.RSlot,
			trace.Op{Kind: ld, Scope: ldScope, Addr: addrY, Gap: cs.Gap},
			trace.Op{Kind: trace.Load, Addr: addrX})
	case ShapeSB:
		b.Thread(cs.WSlot,
			trace.Op{Kind: st, Scope: stScope, Addr: addrX, Val: 1},
			trace.Op{Kind: ld, Scope: ldScope, Addr: addrY})
		b.Thread(cs.RSlot,
			trace.Op{Kind: st, Scope: stScope, Addr: addrY, Val: 1, Gap: cs.Gap},
			trace.Op{Kind: ld, Scope: ldScope, Addr: addrX})
	case ShapeLB:
		b.Thread(cs.WSlot,
			trace.Op{Kind: ld, Scope: ldScope, Addr: addrX},
			trace.Op{Kind: trace.Store, Addr: addrY, Val: 1})
		b.Thread(cs.RSlot,
			trace.Op{Kind: ld, Scope: ldScope, Addr: addrY, Gap: cs.Gap % 4096},
			trace.Op{Kind: trace.Store, Addr: addrX, Val: 1})
	case ShapeCoRR:
		b.Thread(cs.WSlot,
			trace.Op{Kind: trace.Store, Addr: addrX, Val: 1},
			trace.Op{Kind: trace.Store, Addr: addrX, Val: 2})
		b.Thread(cs.RSlot,
			trace.Op{Kind: ld, Scope: ldScope, Addr: addrX, Gap: cs.Gap % 4096},
			trace.Op{Kind: ld, Scope: ldScope, Addr: addrX})
	}
	return b.Build()
}

// Oracle checks the run's observations against the scoped memory model:
// values must come from the program (no fabrication), and the
// shape-specific forbidden outcome must not appear when the case's
// synchronization makes it forbidden.
//
// The forbidden-outcome rules and why they are exact on this simulator:
//
//   - MP (flag==1, data==0) is forbidden iff the accesses synchronize at
//     a scope covering both threads under a coherent protocol. The
//     reader's long start delay means its acquire runs after the
//     writer's release drained (stores at their homes, invalidations
//     delivered), so no in-flight-invalidation window remains.
//   - SB: every outcome is allowed (stores are posted past loads even
//     with release/acquire pairs).
//   - LB (1, 1) is forbidden whenever both loads are acquires, under
//     every protocol including Ideal: an acquire blocks its warp, so
//     each thread's store issues only after its load's value is bound,
//     and a cycle of "my store was observed before your load bound"
//     cannot close.
//   - CoRR backwards movement (second read older than the first) is
//     forbidden for same-scope acquire pairs: both reads resolve through
//     the same monotonically-updated copy chain, and acquires block, so
//     observations are ordered.
func (cs Case) Oracle(r *consist.Result) error {
	legalX := map[uint64]bool{0: true}
	legalY := map[uint64]bool{0: true}
	switch cs.Shape {
	case ShapeMP:
		legalX[42] = true
		legalY[1] = true
	case ShapeSB, ShapeLB:
		legalX[1] = true
		legalY[1] = true
	case ShapeCoRR:
		legalX[1] = true
		legalX[2] = true
	}
	for _, o := range r.Observations() {
		legal := legalX
		if o.Op.Addr == addrY {
			legal = legalY
		}
		if !legal[o.Value] {
			return fmt.Errorf("fabricated value: thread %d op %d read %d from %#x",
				o.Thread, o.Index, o.Value, uint64(o.Op.Addr))
		}
	}
	coherent := !proto.For(cs.Protocol).NoCoherence
	switch cs.Shape {
	case ShapeSB:
		// Store buffering: every outcome is allowed under the scoped
		// model (stores are posted past loads even with release/acquire
		// pairs), so only the fabrication check above applies.
	case ShapeMP:
		flag, _ := r.Value(1, 0)
		data, okData := r.Value(1, 1)
		if cs.Sync && cs.covered() && coherent && flag == 1 && okData && data == 0 {
			return fmt.Errorf("forbidden MP outcome: flag=1 observed but data=0 (stale)")
		}
	case ShapeLB:
		r0, ok0 := r.Value(0, 0)
		r1, ok1 := r.Value(1, 0)
		if cs.Sync && ok0 && ok1 && r0 == 1 && r1 == 1 {
			return fmt.Errorf("forbidden LB outcome: both acquires observed the other thread's store")
		}
	case ShapeCoRR:
		v1, ok1 := r.Value(1, 0)
		v2, ok2 := r.Value(1, 1)
		if cs.Sync && ok1 && ok2 && v2 < v1 {
			return fmt.Errorf("forbidden CoRR outcome: reads moved backwards (%d then %d)", v1, v2)
		}
	}
	return nil
}

// Run executes the case with an attached invariant checker and applies
// the oracle. The returned error carries the case name for any oracle or
// invariant violation.
func (cs Case) Run() error { return cs.RunMutated(0) }

// RunMutated is Run with deliberate Table I transition bugs injected —
// the harness's self-test: a mutation must surface as an oracle or
// invariant violation on cases that exercise it.
func (cs Case) RunMutated(mu proto.Mutation) error {
	cfg := consist.SmallConfig(cs.Protocol)
	cfg.Mutation = mu
	var ck *Checker
	r, err := consist.Run(cfg, cs.Program(), func(sys *gsim.System) { ck = Attach(sys) })
	if err != nil {
		return fmt.Errorf("%s: %w", cs.Name(), err)
	}
	if err := cs.Oracle(r); err != nil {
		return fmt.Errorf("%s: %w", cs.Name(), err)
	}
	if err := ck.Err(); err != nil {
		return fmt.Errorf("%s: %w", cs.Name(), err)
	}
	return nil
}
