// Package check is the protocol conformance harness: a runtime invariant
// checker that hooks the simulator's event stream, and a seeded litmus
// fuzzer (litmus.go) probing the scoped memory model across all
// protocols. Both exist to catch coherence bugs — including ones
// deliberately injected through proto.Mutation — before they corrupt a
// paper figure silently.
package check

import (
	"fmt"
	"strings"

	"hmg/internal/cache"
	"hmg/internal/directory"
	"hmg/internal/engine"
	"hmg/internal/gsim"
	"hmg/internal/topo"
)

const (
	// trailLen is how many recent events each violation carries.
	trailLen = 32
	// maxViolations caps recording; a broken protocol violates invariants
	// at every boundary and unbounded recording would swamp memory.
	maxViolations = 64
)

// Violation is one invariant breach, stamped with the cycle it was
// detected at and the trail of events leading up to it.
type Violation struct {
	Cycle     engine.Cycle
	Invariant string
	Detail    string
	Trail     []gsim.Event
}

// String renders the violation with its event trail.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "@%d %s: %s", uint64(v.Cycle), v.Invariant, v.Detail)
	for _, ev := range v.Trail {
		b.WriteString("\n    ")
		b.WriteString(ev.String())
	}
	return b.String()
}

// wordKey names one tracked word: the line and the word index within it.
// Sub-word aliasing is impossible at this granularity, so the legal-value
// sets never produce false fabrication reports.
type wordKey struct {
	line topo.Line
	word uint16
}

// Checker observes a system's event stream and verifies protocol
// invariants: no load returns a value nobody stored, the system
// quiesces at kernel boundaries, cache and directory bookkeeping stays
// consistent, policies that forbid remote caching see none, and — for
// hardware protocols — every cached remote line is tracked by the
// directories that must know about it (inclusion) and agrees with the
// home memory at quiescence (value coherence).
//
// The checker is strictly read-only: it inspects caches and directories
// through Peek/ForEach only (never Lookup, which touches LRU state), so
// an attached checker cannot change any simulation outcome.
type Checker struct {
	sys *gsim.System

	legal map[wordKey]map[uint64]bool

	// dirSnaps holds per-GPM directory sharer snapshots for the duration
	// of one quiescent scan (taken with ForEach so the scan itself never
	// perturbs directory LRU state).
	dirSnaps []map[directory.Region]directory.Sharers

	ring [trailLen]gsim.Event
	seen uint64 // total events observed

	violations []Violation
	truncated  bool
}

// Attach hooks a checker into a system, chaining any previously
// installed event sink. It must be called before Run.
func Attach(sys *gsim.System) *Checker {
	c := &Checker{sys: sys, legal: make(map[wordKey]map[uint64]bool)}
	prev := sys.OnEvent
	sys.OnEvent = func(ev gsim.Event) {
		if prev != nil {
			prev(ev)
		}
		c.onEvent(ev)
	}
	return c
}

// Violations returns everything detected so far.
func (c *Checker) Violations() []Violation { return c.violations }

// Truncated reports whether violations were dropped after the cap.
func (c *Checker) Truncated() bool { return c.truncated }

// Err summarizes the violations as an error, nil if there are none.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	return fmt.Errorf("check: %d invariant violation(s), first: %s",
		len(c.violations), c.violations[0].String())
}

func (c *Checker) report(invariant, detail string) {
	if len(c.violations) >= maxViolations {
		c.truncated = true
		return
	}
	n := c.seen
	if n > trailLen {
		n = trailLen
	}
	trail := make([]gsim.Event, 0, n)
	for i := uint64(0); i < n; i++ {
		trail = append(trail, c.ring[(c.seen-n+i)%trailLen])
	}
	c.violations = append(c.violations, Violation{
		Cycle:     c.sys.Eng.Now(),
		Invariant: invariant,
		Detail:    detail,
		Trail:     trail,
	})
}

func (c *Checker) onEvent(ev gsim.Event) {
	c.ring[c.seen%trailLen] = ev
	c.seen++
	switch ev.Kind {
	case gsim.EvStoreIssue, gsim.EvHomeStore, gsim.EvGPUHomeStore, gsim.EvAtomicApply:
		c.addLegal(ev.Addr, ev.Val)
	case gsim.EvLoadDone:
		c.checkLoad(ev)
	case gsim.EvKernelDrained:
		c.scanQuiescent(ev.Aux)
	case gsim.EvKernelLaunch, gsim.EvInvDeliver, gsim.EvInvForward, gsim.EvFill,
		gsim.EvL2Evict, gsim.EvAcquire, gsim.EvDowngrade:
		// Recorded in the event trail above; these kinds carry no
		// per-event invariant yet. Listing them explicitly means a new
		// event kind fails the exhaustive lint until someone decides
		// what the checker owes it.
	}
}

func (c *Checker) addLegal(a topo.Addr, v uint64) {
	k := wordKey{c.sys.Cfg.Topo.LineOf(a), cache.WordOf(a, c.sys.Cfg.Topo.LineSize)}
	set := c.legal[k]
	if set == nil {
		set = make(map[uint64]bool)
		c.legal[k] = set
	}
	set[v] = true
}

// checkLoad asserts value soundness: a load may observe the initial
// value (0) or any value some store or atomic has produced for that
// word — never a value nobody wrote. Stale observations are legal under
// the non-multi-copy-atomic model; fabricated ones never are.
func (c *Checker) checkLoad(ev gsim.Event) {
	if !c.sys.Cfg.TrackValues || ev.Val == 0 {
		return
	}
	k := wordKey{ev.Line, cache.WordOf(ev.Addr, c.sys.Cfg.Topo.LineSize)}
	if !c.legal[k][ev.Val] {
		c.report("value-fabrication",
			fmt.Sprintf("load of %#x at sm %d observed %d, never stored to that word",
				uint64(ev.Addr), int(ev.SM), ev.Val))
	}
}

// scanQuiescent runs the global-state invariants at a drained kernel
// boundary, the protocol's quiescent point.
func (c *Checker) scanQuiescent(kernel int) {
	s := c.sys

	// Quiescence: the drained event means no posted store is short of
	// its system home and no background invalidation is undelivered.
	if stores, invs := s.PendingDrains(); stores != 0 || invs != 0 {
		c.report("quiescence",
			fmt.Sprintf("kernel %d drained with %d posted stores and %d invalidations outstanding",
				kernel, stores, invs))
	}
	if n := s.OutstandingFetches(); n != 0 {
		c.report("quiescence",
			fmt.Sprintf("kernel %d drained with %d line fetches in flight", kernel, n))
	}

	// Per-directory sharer-set snapshots, taken once so the per-line
	// inclusion checks below are O(1) lookups.
	c.dirSnaps = make([]map[directory.Region]directory.Sharers, len(s.GPMs))
	for gi, g := range s.GPMs {
		if g.Dir == nil {
			continue
		}
		snap := make(map[directory.Region]directory.Sharers)
		g.Dir.Dir.ForEach(func(e *directory.Entry) {
			snap[e.Region] = e.Sharers
		})
		c.dirSnaps[gi] = snap
		// Directory capacity bookkeeping: the walk count must agree with
		// the live counter and fit the configured capacity.
		if len(snap) != g.Dir.Dir.Live() {
			c.report("directory-bookkeeping",
				fmt.Sprintf("gpm %d directory walk found %d entries, Live() reports %d",
					gi, len(snap), g.Dir.Dir.Live()))
		}
		if len(snap) > s.Cfg.Dir.Entries {
			c.report("directory-capacity",
				fmt.Sprintf("gpm %d directory holds %d entries, capacity %d",
					gi, len(snap), s.Cfg.Dir.Entries))
		}
	}

	maxLines := s.Cfg.L2Slice.CapacityBytes / s.Cfg.L2Slice.LineSize
	for gi, g := range s.GPMs {
		gid := topo.GPMID(gi)
		walked := 0
		g.L2.ForEach(func(e *cache.Entry) {
			walked++
			if e.Dirty {
				c.report("dirty-at-quiescence",
					fmt.Sprintf("gpm %d line %#x still dirty at kernel %d boundary",
						gi, uint64(e.Line), kernel))
			}
			c.checkLine(gid, e)
		})
		// Cache capacity bookkeeping.
		if walked != g.L2.Lines() {
			c.report("cache-bookkeeping",
				fmt.Sprintf("gpm %d L2 walk found %d valid lines, Lines() reports %d",
					gi, walked, g.L2.Lines()))
		}
		if walked > maxLines {
			c.report("cache-capacity",
				fmt.Sprintf("gpm %d L2 holds %d lines, capacity %d", gi, walked, maxLines))
		}
	}
}

// checkLine runs the per-cached-line invariants: remote-caching policy,
// directory inclusion, and value coherence against the home memory.
func (c *Checker) checkLine(g topo.GPMID, e *cache.Entry) {
	s := c.sys
	p := s.Cfg.Policy
	t := s.Cfg.Topo
	line := e.Line
	owner, placed := s.Pages.Owner(t.LineAddr(line))
	if !placed {
		c.report("unplaced-line",
			fmt.Sprintf("gpm %d caches line %#x whose page was never placed", int(g), uint64(line)))
		return
	}

	// Policies without remote-GPU caching must never hold another GPU's
	// lines (the defining property of the NoRemoteCaching baseline).
	if !p.CacheRemoteGPU && t.GPUOf(owner) != t.GPUOf(g) {
		c.report("remote-caching-forbidden",
			fmt.Sprintf("gpm %d caches line %#x owned by gpm %d on another GPU under %v",
				int(g), uint64(line), int(owner), p.Kind))
	}

	// The remaining invariants are precise-sharer-tracking properties:
	// only hardware directory protocols promise them.
	if !p.Hardware || p.Classify {
		return
	}

	if owner != g {
		c.checkInclusion(g, owner, line)
	}

	// Value coherence: at quiescence every surviving copy agrees with
	// the home memory word-for-word — invalidations only delete copies,
	// so a survivor that diverges means an invalidation was lost.
	if s.Cfg.TrackValues {
		for w, v := range e.Data {
			home := s.GPMs[owner].DRAM.LoadValue(t.LineAddr(line) + topo.Addr(uint64(w)*cache.WordSize))
			if v != home {
				c.report("value-coherence",
					fmt.Sprintf("gpm %d line %#x word %d holds %d, home gpm %d has %d",
						int(g), uint64(line), w, v, int(owner), home))
			}
		}
	}
}

// checkInclusion asserts directory sharer-set soundness for one remotely
// cached line: whoever caches it must be visible to the directory
// hierarchy that would have to invalidate it.
//
//   - Flat protocols: the system home tracks the caching GPM globally.
//   - Hierarchical, requester on the owner GPU: the system home tracks
//     the GPM by its local module index.
//   - Hierarchical, requester on another GPU: the system home tracks the
//     whole GPU, and the requester GPU's home node tracks the GPM by its
//     local index (unless the GPM is that home node itself).
func (c *Checker) checkInclusion(g, owner topo.GPMID, line topo.Line) {
	t := c.sys.Cfg.Topo
	if !c.sys.Cfg.Policy.Hierarchical {
		c.requireSharer(owner, line, directory.GPMBit(int(g)), g)
		return
	}
	if t.SameGPU(owner, g) {
		c.requireSharer(owner, line, directory.GPMBit(t.LocalOf(g)), g)
		return
	}
	gpu := t.GPUOf(g)
	c.requireSharer(owner, line, directory.GPUBit(int(gpu)), g)
	gpuHome := c.sys.Pages.GPUHome(gpu, line)
	if gpuHome != g {
		c.requireSharer(gpuHome, line, directory.GPMBit(t.LocalOf(g)), g)
	}
}

// requireSharer resolves through the scan's directory snapshots rather
// than the directory's Lookup (which mutates LRU).
func (c *Checker) requireSharer(home topo.GPMID, line topo.Line, bit directory.Sharers, cacher topo.GPMID) {
	d := c.sys.GPMs[home].Dir
	if d == nil {
		return
	}
	sharers, tracked := c.dirSnaps[home][d.Dir.RegionOf(line)]
	if !tracked || !sharers.Has(bit) {
		c.report("inclusion",
			fmt.Sprintf("gpm %d caches line %#x but directory at gpm %d does not track sharer %v (entry present: %v)",
				int(cacher), uint64(line), int(home), bit, tracked))
	}
}
