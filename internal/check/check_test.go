package check

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"hmg/internal/consist"
	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
	"hmg/internal/workload"
)

// TestLitmusConformance sweeps the whole case grid — every shape, every
// protocol, every scope, synchronized and plain, a covered and an
// uncovered slot pairing — through the oracle and the invariant checker.
// Trunk protocol code must pass all of it.
func TestLitmusConformance(t *testing.T) {
	scopes := []trace.Scope{trace.ScopeCTA, trace.ScopeGPM, trace.ScopeGPU, trace.ScopeSys}
	pairs := [][2]int{{6, 6}, {4, 6}, {0, 6}} // covered .cta; same-GPU; cross-GPU
	for _, k := range proto.Kinds() {
		for _, sh := range []Shape{ShapeMP, ShapeSB, ShapeLB, ShapeCoRR} {
			for _, sc := range scopes {
				for _, sync := range []bool{true, false} {
					for _, pr := range pairs {
						cs := Case{
							Shape: sh, Protocol: k, Scope: sc, Sync: sync,
							WSlot: pr[0], RSlot: pr[1], Home: 0, Warmup: true,
						}
						if sync {
							cs.Gap = 2_500_000
						} else {
							cs.Gap = 40
						}
						t.Run(cs.Name(), func(t *testing.T) {
							t.Parallel()
							if err := cs.Run(); err != nil {
								t.Fatal(err)
							}
						})
					}
				}
			}
		}
	}
}

// TestRequiredVisibility asserts the positive side the oracle alone
// cannot: a covered, synchronized MP pair under a coherent protocol must
// actually deliver flag=1 and data=42 to the late reader — even when the
// reader's caches were warmed with stale copies.
func TestRequiredVisibility(t *testing.T) {
	covered := map[trace.Scope][2]int{
		trace.ScopeCTA: {6, 6},
		trace.ScopeGPM: {6, 7},
		trace.ScopeGPU: {4, 6},
		trace.ScopeSys: {0, 6},
	}
	for _, k := range proto.Kinds() {
		if proto.For(k).NoCoherence {
			continue
		}
		for sc, pr := range covered {
			cs := Case{
				Shape: ShapeMP, Protocol: k, Scope: sc, Sync: true,
				WSlot: pr[0], RSlot: pr[1], Home: 0, Warmup: true, Gap: 2_500_000,
			}
			t.Run(cs.Name(), func(t *testing.T) {
				t.Parallel()
				r, err := consist.Run(consist.SmallConfig(k), cs.Program())
				if err != nil {
					t.Fatal(err)
				}
				if flag, ok := r.Value(1, 0); !ok || flag != 1 {
					t.Fatalf("late acquire read flag %v (ok=%v), want 1", flag, ok)
				}
				if data, ok := r.Value(1, 1); !ok || data != 42 {
					t.Fatalf("data after acquire = %v (ok=%v), want 42", data, ok)
				}
			})
		}
	}
}

// TestStaleReadObserved pins the relaxation the fuzzer must tolerate:
// under Ideal (no coherence enforcement), a warmed reader keeps its
// stale copies forever — the plain late read observes 0 long after the
// writer finished, and the oracle accepts it.
func TestStaleReadObserved(t *testing.T) {
	cs := Case{
		Shape: ShapeMP, Protocol: proto.Ideal, Scope: trace.ScopeSys, Sync: false,
		WSlot: 0, RSlot: 6, Home: 0, Warmup: true, Gap: 2_500_000,
	}
	r, err := consist.Run(consist.SmallConfig(cs.Protocol), cs.Program())
	if err != nil {
		t.Fatal(err)
	}
	if flag, ok := r.Value(1, 0); !ok || flag != 0 {
		t.Fatalf("warmed plain read under Ideal observed flag=%v (ok=%v), want stale 0", flag, ok)
	}
	if err := cs.Oracle(r); err != nil {
		t.Fatalf("oracle rejected a legal stale read: %v", err)
	}
}

// mutationCases are litmus instances that exercise each deliberate
// Table I bug: the harness must detect every one, and the identical
// trace on trunk (mutation zero) must be clean.
func mutationCases() map[proto.Mutation][]Case {
	return map[proto.Mutation][]Case{
		// Dropped store invalidations: local-store path (writer on the
		// home GPM) and remote-store path (writer elsewhere), flat and
		// hierarchical directories.
		proto.MutDropStoreInv: {
			{Shape: ShapeMP, Protocol: proto.NHCC, Scope: trace.ScopeSys, Sync: true,
				WSlot: 0, RSlot: 6, Home: 0, Warmup: true, Gap: 2_500_000},
			{Shape: ShapeMP, Protocol: proto.NHCC, Scope: trace.ScopeSys, Sync: true,
				WSlot: 2, RSlot: 6, Home: 0, Warmup: true, Gap: 2_500_000},
			{Shape: ShapeMP, Protocol: proto.HMG, Scope: trace.ScopeSys, Sync: true,
				WSlot: 0, RSlot: 6, Home: 0, Warmup: true, Gap: 2_500_000},
		},
		// Dropped HMG second-level forwarding: the GPU home node swallows
		// the system home's invalidation instead of fanning it out. The
		// reader sits on GPM 2 — GPU 1's home for the litmus lines is
		// GPM 3, so the reader's copy dies only through the forwarded hop.
		proto.MutDropInvForward: {
			{Shape: ShapeMP, Protocol: proto.HMG, Scope: trace.ScopeSys, Sync: true,
				WSlot: 0, RSlot: 4, Home: 0, Warmup: true, Gap: 2_500_000},
		},
	}
}

func TestMutationsDetected(t *testing.T) {
	for mu, cases := range mutationCases() {
		for _, cs := range cases {
			mu, cs := mu, cs
			t.Run(fmt.Sprintf("mut%d/%s", mu, cs.Name()), func(t *testing.T) {
				t.Parallel()
				if err := cs.Run(); err != nil {
					t.Fatalf("trunk run of the detection trace is dirty: %v", err)
				}
				if err := cs.RunMutated(mu); err == nil {
					t.Fatal("mutation went undetected")
				}
			})
		}
	}
}

// TestMutationViolationDetail digs one level deeper than "an error came
// back": a dropped store invalidation must surface as both the
// forbidden stale read (oracle) and directory-inclusion breakage
// (invariant checker).
func TestMutationViolationDetail(t *testing.T) {
	cs := Case{Shape: ShapeMP, Protocol: proto.HMG, Scope: trace.ScopeSys, Sync: true,
		WSlot: 0, RSlot: 6, Home: 0, Warmup: true, Gap: 2_500_000}
	cfg := consist.SmallConfig(cs.Protocol)
	cfg.Mutation = proto.MutDropStoreInv
	var ck *Checker
	r, err := consist.Run(cfg, cs.Program(), func(sys *gsim.System) { ck = Attach(sys) })
	if err != nil {
		t.Fatal(err)
	}
	oerr := cs.Oracle(r)
	if oerr == nil || !strings.Contains(oerr.Error(), "forbidden MP outcome") {
		t.Fatalf("oracle error = %v, want forbidden MP outcome", oerr)
	}
	kinds := map[string]bool{}
	for _, v := range ck.Violations() {
		kinds[v.Invariant] = true
		if len(v.Trail) == 0 {
			t.Fatalf("violation %q carries no event trail", v.Invariant)
		}
	}
	if !kinds["inclusion"] {
		t.Fatalf("checker saw %v, want an inclusion violation", kinds)
	}
}

// TestMutationDropEvictInv drives directory replacement with a tiny
// 8-entry directory: on trunk the evictions invalidate the displaced
// sharers; with the mutation they are silently forgotten, leaving
// untracked remote copies the checker must flag.
func TestMutationDropEvictInv(t *testing.T) {
	run := func(mu proto.Mutation) (*Checker, *gsim.System) {
		t.Helper()
		cfg := consist.SmallConfig(proto.NHCC)
		cfg.Dir.Entries = 8
		cfg.Dir.Ways = 2
		cfg.Dir.GranLines = 1
		cfg.Mutation = mu
		b := consist.New("evict-pressure").Slots(8).Home(0)
		var addrs []topo.Addr
		for i := 0; i < 16; i++ {
			addrs = append(addrs, topo.Addr(i*int(cfg.Topo.LineSize)))
		}
		b.Warmup(6, addrs...)
		b.Thread(6, trace.Op{Kind: trace.Load, Addr: addrs[0], Gap: 2_000_000})
		var ck *Checker
		var sys *gsim.System
		if _, err := consist.Run(cfg, b.Build(), func(s *gsim.System) { sys = s; ck = Attach(s) }); err != nil {
			t.Fatal(err)
		}
		return ck, sys
	}
	ck, _ := run(0)
	if err := ck.Err(); err != nil {
		t.Fatalf("trunk eviction pressure is dirty: %v", err)
	}
	ck, sys := run(proto.MutDropEvictInv)
	found := false
	for _, v := range ck.Violations() {
		if v.Invariant == "inclusion" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped eviction invalidations went undetected (violations: %v)", ck.Violations())
	}
	// Fig. 10 counters record protocol-intended traffic: the mutation
	// suppresses the messages, not the accounting, so the per-directory
	// eviction-invalidation counters still accumulate.
	var evictMsgs uint64
	for _, gpm := range sys.GPMs {
		if gpm.Dir != nil {
			evictMsgs += gpm.Dir.InvMsgsByEvicts
		}
	}
	if evictMsgs == 0 {
		t.Fatal("mutated run recorded no intended eviction invalidations; counters must not be suppressed by MutDropEvictInv")
	}
}

// TestBenchmarkSweep runs every Table III benchmark under every protocol
// on the conformance topology with the checker attached: the trunk
// protocols must hold every invariant on real workloads, not just litmus
// programs.
func TestBenchmarkSweep(t *testing.T) {
	scale := 0.25
	if testing.Short() {
		scale = 0.05
	}
	for _, k := range proto.Kinds() {
		for _, name := range workload.Names() {
			k, name := k, name
			t.Run(fmt.Sprintf("%v/%s", k, name), func(t *testing.T) {
				t.Parallel()
				cfg := consist.SmallConfig(k)
				sys, err := gsim.New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				ck := Attach(sys)
				p, err := workload.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := sys.Run(p.Generate(cfg.Topo, scale)); err != nil {
					t.Fatal(err)
				}
				if err := ck.Err(); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCheckerDoesNotPerturb asserts the harness's cardinal rule: an
// attached checker changes no simulation outcome. Results must be
// deep-equal with and without it.
func TestCheckerDoesNotPerturb(t *testing.T) {
	run := func(attach bool) *gsim.Results {
		t.Helper()
		cfg := consist.SmallConfig(proto.HMG)
		sys, err := gsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ck *Checker
		if attach {
			ck = Attach(sys)
		}
		p, err := workload.Get("nw-16K")
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(p.Generate(cfg.Topo, 0.25))
		if err != nil {
			t.Fatal(err)
		}
		if attach {
			if err := ck.Err(); err != nil {
				t.Fatal(err)
			}
		}
		return res
	}
	plain, checked := run(false), run(true)
	if !reflect.DeepEqual(plain, checked) {
		t.Fatalf("checker perturbed the simulation:\nplain:   %+v\nchecked: %+v", plain, checked)
	}
}

// TestCaseFromSeed sanity-checks the generator: deterministic, always
// in-range, and synchronized cases always get the drain gap the oracle's
// exactness depends on.
func TestCaseFromSeed(t *testing.T) {
	for seed := uint64(0); seed < 512; seed++ {
		cs := CaseFromSeed(seed)
		if cs != CaseFromSeed(seed) {
			t.Fatalf("seed %d is not deterministic", seed)
		}
		if cs.WSlot < 0 || cs.WSlot > 7 || cs.RSlot < 0 || cs.RSlot > 7 {
			t.Fatalf("seed %d: slots out of range: %+v", seed, cs)
		}
		if cs.Home > 3 {
			t.Fatalf("seed %d: home out of range: %+v", seed, cs)
		}
		if cs.Sync && cs.Gap < 2_000_000 {
			t.Fatalf("seed %d: synchronized case without drain gap: %+v", seed, cs)
		}
		if prog := cs.Program(); len(prog.Threads) != 2 {
			t.Fatalf("seed %d: program has %d threads", seed, len(prog.Threads))
		}
	}
}
