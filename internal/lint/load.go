// Standalone package loading. hmglint avoids a go/packages dependency
// by shelling out to `go list -export -json -deps`, which emits every
// requested package and its dependencies in dependency order, with
// each compiled package's export-data file in the build cache. Type
// information for imports then comes from the standard library's gc
// importer reading those files — the same pipeline the compiler and
// go vet use, with no network and no module downloads.

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// Run loads the packages matching patterns (resolved in dir; "" means
// the current directory) and applies the enabled analyzers to every
// matched non-dependency package, returning the merged, suppressed,
// position-sorted findings.
func Run(dir string, patterns []string, enabled []*Analyzer) ([]Diagnostic, error) {
	args := append([]string{
		"list", "-export",
		"-json=ImportPath,Name,Export,GoFiles,Dir,ImportMap,Standard,DepOnly,Incomplete",
		"-deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("hmglint: go list %v failed: %v\n%s", patterns, err, stderr.String())
	}

	var pkgs []*listPkg
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("hmglint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		q := p
		pkgs = append(pkgs, &q)
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	facts := NewFactSet()
	var diags []Diagnostic
	// Interprocedural passes (hotalloc) may report the same
	// cross-package site from several analyzed packages; keep one.
	seen := map[string]bool{}
	// go list -deps emits dependencies before dependents, so walking in
	// order guarantees a package's facts are ready before its importers.
	for _, p := range pkgs {
		if p.Standard || p.Name == "" {
			continue
		}
		if p.Incomplete {
			return nil, fmt.Errorf("hmglint: package %s did not build; fix compile errors first", p.ImportPath)
		}
		pass, err := typecheck(fset, imp, p, facts)
		if err != nil {
			return nil, err
		}
		facts.merge(computeFacts(pass))
		if !p.DepOnly {
			for _, d := range runAnalyzers(pass, enabled) {
				key := d.Analyzer + "\x00" + d.Position.String() + "\x00" + d.Message
				if seen[key] {
					continue
				}
				seen[key] = true
				diags = append(diags, d)
			}
		}
	}
	return diags, nil
}

// typecheck parses and type-checks one listed package. Test files are
// excluded by construction (go list's GoFiles never includes them),
// matching the suite's contract of analyzing simulator code only.
func typecheck(fset *token.FileSet, imp types.Importer, p *listPkg, facts FactSet) (*Pass, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(p.Dir, name)
		}
		af, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("hmglint: %v", err)
		}
		files = append(files, af)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	// Imports in source may be vendor-relative; translate through the
	// package's ImportMap before hitting export data.
	conf := types.Config{Importer: mappedImporter{imp, p.ImportMap}}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("hmglint: typechecking %s: %v", p.ImportPath, err)
	}
	return &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Facts: facts}, nil
}

// mappedImporter applies an import-path translation map (vendoring,
// test variants) before delegating to the export-data importer.
type mappedImporter struct {
	imp types.Importer
	m   map[string]string
}

func (mi mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.m[path]; ok {
		path = mapped
	}
	return mi.imp.Import(path)
}
