// go vet integration. `go vet -vettool=hmglint` drives the tool with
// the unitchecker protocol: a -flags probe (JSON flag list), a -V=full
// probe (version string keyed into vet's result cache), then one
// invocation per package in dependency order, each with a single
// *.cfg argument describing the compilation unit — its sources, the
// export-data and facts files of its dependencies, and where to write
// this package's facts. Diagnostics go to stderr as file:line:col
// lines with a nonzero exit, which go vet relays.

package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// vetConfig mirrors the cfg JSON cmd/go hands a vettool (the shape
// x/tools' unitchecker consumes).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the hmglint entry point: it dispatches between the vettool
// protocol and standalone multichecker mode, returning the process
// exit code (0 clean, 1 internal error, 2 findings).
func Main(args []string) int {
	// Vettool protocol probes.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			fmt.Printf("hmglint version %s\n", buildID())
			return 0
		case a == "-flags" || a == "--flags":
			// No tool-specific flags are exposed through go vet; analyzer
			// selection is a standalone-mode feature.
			fmt.Println("[]")
			return 0
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return unitcheck(args[0])
	}

	fs := flag.NewFlagSet("hmglint", flag.ContinueOnError)
	analyzers := fs.String("analyzers", "", "comma-separated analyzer selection (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit one JSON object per finding (analyzer, position, message)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: hmglint [-analyzers a,b] [-json] [packages]\n")
		fmt.Fprintf(fs.Output(), "       go vet -vettool=$(which hmglint) [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	enabled, err := Select(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := Run("", patterns, enabled)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *jsonOut {
		// One finding per line, so CI can stream-parse annotations.
		enc := json.NewEncoder(os.Stdout)
		for _, d := range diags {
			if err := enc.Encode(jsonFinding{
				Analyzer: d.Analyzer,
				Position: d.Position.String(),
				Message:  d.Message,
			}); err != nil {
				fmt.Fprintln(os.Stderr, "hmglint:", err)
				return 1
			}
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hmglint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// jsonFinding is the -json output schema: one object per line.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	Position string `json:"position"`
	Message  string `json:"message"`
}

// unitcheck analyzes one compilation unit under the vettool protocol.
func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hmglint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "hmglint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	writeVetx := func(fs FactSet) bool {
		if cfg.VetxOutput == "" {
			return true
		}
		out, err := json.Marshal(fs)
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, out, 0o666)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "hmglint:", err)
			return false
		}
		return true
	}

	// Standard-library units carry no module facts and no findings;
	// satisfy the protocol with an empty facts file. (cfg.Standard only
	// describes the unit's imports, so std-ness of the unit itself is
	// detected by its sources living under GOROOT.) Test variants are
	// likewise skipped once test files are filtered out.
	var sources []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			sources = append(sources, f)
		}
	}
	if cfg.Standard[cfg.ImportPath] || isGorootUnit(sources) || len(sources) == 0 {
		if !writeVetx(NewFactSet()) {
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, cfg.Compiler, lookup)

	// Dependency facts from the vetx files go vet threads through the
	// build graph. Missing files (e.g. cached std units) mean no facts.
	facts := NewFactSet()
	for _, vetx := range cfg.PackageVetx {
		b, err := os.ReadFile(vetx)
		if err != nil {
			continue
		}
		var fs FactSet
		if json.Unmarshal(b, &fs) == nil {
			facts.merge(fs)
		}
	}

	p := &listPkg{
		Dir:        cfg.Dir,
		ImportPath: cfg.ImportPath,
		GoFiles:    sources,
		ImportMap:  cfg.ImportMap,
	}
	pass, err := typecheck(fset, imp, p, facts)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx(NewFactSet()) {
				return 1
			}
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	own := computeFacts(pass)
	if !writeVetx(own) {
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	pass.Facts.merge(own)

	diags := runAnalyzers(pass, Analyzers())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Position, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// isGorootUnit reports whether a compilation unit's sources live under
// GOROOT — i.e. it is a standard-library package go vet is threading
// through for facts.
func isGorootUnit(sources []string) bool {
	if len(sources) == 0 {
		return false
	}
	goroot := runtime.GOROOT()
	if goroot == "" {
		return false
	}
	return strings.HasPrefix(sources[0], filepath.Clean(goroot)+string(filepath.Separator))
}

// buildID hashes the running executable so go vet's result cache
// invalidates whenever the tool itself changes.
func buildID() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil)[:12])
			}
		}
	}
	return "unknown"
}
