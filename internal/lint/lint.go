// Package lint is hmglint: a static-analysis pass suite that enforces
// the simulator's determinism and protocol-spec discipline at build
// time, before the runtime conformance harness (internal/check) ever
// has to fire.
//
// The suite mirrors the golang.org/x/tools/go/analysis architecture —
// Analyzer, Pass, Diagnostic, per-package facts — on the standard
// library alone, so the repo stays dependency-free. Should x/tools
// become available, each Analyzer converts mechanically: Run already
// receives a Pass with Fset/Files/Pkg/Info and returns diagnostics.
//
// Six analyzers ship (see their files for the bug class each kills):
//
//   - determinism (determinism.go): no map-order iteration, wall-clock
//     reads, unseeded randomness, or goroutine spawns in simulator
//     packages.
//   - eventemit (eventemit.go): every protocol-state mutation in gsim
//     must be reachable from a (*System).emit call.
//   - exhaustive (exhaustive.go): switches over module enums cover
//     every value or fail loudly in a default.
//   - readonlyhooks (readonlyhooks.go): checker/observer code is
//     provably inert — it never calls a mutating simulator API.
//   - hotalloc (hotalloc.go): no allocation is reachable from the
//     steady-state hot path (engine.Run / Handler.Handle), via an
//     interprocedural may-allocate fact.
//   - speccover (speccover.go): every guarded internal/proto/spec rule
//     maps to a capable DirCtrl arm and every state-mutating arm is
//     justified by some rule.
//
// Findings are suppressed site-by-site with a directive comment:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or the line above it; for hotalloc and
// speccover a directive on (or directly above) a function declaration
// covers the whole body. The reason is mandatory; a bare allow is
// itself a diagnostic, and so is an allow that no longer suppresses
// anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named pass.
type Analyzer struct {
	// Name is the identifier used on the command line and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// Run inspects one package and returns its findings. The framework
	// applies suppression directives afterwards.
	Run func(*Pass) []Diagnostic
}

// Pass carries everything an Analyzer may inspect for one package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Facts carries the cross-package facts (for every dependency
	// package and this one). See facts.go.
	Facts FactSet

	// Directive state, shared between fact computation and analyzer
	// runs so a directive consumed at fact time (hotalloc/speccover
	// body-level allows) still counts as used. Lazily built by
	// directives().
	dirs     []allowDirective
	dirDiags []Diagnostic
	dirsDone bool
	usedDirs map[string]bool // "file:line" of directives used at fact time
}

// directives parses (once) and returns the package's allow directives;
// malformed ones are buffered as diagnostics for runAnalyzers.
func (p *Pass) directives() []allowDirective {
	if !p.dirsDone {
		p.dirs, p.dirDiags = parseDirectives(p)
		p.usedDirs = map[string]bool{}
		p.dirsDone = true
	}
	return p.dirs
}

// allowedAt reports whether an allow directive for the analyzer covers
// any of the given lines of file (directive on the line itself or the
// line above). A match marks the directive as used.
func (p *Pass) allowedAt(analyzer, file string, lines ...int) bool {
	for _, dir := range p.directives() {
		if dir.analyzer != analyzer || dir.file != file {
			continue
		}
		for _, ln := range lines {
			if dir.line == ln || dir.line+1 == ln {
				p.usedDirs[fmt.Sprintf("%s:%d", dir.file, dir.line)] = true
				return true
			}
		}
	}
	return false
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (hmglint/%s)", d.Position, d.Message, d.Analyzer)
}

// report appends a finding, resolving its position.
func (p *Pass) report(diags *[]Diagnostic, analyzer string, pos token.Pos, format string, args ...any) {
	*diags = append(*diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full registered suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerDeterminism,
		AnalyzerEventEmit,
		AnalyzerExhaustive,
		AnalyzerHotAlloc,
		AnalyzerReadonlyHooks,
		AnalyzerSpecCover,
	}
}

// analyzerNames lists registered names for error messages and directive
// validation.
func analyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Select resolves a comma-separated analyzer selection; empty selects
// the whole suite. Unknown names fail with the known set listed,
// mirroring proto.ParseKind.
func Select(names string) ([]*Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return Analyzers(), nil
	}
	var sel []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		found := false
		for _, a := range Analyzers() {
			if a.Name == n {
				sel = append(sel, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("hmglint: unknown analyzer %q (known: %v)", n, analyzerNames())
		}
	}
	return sel, nil
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
}

var allowRE = regexp.MustCompile(`^//lint:allow\s+(\S+)(?:\s+(.*))?$`)

// parseDirectives extracts every //lint:allow directive from the files
// and validates its shape: the analyzer must be a registered name and
// the reason is mandatory. Malformed directives are diagnostics in
// their own right (analyzer "lint") — an allow that silences nothing
// explainable is worse than the finding it hides.
func parseDirectives(pass *Pass) (dirs []allowDirective, diags []Diagnostic) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//lint:") {
					continue
				}
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					pass.report(&diags, "lint", c.Pos(),
						"malformed lint directive %q (want //lint:allow <analyzer> <reason>)", c.Text)
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				known := false
				for _, a := range Analyzers() {
					if a.Name == name {
						known = true
						break
					}
				}
				if !known {
					pass.report(&diags, "lint", c.Pos(),
						"//lint:allow names unknown analyzer %q (known: %v)", name, analyzerNames())
					continue
				}
				if reason == "" {
					pass.report(&diags, "lint", c.Pos(),
						"//lint:allow %s is missing its mandatory reason", name)
					continue
				}
				p := pass.Fset.Position(c.Pos())
				dirs = append(dirs, allowDirective{
					pos: c.Pos(), file: p.Filename, line: p.Line, analyzer: name, reason: reason,
				})
			}
		}
	}
	return dirs, diags
}

// applyDirectives filters findings covered by an allow on the same line
// or the line directly above (so a standalone directive comment guards
// the statement beneath it). used records, by index into dirs, every
// directive that suppressed at least one finding.
func applyDirectives(diags []Diagnostic, dirs []allowDirective, used []bool) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for i, dir := range dirs {
			if dir.analyzer == d.Analyzer && dir.file == d.Position.Filename &&
				(dir.line == d.Position.Line || dir.line+1 == d.Position.Line) {
				suppressed = true
				used[i] = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// runAnalyzers executes the selected suite on one loaded package and
// returns the post-suppression findings sorted by position.
func runAnalyzers(pass *Pass, enabled []*Analyzer) []Diagnostic {
	dirs := pass.directives()
	diags := append([]Diagnostic(nil), pass.dirDiags...)
	for _, a := range enabled {
		diags = append(diags, a.Run(pass)...)
	}
	used := make([]bool, len(dirs))
	diags = applyDirectives(diags, dirs, used)
	// Self-check: an allow that suppresses nothing — neither a finding
	// here nor a fact-time site — is stale and must be removed. Only
	// directives for currently-enabled analyzers are judged, so a
	// partial -analyzers run does not flag the other passes' allows.
	enabledNames := map[string]bool{}
	for _, a := range enabled {
		enabledNames[a.Name] = true
	}
	for i, dir := range dirs {
		if !enabledNames[dir.analyzer] || used[i] {
			continue
		}
		if pass.usedDirs[fmt.Sprintf("%s:%d", dir.file, dir.line)] {
			continue
		}
		pass.report(&diags, "lint", dir.pos,
			"//lint:allow %s suppresses nothing; the analyzer no longer reports at this site", dir.analyzer)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// firstSegment returns the leading path element of an import path — the
// module-ownership heuristic the analyzers use to tell "our" packages
// from the standard library and other modules.
func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}

// sameModule reports whether two package paths share a leading path
// element (e.g. hmg/internal/gsim and hmg/internal/cache).
func sameModule(a, b string) bool { return firstSegment(a) == firstSegment(b) }

// callee resolves the static *types.Func a call expression invokes, or
// nil for dynamic calls, conversions, and builtins.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvNamed returns the (possibly pointer-stripped) named receiver type
// of a method, or nil for plain functions.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}
