// Cross-package facts. Three fact kinds are computed for every
// in-module package and shared across the import graph: standalone
// mode keeps them in memory while walking `go list -deps` order;
// vettool mode serializes them to the facts files go vet threads
// between compilations.
//
//   - Mutates (this file): for every function, does calling it
//     possibly mutate state reachable from its receiver or arguments?
//     Feeds the readonlyhooks analyzer.
//   - Fns (hotalloc.go): per-function allocation sites and static
//     in-module callees. Feeds the hotalloc analyzer's hot-path
//     reachability walk.
//   - Arms (speccover.go): per-DirCtrl-method directory-mutation
//     capabilities. Feeds the speccover analyzer's rule↔arm
//     cross-check from the spec package.
//
// The analysis is a deliberately simple intra-procedural taint pass:
//
//   - Roots: the receiver and parameters. Local variables assigned
//     from expressions mentioning a tainted variable become tainted
//     (so `set := c.setOf(line); set[i].lru = x` is caught).
//   - A mutation is a write whose path provably leaves the local copy:
//     an assignment or ++/-- through a pointer dereference, a map or
//     slice index, or a field of a pointer — rooted at a tainted
//     variable. Writes to fields of a by-value receiver or parameter
//     only change the callee's copy and are not mutations.
//   - delete/clear on a tainted operand is a mutation.
//   - Calling a function whose fact is "mutates" with a tainted
//     receiver or argument is a mutation; same-package calls resolve
//     by fixpoint, cross-package calls through the dependency facts.
//
// Known unsoundness, accepted on purpose: mutations through dynamic
// calls (function values, interface methods) and through pointers
// returned by untracked calls are invisible. The readonlyhooks
// analyzer compensates by walking closure bodies in observer code
// directly, and the runtime checker's deep-equal inertness test
// remains the backstop.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FactSet carries every fact kind the suite shares across packages.
// The exported field names are the vetx JSON schema go vet threads
// between compilation units.
type FactSet struct {
	// Mutates maps types.Func FullNames to "may mutate
	// receiver/argument state".
	Mutates map[string]bool
	// Fns maps types.Func FullNames to their allocation/call-graph
	// fact (hotalloc.go).
	Fns map[string]*FnFact
	// Arms maps types.Func FullNames of proto.DirCtrl methods to their
	// directory-mutation capabilities (speccover.go).
	Arms map[string]ArmFact
}

// NewFactSet returns an empty, writable fact set.
func NewFactSet() FactSet {
	return FactSet{
		Mutates: map[string]bool{},
		Fns:     map[string]*FnFact{},
		Arms:    map[string]ArmFact{},
	}
}

// merge folds src into fs. fs must come from NewFactSet; src may be a
// zero value (e.g. an unmarshalled empty vetx file).
func (fs FactSet) merge(src FactSet) {
	for k, v := range src.Mutates {
		if v {
			fs.Mutates[k] = true
		}
	}
	for k, v := range src.Fns {
		fs.Fns[k] = v
	}
	for k, v := range src.Arms {
		fs.Arms[k] = v
	}
}

// computeFacts derives every fact kind for one package, given the
// already-merged facts of its dependencies in pass.Facts. The returned
// set contains entries for this package's functions only.
func computeFacts(pass *Pass) FactSet {
	out := NewFactSet()
	computeMutates(pass, out.Mutates)
	computeAllocFacts(pass, out.Fns)
	computeArmFacts(pass, out.Arms)
	return out
}

// computeMutates derives the mutability facts for one package.
func computeMutates(pass *Pass, local map[string]bool) {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range decls {
			name := fn.FullName()
			if local[name] {
				continue
			}
			if declMutates(pass, fd, local) {
				local[name] = true
				changed = true
			}
		}
	}
}

// declMutates reports whether one function body contains a mutation of
// tainted (caller-reachable) state, under the current fact estimates.
func declMutates(pass *Pass, fd *ast.FuncDecl, local map[string]bool) bool {
	taint := taintedObjects(pass, fd)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if isTaintedWrite(pass, lhs, taint) {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if isTaintedWrite(pass, n.X, taint) {
				found = true
			}
		case *ast.CallExpr:
			if callMutates(pass, n, taint, local) {
				found = true
			}
		}
		return !found
	})
	return found
}

// taintedObjects seeds and propagates the taint set for one function:
// receiver + parameters, then any variable assigned from an expression
// mentioning a tainted variable, iterated to a fixpoint.
func taintedObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	taint := map[types.Object]bool{}
	addField := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					taint[obj] = true
				}
			}
		}
	}
	addField(fd.Recv)
	addField(fd.Type.Params)

	mentions := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && taint[obj] {
					hit = true
				}
			}
			return !hit
		})
		return hit
	}
	lhsObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.Info.Defs[id]; obj != nil {
			return obj
		}
		return pass.Info.Uses[id]
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				anyRHS := false
				for _, r := range n.Rhs {
					if mentions(r) {
						anyRHS = true
					}
				}
				if !anyRHS {
					return true
				}
				for _, l := range n.Lhs {
					if obj := lhsObj(l); obj != nil && !taint[obj] {
						taint[obj] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if n.X == nil || !mentions(n.X) {
					return true
				}
				for _, l := range []ast.Expr{n.Key, n.Value} {
					if l == nil {
						continue
					}
					if obj := lhsObj(l); obj != nil && !taint[obj] {
						taint[obj] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				anyRHS := false
				for _, r := range n.Values {
					if mentions(r) {
						anyRHS = true
					}
				}
				if !anyRHS {
					return true
				}
				for _, name := range n.Names {
					if obj := pass.Info.Defs[name]; obj != nil && !taint[obj] {
						taint[obj] = true
						changed = true
					}
				}
			}
			return true
		})
	}
	return taint
}

// isTaintedWrite reports whether the write target provably escapes the
// local copy (pointer deref, map/slice index, or field-of-pointer on
// the path) and is rooted at a tainted variable.
func isTaintedWrite(pass *Pass, lhs ast.Expr, taint map[types.Object]bool) bool {
	root, real := writeTarget(pass, lhs)
	if !real || root == nil {
		return false
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	return obj != nil && taint[obj]
}

// writeTarget walks a write target down to its root identifier,
// reporting whether any step on the path dereferences shared storage.
func writeTarget(pass *Pass, e ast.Expr) (root *ast.Ident, real bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, real
		case *ast.StarExpr:
			real = true
			e = x.X
		case *ast.IndexExpr:
			switch pass.Info.TypeOf(x.X).Underlying().(type) {
			case *types.Map, *types.Slice, *types.Pointer:
				real = true
			}
			e = x.X
		case *ast.SelectorExpr:
			if _, ok := pass.Info.TypeOf(x.X).Underlying().(*types.Pointer); ok {
				real = true
			}
			e = x.X
		default:
			// f().field, composite literals, etc: no stable root.
			return nil, false
		}
	}
}

// callMutates reports whether a call expression mutates tainted state:
// delete/clear builtins on tainted operands, or calls to functions
// whose fact says they mutate, passed a tainted receiver or argument.
func callMutates(pass *Pass, call *ast.CallExpr, taint map[types.Object]bool, local map[string]bool) bool {
	touchesTaint := func(e ast.Expr) bool {
		hit := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil && taint[obj] {
					hit = true
				}
			}
			return !hit
		})
		return hit
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			if (b.Name() == "delete" || b.Name() == "clear") && len(call.Args) > 0 {
				return touchesTaint(call.Args[0])
			}
			return false
		}
	}
	fn := callee(pass.Info, call)
	if fn == nil {
		return false
	}
	mutates := local[fn.FullName()] || pass.Facts.Mutates[fn.FullName()]
	if !mutates {
		return false
	}
	// A tainted operand only conveys caller state if its type can carry
	// a reference to it: passing a tainted int to fmt.Sprintf (which
	// mutates its own printer) mutates nothing of the caller's.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
		touchesTaint(sel.X) && carriesRefs(pass.Info.TypeOf(sel.X), nil) {
		return true
	}
	for _, a := range call.Args {
		if touchesTaint(a) && carriesRefs(pass.Info.TypeOf(a), nil) {
			return true
		}
	}
	return false
}

// carriesRefs reports whether a value of type t can hold a reference
// to the caller's mutable state: pointers, maps, slices, channels,
// function values, interfaces, unsafe pointers, or composites
// containing any of them. Pure value types (ints, strings, flat
// structs) cannot, so handing them to a mutating callee is harmless.
func carriesRefs(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return true // unknown: be conservative
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Slice, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRefs(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return carriesRefs(u.Elem(), seen)
	default:
		return true // tuples and anything exotic: be conservative
	}
}

// posOf is a tiny helper for analyzers reporting on nodes.
func posOf(n ast.Node) token.Pos { return n.Pos() }
