// Exhaustive fixture: switches over a module enum in every flavor the
// analyzer distinguishes.
package exh

// Color is a module enum: a named integer with >= 2 typed constants.
type Color int

const (
	Red Color = iota
	Green
	Blue
)

// crimson aliases Red; coverage is by value, so naming either counts.
const crimson = Red

// Violating: missing a value, no default.
func name(c Color) string {
	switch c { // want `switch over exh\.Color is not exhaustive: missing Blue`
	case Red:
		return "red"
	case Green:
		return "green"
	}
	return "?"
}

// Violating: missing values behind a default that absorbs silently.
func silent(c Color) string {
	out := "?"
	switch c {
	case Red:
		out = "red"
	default: // want `default absorbs silently`
		out = ""
	}
	return out
}

// Clean: full coverage, alias name standing in for Red.
func full(c Color) string {
	switch c {
	case crimson, Green, Blue:
		return "known"
	}
	return "?"
}

// Clean: a default that panics is a loud fall-through.
func loud(c Color) string {
	switch c {
	case Red:
		return "red"
	default:
		panic("unhandled color")
	}
}

// Clean: a default that returns is loud too.
func loudReturn(c Color) string {
	switch c {
	case Green:
		return "green"
	default:
		return "other"
	}
}

// Clean: suppressed with a reason.
func suppressed(c Color) {
	//lint:allow exhaustive legacy switch, migration tracked separately
	switch c {
	case Red:
	}
}

// Single has one constant: not an enum, switches over it are free.
type Single int

// OnlyOne is the sole Single value.
const OnlyOne Single = 0

func one(s Single) string {
	switch s {
	case OnlyOne:
		return "one"
	}
	return "?"
}
