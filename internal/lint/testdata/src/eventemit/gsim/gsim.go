// Eventemit fixture: a miniature System with an emit method, plus the
// full spectrum of mutation sites — silent (flagged), emitting (clean),
// transitively emitting (clean), and suppressed.
package gsim

import "fixture/cache"

// Event is the hook payload.
type Event struct{ Kind int }

// System owns the caches and the event sink.
type System struct {
	L2      *cache.Cache
	OnEvent func(Event)
}

func (s *System) emit(ev Event) {
	if s.OnEvent != nil {
		s.OnEvent(ev)
	}
}

// Violating: protocol-state mutation with no emit anywhere in reach.
func (s *System) badEvict(line uint64) {
	s.L2.Invalidate(line) // want `mutates protocol state \(cache\.Cache\.Invalidate\)`
}

// Clean: mutation beside a direct emit.
func (s *System) goodFill(line uint64) {
	s.L2.Fill(line)
	s.emit(Event{Kind: 1})
}

// Clean: mutation in a function that reaches emit through a helper.
func (s *System) goodTransitive(line uint64) {
	s.L2.Fill(line)
	s.note()
}

func (s *System) note() { s.emit(Event{Kind: 2}) }

// Violating: the dirty bit is a field write the API table cannot see.
func (s *System) badDirty(e *cache.Entry) {
	e.Dirty = true // want `cache\.Entry\.Dirty write`
}

// Clean: a pure absorption helper with its covering event documented.
func (s *System) allowedDirty(e *cache.Entry) {
	//lint:allow eventemit absorption covered by the caller's store-issue event
	e.Dirty = true
}

// Clean: read-only accessors never trip the table.
func (s *System) reader(line uint64) bool {
	_, ok := s.L2.Peek(line)
	return ok
}
