// Minimal stand-in for the simulator's cache package: the eventemit
// analyzer keys its mutation table on package/type/method names, so
// this fixture exercises the real table.
package cache

// Entry is one cached line.
type Entry struct {
	Dirty bool
	Data  map[uint16]uint64
}

// SetValue updates one tracked word.
func (e *Entry) SetValue(w uint16, v uint64) {
	if e.Data == nil {
		e.Data = map[uint16]uint64{}
	}
	e.Data[w] = v
}

// Cache is a trivial line container.
type Cache struct{ lines map[uint64]*Entry }

// Fill installs a line.
func (c *Cache) Fill(line uint64) {
	if c.lines == nil {
		c.lines = map[uint64]*Entry{}
	}
	c.lines[line] = &Entry{}
}

// Invalidate drops a line.
func (c *Cache) Invalidate(line uint64) { delete(c.lines, line) }

// Peek reads without touching recency state.
func (c *Cache) Peek(line uint64) (*Entry, bool) {
	e, ok := c.lines[line]
	return e, ok
}
