// The handler half of the hotalloc fixture: a pooled opCtx whose
// niladic Handle method is a hot-path root, one clean scheduling arm
// (pointer into interface boxes for free), and arms that allocate in
// every way the analyzer models — closure, append, map literal,
// interface boxing, &composite through a call edge, and an allocating
// call into another fixture package. panic arguments are exempt.
package gsim

import "fixture/engine"

// fillData mirrors the simulator's sparse response payload.
type fillData map[uint16]uint64

type entry struct{ data fillData }

type stat struct{ n int }

// opCtx is the pooled continuation context.
type opCtx struct {
	eng   *engine.Engine
	stage int
	line  uint64
	label string
	last  *entry
	free  []*opCtx
	vals  []uint64
}

// Handle dispatches on the stage tag; every arm is steady-state code.
func (c *opCtx) Handle() {
	switch c.stage {
	case 0:
		// A *opCtx is pointer-shaped: scheduling it through the Handler
		// interface boxes without allocating. No finding.
		c.eng.ScheduleHandler(1, c)
		//lint:allow hotalloc pool free-list append; growth is amortized across the run
		c.free = append(c.free, c)
	case 1:
		n := c.line
		retry := func() { c.line = n + 1 } // want `function literal allocates a closure in \(\*gsim\.opCtx\)\.Handle, reachable from hot path root opCtx\.Handle`
		retry()
		c.vals = append(c.vals, n) // want `append may grow its backing array in \(\*gsim\.opCtx\)\.Handle, reachable from hot path root opCtx\.Handle`
	case 2:
		c.label = engine.Describe("evict")
		c.fill(fillData{}) // want `map literal allocates in \(\*gsim\.opCtx\)\.Handle, reachable from hot path root opCtx\.Handle`
		c.log(stat{n: 1})  // want `argument boxes fixture/gsim\.stat into interface parameter of log in \(\*gsim\.opCtx\)\.Handle, reachable from hot path root opCtx\.Handle`
	default:
		// Exempt: a panicking path has left the steady state.
		panic("opCtx: bad stage " + c.label)
	}
}

// fill installs a response entry; it is reached from Handle through
// the call graph, so its allocation is still a finding.
func (c *opCtx) fill(d fillData) {
	c.last = &entry{data: d} // want `&composite literal escapes to the heap in \(\*gsim\.opCtx\)\.fill, reachable from hot path root opCtx\.Handle`
}

// log sinks a value through an interface parameter.
func (c *opCtx) log(v interface{}) { _ = v }
