// The event-loop half of the hotalloc fixture: the Run root, the
// Handler interface pooled contexts schedule through (with a
// decl-level allow on its amortized append), an allocating helper
// reachable from Run, an exported allocating function reachable only
// from gsim's Handle bodies, and a cold function whose allocations
// are not findings.
package engine

import "strconv"

// Handler is the allocation-free scheduling interface; pointer-shaped
// implementations box into it without allocating.
type Handler interface{ Handle() }

type event struct {
	at uint64
	h  Handler
}

// Engine is the fixture event loop.
type Engine struct {
	now  uint64
	heap []event
}

// ScheduleHandler enqueues h. The append is the sanctioned amortized
// growth site, excluded wholesale by the decl-level allow.
//
//lint:allow hotalloc amortized queue growth; steady state reuses the backing array
func (e *Engine) ScheduleHandler(lat uint64, h Handler) {
	e.heap = append(e.heap, event{at: e.now + lat, h: h})
}

// Run is the hot-path root: it drains the queue.
func (e *Engine) Run() {
	for len(e.heap) > 0 {
		ev := e.heap[len(e.heap)-1]
		e.heap = e.heap[:len(e.heap)-1]
		e.now = ev.at
		_ = e.trace()
		ev.h.Handle()
	}
}

// trace is reachable from Run, so its formatting call is a finding.
func (e *Engine) trace() string {
	return strconv.FormatUint(e.now, 10) // want `call to strconv\.FormatUint allocates in \(\*engine\.Engine\)\.trace, reachable from hot path root engine\.Run event loop`
}

// Describe renders an event label. It is reachable only from gsim's
// Handle bodies, so the finding is attributed to that root.
func Describe(tag string) string {
	return "event:" + tag // want `string concatenation allocates in engine\.Describe, reachable from hot path root opCtx\.Handle`
}

// Report is cold: no root reaches it, so its allocations are clean.
func Report() []string {
	return []string{"summary"}
}
