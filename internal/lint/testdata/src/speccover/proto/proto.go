// The implementation half of the speccover fixture: a DirCtrl with
// one capable arm per Table I event, one arm outside the table
// carrying the sanctioned allow (DropSharer), and one silent arm
// (Rogue) bound to no event.
package proto

type Line uint64

type Requester int

func (r Requester) Bit() uint64 { return 1 << uint(r) }

// Entry is one directory entry.
type Entry struct {
	Sharers uint64
}

// Dir is the minimal tracked directory.
type Dir struct {
	m map[Line]*Entry
}

// Ensure materializes the entry for l (the I→V allocation).
func (d *Dir) Ensure(l Line) *Entry {
	if d.m == nil {
		d.m = map[Line]*Entry{}
	}
	if e, ok := d.m[l]; ok {
		return e
	}
	e := &Entry{}
	d.m[l] = e
	return e
}

// Drop removes the entry for l (the V→I removal).
func (d *Dir) Drop(l Line) { delete(d.m, l) }

// Lookup finds the entry for l without side effects.
func (d *Dir) Lookup(l Line) (*Entry, bool) {
	e, ok := d.m[l]
	return e, ok
}

// TargetsOf expands a sharer bitmap into requester ids.
func TargetsOf(bits uint64) []Requester {
	var out []Requester
	for i := 0; i < 64; i++ {
		if bits&(1<<uint(i)) != 0 {
			out = append(out, Requester(i))
		}
	}
	return out
}

// DirCtrl implements the fixture's Table I arms.
type DirCtrl struct {
	Dir Dir
}

// LocalStore records the home module as the only sharer.
func (c *DirCtrl) LocalStore(l Line, r Requester) {
	e := c.Dir.Ensure(l)
	e.Sharers = r.Bit()
}

// RemoteLoad adds the requester to the sharer set.
func (c *DirCtrl) RemoteLoad(l Line, r Requester) {
	e := c.Dir.Ensure(l)
	e.Sharers = e.Sharers | r.Bit()
}

// RemoteStore invalidates the other sharers and keeps only the
// requester.
func (c *DirCtrl) RemoteStore(l Line, r Requester) []Requester {
	e := c.Dir.Ensure(l)
	t := TargetsOf(e.Sharers &^ r.Bit())
	e.Sharers = r.Bit()
	return t
}

// Invalidation clears the entry and fans out to every sharer.
func (c *DirCtrl) Invalidation(l Line) []Requester {
	e, ok := c.Dir.Lookup(l)
	if !ok {
		return nil
	}
	t := TargetsOf(e.Sharers)
	c.Dir.Drop(l)
	return t
}

// evictTargets expands the sharer set of a replaced entry; the
// directory's own eviction performs the V→I, so no Drop here.
func (c *DirCtrl) evictTargets(l Line) []Requester {
	e, ok := c.Dir.Lookup(l)
	if !ok {
		return nil
	}
	return TargetsOf(e.Sharers)
}

// DropSharer narrows the sharer set outside Table I.
//
//lint:allow speccover downgrade hint outside Table I; narrows sharer sets, never transitions state
func (c *DirCtrl) DropSharer(l Line, r Requester) {
	if e, ok := c.Dir.Lookup(l); ok {
		e.Sharers = e.Sharers &^ r.Bit()
	}
}

// Rogue rewrites sharer state with no event bound to it.
func (c *DirCtrl) Rogue(l Line) { // want `DirCtrl\.Rogue mutates directory state \(assign the sharer set\) but is bound to no Table I event`
	if e, ok := c.Dir.Lookup(l); ok {
		e.Sharers = 0
	}
}
