// The machine-readable half of the speccover fixture: enum constants
// under the names the analyzer resolves, a Rule table licensing every
// capable proto arm, and one dead rule demanding a capability its arm
// does not have.
package spec

import "fixture/proto"

// State is a directory state.
type State int

const (
	StateI State = iota
	StateV
)

// Event is a Table I event column.
type Event int

const (
	LocalLd Event = iota
	LocalSt
	RemoteLd
	RemoteSt
	ReplaceEntry
	Invalidation
)

// Guard selects between rule variants of one cell.
type Guard int

const (
	Always Guard = iota
	RequesterIsOnlySharer
)

// Update is the sharer-set action column.
type Update int

const (
	KeepSharers Update = iota
	AddRequester
	OnlyRequester
	ClearSharers
)

// Inv is the invalidation fan-out column.
type Inv int

const (
	InvNone Inv = iota
	InvOthers
	InvAll
)

// Rule is one Table I row.
type Rule struct {
	State  State
	Event  Event
	Guard  Guard
	Next   State
	Update Update
	Inv    Inv
}

// ctrl pins the implementation this table describes (and the import
// edge the facts flow along).
var ctrl *proto.DirCtrl

// Rules is the fixture Table I.
func Rules() []Rule {
	return []Rule{
		{State: StateI, Event: LocalLd, Next: StateI},
		{State: StateI, Event: LocalSt, Next: StateV, Update: OnlyRequester},
		{State: StateI, Event: RemoteLd, Next: StateV, Update: AddRequester},
		{State: StateI, Event: RemoteSt, Next: StateV, Update: OnlyRequester},
		{State: StateV, Event: LocalSt, Next: StateV, Update: OnlyRequester},
		{State: StateV, Event: RemoteLd, Next: StateV, Update: AddRequester},
		{State: StateV, Event: RemoteSt, Next: StateV, Update: OnlyRequester, Inv: InvOthers},
		{State: StateV, Event: ReplaceEntry, Next: StateI, Update: ClearSharers, Inv: InvAll},
		{State: StateV, Event: Invalidation, Next: StateI, Update: ClearSharers, Inv: InvAll},
		{State: StateV, Event: RemoteLd, Guard: RequesterIsOnlySharer, Update: ClearSharers}, // want `spec rule V×RemoteLd expects DirCtrl\.RemoteLoad to drop the entry, but it does not`
	}
}
