// Directive fixture: malformed //lint:allow forms are diagnostics in
// their own right and do not suppress the finding they sit next to.
// Checked with explicit assertions in lint_test.go (want comments
// cannot share a line with the directive under test).
package gsim

func missingReason(m map[int]int) {
	//lint:allow determinism
	for range m {
	}
}

func unknownName(m map[int]int) {
	//lint:allow nosuchpass because reasons
	for range m {
	}
}

func good(m map[int]int) {
	//lint:allow determinism commutative count; order cannot matter
	for range m {
	}
}
