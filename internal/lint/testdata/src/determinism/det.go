// Determinism fixture: the package is named gsim so the analyzer's
// simulator-package scoping applies.
package gsim

import (
	"math/rand"
	"time"
)

func mapOrder(m map[int]int) int {
	total := 0
	for k, v := range m { // want `range over map`
		total += k * v
	}
	return total
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

func unseeded() int {
	return rand.Intn(8) // want `process-global random source`
}

func spawn(f func()) {
	go f() // want `goroutine spawn`
}

// Clean: explicitly seeded generator, and method calls on it.
func seededOK() int {
	g := rand.New(rand.NewSource(1))
	return g.Intn(8)
}

// Clean: slice iteration is ordered.
func sliceOK(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// Clean: order-independent copy under a justified allow.
func allowedCopy(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	//lint:allow determinism key-for-key copy; each key is written independently, order cannot matter
	for k, v := range m {
		out[k] = v
	}
	return out
}
