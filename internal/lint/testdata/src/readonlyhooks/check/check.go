// Readonlyhooks fixture: observer roots by method name and by hook
// literal, mutating calls flagged through the facts (Lookup yes, Peek
// no), foreign field writes flagged structurally, and non-observer
// code left alone.
package check

import "fixture/cache"

// Checker observes a system.
type Checker struct {
	c    *cache.Cache
	seen int
}

// onEvent is a root by name: the observer entry point.
func (k *Checker) onEvent(ev int) {
	k.seen++        // checker-local state: fine
	_ = k.c.Peek(0) // read-only accessor: fine
	k.scan()
}

// scan is reachable from the observer, so its Lookup is a violation.
func (k *Checker) scan() {
	_ = k.c.Lookup(0) // want `mutates simulator state`
}

// Warm is NOT reachable from any observer: mutating freely is fine.
func Warm(c *cache.Cache) {
	_ = c.Lookup(0)
}

// system carries the hook fields the analyzer recognizes by name.
type system struct {
	OnEvent     func(int)
	OnLoadValue func(uint64)
}

// attach installs a hook literal: the literal's body is observer code.
func attach(sys *system, k *Checker) {
	sys.OnEvent = func(ev int) {
		e := k.c.Peek(0)
		e.Data[0] = uint64(ev) // want `writes state of cache\.Entry`
	}
}

// attachAllowed suppresses a deliberate foreign write with a reason.
func attachAllowed(sys *system, k *Checker) {
	sys.OnLoadValue = func(v uint64) {
		e := k.c.Peek(0)
		//lint:allow readonlyhooks scratch word reserved for the checker by contract
		e.Data[1] = v
	}
}
