// Cache stand-in for the readonlyhooks fixture: Lookup mutates LRU
// recency, Peek does not — exactly the distinction the mutability
// facts exist to make.
package cache

// Entry is one cached line with internal recency state.
type Entry struct {
	lru  int
	Data map[uint16]uint64
}

// Cache is a trivial set of entries.
type Cache struct {
	entries []Entry
	clock   int
}

// Lookup returns an entry and touches recency state: a mutation.
func (c *Cache) Lookup(i int) *Entry {
	c.clock++
	c.entries[i].lru = c.clock
	return &c.entries[i]
}

// Peek returns an entry without touching anything: read-only.
func (c *Cache) Peek(i int) *Entry { return &c.entries[i] }

// ForEach visits every entry.
func (c *Cache) ForEach(f func(*Entry)) {
	for i := range c.entries {
		f(&c.entries[i])
	}
}
