// The readonlyhooks analyzer: the conformance checker must be
// provably inert. internal/check documents that an attached checker
// "cannot change any simulation outcome" — it inspects caches and
// directories through Peek/ForEach, never Lookup (which touches LRU
// recency). Before this pass, that property rested on a deep-equal
// test; now it is a compile-time guarantee: no code reachable from a
// checker observer may call a simulator API whose mutability fact
// (facts.go) says it mutates, nor write a field of another package's
// type.
//
// Roots, in packages named check:
//
//   - methods and functions named onEvent/OnEvent;
//   - function literals installed into hook fields (assignments to
//     selectors named OnEvent, OnLoadValue, or OnWarpFinished).
//
// From the roots the pass closes over same-package static calls
// (function literals are walked inside whatever declaration contains
// them, so hook closures are covered directly) and flags, inside the
// reachable set:
//
//   - any call to a function from another in-module package whose
//     fact is "mutates", with the distinction the facts pass earns
//     its keep on: cache.Lookup (LRU write) is flagged, cache.Peek
//     is not;
//   - any assignment through a pointer/map/slice rooted at a value of
//     another in-module package's named type (e.g. writing a
//     directory entry's sharer set obtained from ForEach), which no
//     call-based rule can see.

package lint

import (
	"go/ast"
	"go/types"
)

// hookFieldNames are the simulator's observer-installation points.
var hookFieldNames = map[string]bool{
	"OnEvent":        true,
	"OnLoadValue":    true,
	"OnWarpFinished": true,
}

// AnalyzerReadonlyHooks makes checker inertness a compile-time
// property.
var AnalyzerReadonlyHooks = &Analyzer{
	Name: "readonlyhooks",
	Doc: "code reachable from checker observers and OnEvent sinks must not " +
		"call mutating simulator APIs",
	Run: runReadonlyHooks,
}

func runReadonlyHooks(pass *Pass) []Diagnostic {
	if pass.Pkg.Name() != "check" {
		return nil
	}

	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Roots: observer entry points. Hook-field closures are walked as
	// part of whichever declaration contains the assignment, so adding
	// that declaration to the root set covers the closure body.
	roots := map[*types.Func]bool{}
	for fn := range decls {
		if fn.Name() == "onEvent" || fn.Name() == "OnEvent" {
			roots[fn] = true
		}
	}
	for fn, fd := range decls {
		if roots[fn] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !hookFieldNames[sel.Sel.Name] || i >= len(as.Rhs) {
					continue
				}
				if containsFuncLit(as.Rhs[i]) {
					roots[fn] = true
				}
			}
			return true
		})
	}

	// Close over same-package static calls.
	reachable := map[*types.Func]bool{}
	var frontier []*types.Func
	for fn := range roots {
		reachable[fn] = true
		frontier = append(frontier, fn)
	}
	for len(frontier) > 0 {
		fn := frontier[0]
		frontier = frontier[1:]
		fd := decls[fn]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			target := callee(pass.Info, call)
			if target != nil && target.Pkg() == pass.Pkg && !reachable[target] {
				reachable[target] = true
				frontier = append(frontier, target)
			}
			return true
		})
	}

	var diags []Diagnostic
	for fn := range reachable {
		fd := decls[fn]
		if fd == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				target := callee(pass.Info, n)
				if target == nil || target.Pkg() == nil || target.Pkg() == pass.Pkg {
					return true
				}
				if !sameModule(target.Pkg().Path(), pass.Pkg.Path()) {
					return true
				}
				if pass.Facts.Mutates[target.FullName()] {
					pass.report(&diags, "readonlyhooks", n.Pos(),
						"observer path %s calls %s, which mutates simulator state; "+
							"checker hooks must be read-only (use Peek/ForEach-style accessors)",
						fn.Name(), target.FullName())
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					// Installing a hook is the sanctioned foreign write.
					if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && hookFieldNames[sel.Sel.Name] {
						continue
					}
					if t, bad := foreignWrite(pass, lhs); bad {
						pass.report(&diags, "readonlyhooks", lhs.Pos(),
							"observer path %s writes state of %s; checker hooks must be read-only",
							fn.Name(), t)
					}
				}
			case *ast.IncDecStmt:
				if t, bad := foreignWrite(pass, n.X); bad {
					pass.report(&diags, "readonlyhooks", n.X.Pos(),
						"observer path %s writes state of %s; checker hooks must be read-only",
						fn.Name(), t)
				}
			}
			return true
		})
	}
	return diags
}

// foreignWrite reports whether lhs is a write that escapes local
// storage (pointer/map/slice on the path) rooted at a value of another
// in-module package's named type.
func foreignWrite(pass *Pass, lhs ast.Expr) (string, bool) {
	root, real := writeTarget(pass, lhs)
	if !real || root == nil {
		return "", false
	}
	obj := pass.Info.Uses[root]
	if obj == nil {
		obj = pass.Info.Defs[root]
	}
	if obj == nil {
		return "", false
	}
	t := obj.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return "", false
	}
	p := n.Obj().Pkg()
	if p == pass.Pkg || !sameModule(p.Path(), pass.Pkg.Path()) {
		return "", false
	}
	return p.Name() + "." + n.Obj().Name(), true
}

// containsFuncLit reports whether an expression contains a function
// literal (the installed hook body).
func containsFuncLit(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			found = true
		}
		return !found
	})
	return found
}
