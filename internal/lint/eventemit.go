// The eventemit analyzer: every protocol-state mutation in the gsim
// package must happen inside a function that (possibly transitively)
// reaches (*System).emit. The runtime conformance checker
// (internal/check) is only as good as the event stream it observes; a
// new transition handler that fills, invalidates, dirties, or
// retires lines without emitting leaves the checker blind to exactly
// the state change it exists to audit. This pass makes "silent
// mutation" a build-time error instead of a fuzz-luck discovery.
//
// Mechanics: the protocol-visible mutation surface is a fixed table of
// simulator APIs (cache fills/invalidations/flushes, directory
// transitions of Table I, sharer-set edits, DRAM writes, dirty-bit
// sets). The pass builds the gsim-internal static call graph
// (function literals attributed to their enclosing declaration),
// marks every function that can reach an emit call, and flags each
// mutation site inside a function that cannot. Reachability — not
// path-sensitivity — is the contract: a handler that emits on one
// branch and mutates on another passes; a handler with no emit
// anywhere in its call tree does not. Helpers whose events are
// emitted by every caller (pure absorption layers) carry
// //lint:allow eventemit directives naming the covering event.

package lint

import (
	"go/ast"
	"go/types"
)

// mutatingSimAPIs is the protocol-visible mutation surface, keyed by
// "pkgname.Type.Method" (package name, not import path, so fixtures
// exercise the same table).
var mutatingSimAPIs = map[string]bool{
	"cache.Cache.Fill":             true,
	"cache.Cache.Invalidate":       true,
	"cache.Cache.InvalidateRegion": true,
	"cache.Cache.InvalidateWhere":  true,
	"cache.Cache.FlushDirty":       true,
	"cache.Entry.SetValue":         true,
	"cache.Entry.MergeFrom":        true,
	"proto.DirCtrl.RemoteLoad":     true,
	"proto.DirCtrl.RemoteStore":    true,
	"proto.DirCtrl.LocalStore":     true,
	"proto.DirCtrl.Invalidation":   true,
	"proto.DirCtrl.DropSharer":     true,
	"directory.Dir.Ensure":         true,
	"directory.Dir.Drop":           true,
	"directory.Sharers.Add":        true,
	"directory.Sharers.Del":        true,
	"memory.DRAM.StoreValue":       true,
}

// AnalyzerEventEmit enforces the mutate-implies-emit discipline in
// gsim.
var AnalyzerEventEmit = &Analyzer{
	Name: "eventemit",
	Doc: "every protocol-state mutation in gsim must be inside a function " +
		"that reaches (*System).emit",
	Run: runEventEmit,
}

func runEventEmit(pass *Pass) []Diagnostic {
	if pass.Pkg.Name() != "gsim" {
		return nil
	}

	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[fn] = fd
			}
		}
	}

	// Call graph edges within the package, plus per-decl direct facts.
	calls := map[*types.Func]map[*types.Func]bool{}
	emitsDirect := map[*types.Func]bool{}
	type mutation struct {
		fn   *types.Func
		node ast.Node
		what string
	}
	var mutations []mutation

	for fn, fd := range decls {
		calls[fn] = map[*types.Func]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				target := callee(pass.Info, n)
				if target == nil {
					return true
				}
				if isEmit(target) {
					emitsDirect[fn] = true
				}
				if target.Pkg() == pass.Pkg {
					calls[fn][target] = true
				}
				if key := apiKey(target); mutatingSimAPIs[key] {
					mutations = append(mutations, mutation{fn, n, key})
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if key, ok := dirtyBitWrite(pass, lhs); ok {
						mutations = append(mutations, mutation{fn, lhs, key})
					}
				}
			}
			return true
		})
	}

	// Reaches-emit fixpoint over the reversed call graph.
	reaches := map[*types.Func]bool{}
	for fn := range emitsDirect {
		reaches[fn] = true
	}
	for changed := true; changed; {
		changed = false
		for fn, targets := range calls {
			if reaches[fn] {
				continue
			}
			for t := range targets {
				if reaches[t] {
					reaches[fn] = true
					changed = true
					break
				}
			}
		}
	}

	var diags []Diagnostic
	for _, m := range mutations {
		if reaches[m.fn] {
			continue
		}
		pass.report(&diags, "eventemit", m.node.Pos(),
			"%s mutates protocol state (%s) but cannot reach (*System).emit; "+
				"emit an event on this path or annotate with //lint:allow eventemit <covering event>",
			m.fn.Name(), m.what)
	}
	return diags
}

// isEmit recognizes the (*System).emit method of a package named gsim.
func isEmit(fn *types.Func) bool {
	if fn.Name() != "emit" {
		return false
	}
	n := recvNamed(fn)
	return n != nil && n.Obj().Name() == "System" &&
		n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "gsim"
}

// apiKey renders a method as "pkgname.Type.Method" for table lookup;
// plain functions and methods of unnamed types return "".
func apiKey(fn *types.Func) string {
	n := recvNamed(fn)
	if n == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + fn.Name()
}

// dirtyBitWrite recognizes assignments to the Dirty field of a
// cache.Entry — the write-back design option's state bit, which the
// API table cannot see because it is a plain field store.
func dirtyBitWrite(pass *Pass, lhs ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Dirty" {
		return "", false
	}
	t := pass.Info.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Name() != "Entry" || n.Obj().Pkg() == nil || n.Obj().Pkg().Name() != "cache" {
		return "", false
	}
	return "cache.Entry.Dirty write", true
}
