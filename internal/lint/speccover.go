// The speccover analyzer: the machine-readable Table I
// (internal/proto/spec) and its implementation (proto.DirCtrl) must
// cover each other. The runtime differ (spec.Diff) catches divergence
// on the randomized sequences it happens to generate; this pass is
// its static complement — a dropped rule or an unjustified transition
// arm is rejected at compile time, before any sequence runs.
//
// Two halves, stitched through a cross-package fact:
//
//   - In the package named proto, every method on the type DirCtrl
//     gets an ArmFact recording its directory-mutation capabilities:
//     does the body assign a Sharers field, call Drop, call Ensure,
//     call TargetsOf? (facts.go / computeArmFacts.)
//   - In the package named spec, every composite literal of the Rule
//     struct with constant fields is checked both ways against those
//     facts:
//
//     Forward (no dead rules): a rule whose update/invalidation
//     columns require work — AddRequester/OnlyRequester need a sharer
//     assignment, ClearSharers needs a Drop (except ReplaceEntry,
//     where the directory's own eviction performs the V→I),
//     InvOthers/InvAll need a TargetsOf fan-out, I→V needs an Ensure
//     — must bind to a DirCtrl arm with those capabilities.
//
//     Reverse (no silent transitions): every DirCtrl arm with
//     capabilities must be justified by some rule of its event. An
//     arm bound to no event (or with a capability no rule of its
//     event licenses) is exactly the "silent transition" class PR 3
//     found dynamically.
//
// Event→arm binding is by method name: LocalSt→LocalStore,
// RemoteLd→RemoteLoad, RemoteSt→RemoteStore, ReplaceEntry→evictTargets,
// Invalidation→Invalidation; LocalLd is inert (loads by the home GPM
// touch no directory state). Spec enum values are resolved by constant
// name from the spec package's own scope, so the pass tracks the
// encoding, not hard-coded iota positions.
//
// Suppression: `//lint:allow speccover <reason>` on (or directly
// above) a DirCtrl method declaration marks the arm as deliberately
// outside Table I — the one trunk example is DropSharer, the optional
// downgrade optimization the paper discusses outside the table.

package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// AnalyzerSpecCover cross-checks spec rules against DirCtrl arms.
var AnalyzerSpecCover = &Analyzer{
	Name: "speccover",
	Doc: "every guarded Table I spec rule must map to a capable DirCtrl arm " +
		"and every state-mutating arm must be justified by a rule",
	Run: runSpecCover,
}

// ArmFact records one DirCtrl method's directory-mutation
// capabilities for the speccover analyzer.
type ArmFact struct {
	// Name is the bare method name ("RemoteStore").
	Name string
	// Pos is the "file:line:col" of the method declaration.
	Pos string
	// AssignsSharers: the body assigns a .Sharers field.
	AssignsSharers bool
	// CallsDrop: the body calls a method named Drop (the V→I entry
	// removal).
	CallsDrop bool
	// CallsEnsure: the body calls a method named Ensure (the I→V entry
	// allocation).
	CallsEnsure bool
	// CallsTargetsOf: the body expands a sharer set into invalidation
	// targets via TargetsOf.
	CallsTargetsOf bool
	// Allowed: the declaration carries //lint:allow speccover.
	Allowed bool
}

// computeArmFacts fills arms with the capabilities of this package's
// DirCtrl methods. Only packages named proto can contribute.
func computeArmFacts(pass *Pass, arms map[string]ArmFact) {
	if pass.Pkg.Name() != "proto" {
		return
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			named := recvNamed(fn)
			if named == nil || named.Obj().Name() != "DirCtrl" {
				continue
			}
			pos := pass.Fset.Position(fd.Pos())
			fact := ArmFact{
				Name:    fn.Name(),
				Pos:     pos.String(),
				Allowed: pass.allowedAt("speccover", pos.Filename, pos.Line),
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "Sharers" {
							fact.AssignsSharers = true
						}
					}
				case *ast.CallExpr:
					if callee := callee(pass.Info, n); callee != nil {
						switch callee.Name() {
						case "Drop":
							fact.CallsDrop = true
						case "Ensure":
							fact.CallsEnsure = true
						case "TargetsOf":
							fact.CallsTargetsOf = true
						}
					}
				}
				return true
			})
			arms[fn.FullName()] = fact
		}
	}
}

// caps is the capability vector a rule requires or an arm provides.
type caps struct {
	assign, drop, targets, ensure bool
}

func (c caps) String() string {
	var parts []string
	if c.assign {
		parts = append(parts, "assign the sharer set")
	}
	if c.drop {
		parts = append(parts, "drop the entry")
	}
	if c.targets {
		parts = append(parts, "expand invalidation targets")
	}
	if c.ensure {
		parts = append(parts, "allocate the entry")
	}
	if len(parts) == 0 {
		return "nothing"
	}
	out := parts[0]
	for _, p := range parts[1:] {
		out += ", " + p
	}
	return out
}

// specEnums are the constant names speccover resolves from the spec
// package scope, keyed by enum kind.
type specEnums struct {
	states  map[int64]string // StateI, StateV
	events  map[int64]string // LocalLd..Invalidation
	updates map[string]int64 // KeepSharers..ClearSharers
	invs    map[string]int64 // InvNone..InvAll
}

// eventArm binds a spec event name to the DirCtrl method implementing
// it; "" marks an inert event with no directory-side work.
var eventArm = map[string]string{
	"LocalLd":      "",
	"LocalSt":      "LocalStore",
	"RemoteLd":     "RemoteLoad",
	"RemoteSt":     "RemoteStore",
	"ReplaceEntry": "evictTargets",
	"Invalidation": "Invalidation",
}

func runSpecCover(pass *Pass) []Diagnostic {
	if pass.Pkg.Name() != "spec" {
		return nil
	}
	ruleObj := pass.Pkg.Scope().Lookup("Rule")
	if ruleObj == nil {
		return nil
	}
	ruleType, ok := ruleObj.Type().(*types.Named)
	if !ok {
		return nil
	}
	ruleStruct, ok := ruleType.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	enums, ok := resolveSpecEnums(pass)
	if !ok {
		return nil
	}

	// Arms by bare method name, from the proto facts.
	armsByName := map[string]ArmFact{}
	for _, a := range pass.Facts.Arms {
		armsByName[a.Name] = a
	}
	if len(armsByName) == 0 {
		return nil
	}

	type rule struct {
		lit    *ast.CompositeLit
		fields map[string]int64
	}
	var rules []rule
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(lit)
			if t == nil || !types.Identical(t, ruleType) {
				return true
			}
			fields, ok := constRuleFields(pass, lit, ruleStruct)
			if !ok {
				return true // dynamically-built rule: out of static scope
			}
			rules = append(rules, rule{lit, fields})
			return true
		})
	}

	need := func(fields map[string]int64) caps {
		var c caps
		upd, inv := fields["Update"], fields["Inv"]
		c.assign = upd == enums.updates["AddRequester"] || upd == enums.updates["OnlyRequester"]
		c.drop = upd == enums.updates["ClearSharers"] &&
			enums.events[fields["Event"]] != "ReplaceEntry"
		c.targets = inv != enums.invs["InvNone"]
		c.ensure = enums.states[fields["State"]] == "I" && enums.states[fields["Next"]] == "V"
		return c
	}

	var diags []Diagnostic

	// Forward: every rule that requires work binds to a capable arm.
	licensed := map[string]caps{} // event name → union of rule needs
	for _, r := range rules {
		evName, ok := enums.events[r.fields["Event"]]
		if !ok {
			continue
		}
		n := need(r.fields)
		lic := licensed[evName]
		lic.assign = lic.assign || n.assign
		lic.drop = lic.drop || n.drop
		lic.targets = lic.targets || n.targets
		lic.ensure = lic.ensure || n.ensure
		licensed[evName] = lic

		if n == (caps{}) {
			continue
		}
		cell := fmt.Sprintf("%s×%s", enums.states[r.fields["State"]], evName)
		armName, bound := eventArm[evName]
		if !bound || armName == "" {
			pass.report(&diags, "speccover", r.lit.Pos(),
				"spec rule %s requires an implementation arm (%s) but event %s has none",
				cell, n, evName)
			continue
		}
		arm, ok := armsByName[armName]
		if !ok {
			pass.report(&diags, "speccover", r.lit.Pos(),
				"spec rule %s binds to DirCtrl.%s, which does not exist", cell, armName)
			continue
		}
		missing := caps{
			assign:  n.assign && !arm.AssignsSharers,
			drop:    n.drop && !arm.CallsDrop,
			targets: n.targets && !arm.CallsTargetsOf,
			ensure:  n.ensure && !arm.CallsEnsure,
		}
		if missing != (caps{}) {
			pass.report(&diags, "speccover", r.lit.Pos(),
				"spec rule %s expects DirCtrl.%s to %s, but it does not", cell, armName, missing)
		}
	}

	// Reverse: every arm capability is licensed by some rule of its
	// event.
	armEvent := map[string]string{} // method name → event name
	for ev, arm := range eventArm {
		if arm != "" {
			armEvent[arm] = ev
		}
	}
	for _, arm := range armsByName {
		if arm.Allowed {
			continue
		}
		has := caps{
			assign:  arm.AssignsSharers,
			drop:    arm.CallsDrop,
			targets: arm.CallsTargetsOf,
			ensure:  arm.CallsEnsure,
		}
		if has == (caps{}) {
			continue
		}
		ev, bound := armEvent[arm.Name]
		if !bound {
			diags = append(diags, Diagnostic{
				Position: parsePosition(arm.Pos),
				Analyzer: "speccover",
				Message: fmt.Sprintf("DirCtrl.%s mutates directory state (%s) but is bound to no "+
					"Table I event; add a spec rule or //lint:allow speccover", arm.Name, has),
			})
			continue
		}
		lic := licensed[ev]
		unlicensed := caps{
			assign:  has.assign && !lic.assign,
			drop:    has.drop && !lic.drop,
			targets: has.targets && !lic.targets,
			ensure:  has.ensure && !lic.ensure,
		}
		if unlicensed != (caps{}) {
			diags = append(diags, Diagnostic{
				Position: parsePosition(arm.Pos),
				Analyzer: "speccover",
				Message: fmt.Sprintf("DirCtrl.%s can %s, but no %s spec rule licenses it "+
					"(silent transition)", arm.Name, unlicensed, ev),
			})
		}
	}
	return diags
}

// resolveSpecEnums maps the spec package's enum constants by name. A
// package missing any of the names is not a Table I spec encoding and
// is skipped.
func resolveSpecEnums(pass *Pass) (specEnums, bool) {
	e := specEnums{
		states:  map[int64]string{},
		events:  map[int64]string{},
		updates: map[string]int64{},
		invs:    map[string]int64{},
	}
	val := func(name string) (int64, bool) {
		c, ok := pass.Pkg.Scope().Lookup(name).(*types.Const)
		if !ok {
			return 0, false
		}
		v, ok := constant.Int64Val(c.Val())
		return v, ok
	}
	for name, short := range map[string]string{"StateI": "I", "StateV": "V"} {
		v, ok := val(name)
		if !ok {
			return e, false
		}
		e.states[v] = short
	}
	for ev := range eventArm {
		v, ok := val(ev)
		if !ok {
			return e, false
		}
		e.events[v] = ev
	}
	for _, name := range []string{"KeepSharers", "AddRequester", "OnlyRequester", "ClearSharers"} {
		v, ok := val(name)
		if !ok {
			return e, false
		}
		e.updates[name] = v
	}
	for _, name := range []string{"InvNone", "InvOthers", "InvAll"} {
		v, ok := val(name)
		if !ok {
			return e, false
		}
		e.invs[name] = v
	}
	return e, true
}

// constRuleFields extracts a Rule literal's fields as constant values;
// omitted fields are zero. It fails if any present field is
// non-constant.
func constRuleFields(pass *Pass, lit *ast.CompositeLit, st *types.Struct) (map[string]int64, bool) {
	fields := map[string]int64{}
	for i := 0; i < st.NumFields(); i++ {
		fields[st.Field(i).Name()] = 0
	}
	constVal := func(e ast.Expr) (int64, bool) {
		tv, ok := pass.Info.Types[e]
		if !ok || tv.Value == nil {
			return 0, false
		}
		return constant.Int64Val(tv.Value)
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				return nil, false
			}
			v, ok := constVal(kv.Value)
			if !ok {
				return nil, false
			}
			fields[key.Name] = v
			continue
		}
		if i >= st.NumFields() {
			return nil, false
		}
		v, ok := constVal(elt)
		if !ok {
			return nil, false
		}
		fields[st.Field(i).Name()] = v
	}
	return fields, true
}
