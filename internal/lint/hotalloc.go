// The hotalloc analyzer: no allocation is reachable from the
// simulator's steady-state hot path. PR 6 made the event engine and
// the gsim continuation paths zero-alloc, but the guarantee was
// enforced only dynamically (TestScheduleSteadyStateZeroAlloc, the
// hmgperf allocs/event gate). This pass turns it into a compile-time
// invariant: a call graph is rooted at the event loop and every
// handler body, a per-function "may allocate" fact is propagated
// across packages, and any allocation site reachable from a root is a
// finding.
//
// Roots (matched by name convention, so fixtures exercise the same
// rules as the repo):
//
//   - the method Run on a type named Engine in a package named engine
//     (the event loop);
//   - any niladic method named Handle — the engine.Handler interface
//     implemented by gsim's pooled opCtx stage dispatcher, whose
//     case arms are the steady-state continuation bodies.
//
// Allocation sites recorded in the per-function fact (facts.go FnFact):
//
//   - function literals (a closure allocates its context);
//   - &CompositeLit and slice/map composite literals;
//   - make, new, and append (append may grow its backing array —
//     amortized-growth sites carry an allow with the amortization
//     argument);
//   - string concatenation and string↔[]byte/[]rune conversions;
//   - calls into allocating stdlib packages (fmt, errors, strings,
//     strconv, sort, bytes) — this is how fmt.Errorf/error wrapping
//     on a hot path is caught;
//   - interface boxing: a concrete non-pointer-shaped value passed to
//     an interface-typed parameter or converted to an interface type.
//     Pointer-shaped values (pointers, maps, chans, funcs) box without
//     allocating, which is exactly why engine.ScheduleHandler(*opCtx)
//     is free and stays clean.
//
// Arguments of panic(...) calls are exempt: a panicking path has left
// the steady state by definition.
//
// Known unsoundness, accepted on purpose: dynamic calls through
// stored func values (reply/done continuations, the OnEvent hook) are
// invisible to the call graph, as are allocations hidden behind map
// growth and &localVariable escapes. The hmgperf allocs/event gate
// remains the runtime backstop for those.
//
// Suppression: `//lint:allow hotalloc <reason>` on the site line or
// the line above, or on (or directly above) the enclosing function
// declaration — a body-level allow excludes every site in that
// function, which keeps justified continuation-heavy functions (e.g.
// gsim's per-op reply closures, budgeted by the perf gate) to one
// directive each.

package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// AnalyzerHotAlloc makes the zero-alloc hot path a compile-time
// property.
var AnalyzerHotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "no allocation (closure, composite literal, make/append, interface " +
		"boxing, fmt) may be reachable from engine.Run or a Handle body",
	Run: runHotAlloc,
}

// FnFact is the hotalloc fact for one function: its own allocation
// sites (after body-level allows) and its static in-module callees.
type FnFact struct {
	// Allocs are the unsuppressed allocation sites in the body,
	// including nested function literals.
	Allocs []AllocSite
	// Calls are the FullNames of statically-resolved callees within
	// this module (same package included).
	Calls []string
}

// AllocSite is one allocation, positioned for cross-package reporting.
type AllocSite struct {
	// Pos is the "file:line:col" position of the site.
	Pos string
	// What describes the allocation.
	What string
}

// allocStdlib are standard-library packages whose exported API
// allocates on essentially every call path (formatting, error
// construction, string building, sorting).
var allocStdlib = map[string]bool{
	"fmt": true, "errors": true, "strings": true,
	"strconv": true, "sort": true, "bytes": true,
}

// computeAllocFacts fills fns with this package's per-function
// hotalloc facts.
func computeAllocFacts(pass *Pass, fns map[string]*FnFact) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns[fn.FullName()] = allocFactFor(pass, fd)
		}
	}
}

// allocFactFor walks one declaration body, collecting allocation sites
// and static in-module callees. Function literals are walked in place,
// so a closure's body attributes to the declaration that creates it.
func allocFactFor(pass *Pass, fd *ast.FuncDecl) *FnFact {
	fact := &FnFact{}
	declLine := pass.Fset.Position(fd.Pos()).Line

	// panic(...) argument ranges are exempt from site collection.
	var panicRanges [][2]token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
				panicRanges = append(panicRanges, [2]token.Pos{call.Lparen, call.Rparen})
			}
		}
		return true
	})
	inPanic := func(pos token.Pos) bool {
		for _, r := range panicRanges {
			if r[0] <= pos && pos <= r[1] {
				return true
			}
		}
		return false
	}

	seenCall := map[string]bool{}
	consumed := map[ast.Node]bool{} // composite literals reported via their &
	site := func(n ast.Node, what string) {
		pos := pass.Fset.Position(n.Pos())
		if pass.allowedAt("hotalloc", pos.Filename, pos.Line, declLine) {
			return
		}
		fact.Allocs = append(fact.Allocs, AllocSite{Pos: pos.String(), What: what})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if inPanic(n.Pos()) {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			site(n, "function literal allocates a closure")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					consumed[cl] = true
					site(n, "&composite literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if consumed[n] {
				return true
			}
			switch pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				site(n, "slice literal allocates its backing array")
			case *types.Map:
				site(n, "map literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := pass.Info.TypeOf(n).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					site(n, "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			hotallocCall(pass, n, site, seenCall, fact)
		}
		return true
	})
	return fact
}

// hotallocCall classifies one call expression: builtin allocators,
// string conversions, allocating stdlib calls, interface boxing at the
// call boundary, and the in-module call-graph edge.
func hotallocCall(pass *Pass, call *ast.CallExpr, site func(ast.Node, string), seenCall map[string]bool, fact *FnFact) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				site(call, "make allocates")
			case "new":
				site(call, "new allocates")
			case "append":
				site(call, "append may grow its backing array")
			}
			return
		}
	}

	// Conversions: string↔[]byte/[]rune allocate; conversion to an
	// interface type boxes.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := pass.Info.TypeOf(call.Args[0])
		if from != nil {
			switch {
			case isString(to) && isByteOrRuneSlice(from.Underlying()):
				site(call, "[]byte/[]rune→string conversion allocates")
			case isByteOrRuneSlice(to) && isString(from.Underlying()):
				site(call, "string→[]byte/[]rune conversion allocates")
			case types.IsInterface(tv.Type) && !types.IsInterface(from) && !pointerShaped(from):
				site(call, fmt.Sprintf("conversion boxes %s into an interface", from))
			}
		}
		return
	}

	fn := callee(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	pkgPath := fn.Pkg().Path()
	if allocStdlib[pkgPath] {
		site(call, fmt.Sprintf("call to %s.%s allocates", fn.Pkg().Name(), fn.Name()))
		return
	}
	if sameModule(pkgPath, pass.Pkg.Path()) {
		if name := fn.FullName(); !seenCall[name] {
			seenCall[name] = true
			fact.Calls = append(fact.Calls, name)
		}
	}

	// Interface boxing at the parameter boundary: a concrete value of a
	// non-pointer-shaped type passed where an interface is expected gets
	// heap-boxed. Passing a pointer (gsim's *opCtx into
	// engine.ScheduleHandler) does not.
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() {
			if i < params.Len()-1 {
				pt = params.At(i).Type()
			} else if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || pointerShaped(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		site(arg, fmt.Sprintf("argument boxes %s into interface parameter of %s", at, fn.Name()))
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether a value of type t fits in a pointer
// word, so boxing it into an interface copies the word without heap
// allocation.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// runHotAlloc finds this package's hot-path roots and walks the merged
// cross-package call-graph facts, reporting every reachable allocation
// site.
func runHotAlloc(pass *Pass) []Diagnostic {
	type root struct {
		fn   *types.Func
		why  string
		decl *ast.FuncDecl
	}
	var roots []root
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			switch {
			case pass.Pkg.Name() == "engine" && fn.Name() == "Run" && recvNamed(fn) != nil && recvNamed(fn).Obj().Name() == "Engine":
				roots = append(roots, root{fn, "engine.Run event loop", fd})
			case fn.Name() == "Handle" && niladicMethod(fn):
				roots = append(roots, root{fn, fmt.Sprintf("%s.Handle", recvName(fn)), fd})
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// BFS over the fact call graph; remember which root first reached
	// each function for the report.
	from := map[string]string{}
	var frontier []string
	for _, r := range roots {
		name := r.fn.FullName()
		if _, ok := from[name]; !ok {
			from[name] = r.why
			frontier = append(frontier, name)
		}
	}
	for len(frontier) > 0 {
		name := frontier[0]
		frontier = frontier[1:]
		fact := pass.Facts.Fns[name]
		if fact == nil {
			continue
		}
		for _, callee := range fact.Calls {
			if _, ok := from[callee]; !ok {
				from[callee] = from[name]
				frontier = append(frontier, callee)
			}
		}
	}

	var diags []Diagnostic
	for name, why := range from {
		fact := pass.Facts.Fns[name]
		if fact == nil {
			continue
		}
		for _, s := range fact.Allocs {
			diags = append(diags, Diagnostic{
				Position: parsePosition(s.Pos),
				Analyzer: "hotalloc",
				Message: fmt.Sprintf("%s in %s, reachable from hot path root %s",
					s.What, shortFnName(name), why),
			})
		}
	}
	return diags
}

// niladicMethod reports whether fn is a method with no parameters and
// no results — the engine.Handler shape.
func niladicMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// recvName returns the receiver type name of a method for messages.
func recvName(fn *types.Func) string {
	if n := recvNamed(fn); n != nil {
		return n.Obj().Name()
	}
	return "?"
}

// shortFnName strips the package path from a FullName for messages:
// "(hmg/internal/gsim.*System).fetch" → "(*System).fetch".
func shortFnName(full string) string {
	if i := strings.LastIndex(full, "/"); i >= 0 {
		// Drop everything up to the last path separator, keeping any
		// leading "(" or "(*" receiver syntax.
		prefix := ""
		for _, r := range full {
			if r == '(' || r == '*' {
				prefix += string(r)
				continue
			}
			break
		}
		return prefix + full[i+1:]
	}
	return full
}

// parsePosition turns an AllocSite "file:line:col" back into a
// token.Position for cross-package diagnostics.
func parsePosition(s string) token.Position {
	var p token.Position
	rest := s
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		if col, err := strconv.Atoi(rest[i+1:]); err == nil {
			p.Column = col
			rest = rest[:i]
		}
	}
	if i := strings.LastIndexByte(rest, ':'); i >= 0 {
		if line, err := strconv.Atoi(rest[i+1:]); err == nil {
			p.Line = line
			rest = rest[:i]
		}
	}
	p.Filename = rest
	return p
}
