// The exhaustive analyzer: a switch over one of the module's enums
// (proto.Kind, gsim.EventKind, trace.Scope, trace.OpKind, msg.Kind,
// directory states, ...) must either cover every declared value or
// carry an explicit default that panics or returns. The paper repo
// grows by adding enum values — a seventh protocol, a 13th event kind,
// a new scope — and the bug class this kills is the silent
// fall-through: the new value slides past every old switch and the
// simulator quietly does nothing, which the runtime checker can only
// catch if the miss happens to violate an invariant on a fuzzed path.
//
// An enum, for this pass, is any named integer type declared in this
// module (leading import-path element matches the current package)
// with at least two constants of exactly that type in its defining
// package's scope. Coverage is by constant value, so aliases
// (internal names for the same value) count. A default clause
// satisfies the rule only if it panics, returns, or calls a
// fatal/exit function — a default that silently absorbs is precisely
// the fall-through being hunted.

package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// AnalyzerExhaustive enforces full-coverage switches over module enums.
var AnalyzerExhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches over module enum types must cover every value or have a " +
		"default that panics/returns",
	Run: runExhaustive,
}

func runExhaustive(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitch(pass, sw, &diags)
			return true
		})
	}
	return diags
}

func checkSwitch(pass *Pass, sw *ast.SwitchStmt, diags *[]Diagnostic) {
	named, ok := pass.Info.TypeOf(sw.Tag).(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !sameModule(obj.Pkg().Path(), pass.Pkg.Path()) {
		return
	}

	// Enumerate the enum: constants of exactly this type in the
	// defining package's scope, grouped by value (aliases collapse).
	values := enumValues(obj.Pkg().Scope(), named)
	if len(values) < 2 {
		return
	}

	covered := map[int64]bool{}
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.Info.Types[e]
			if !ok || tv.Value == nil {
				// A non-constant case defeats value analysis; treat the
				// switch as out of scope.
				return
			}
			if v, exact := constant.Int64Val(tv.Value); exact {
				covered[v] = true
			}
		}
	}

	var missing []string
	for v, names := range values {
		if !covered[v] {
			missing = append(missing, names[0])
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)

	enum := obj.Pkg().Name() + "." + obj.Name()
	if defaultClause == nil {
		pass.report(diags, "exhaustive", sw.Pos(),
			"switch over %s is not exhaustive: missing %s; add the cases or a default that panics/returns",
			enum, strings.Join(missing, ", "))
		return
	}
	if !defaultFailsLoudly(pass, defaultClause) {
		pass.report(diags, "exhaustive", defaultClause.Pos(),
			"switch over %s is not exhaustive (missing %s) and its default absorbs silently; "+
				"panic or return in the default, or cover the values",
			enum, strings.Join(missing, ", "))
	}
}

// enumValues collects the constants of exactly type named from a
// package scope, grouped by value with exported names first.
func enumValues(scope *types.Scope, named *types.Named) map[int64][]string {
	values := map[int64][]string{}
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, exact := constant.Int64Val(c.Val())
		if !exact {
			continue
		}
		if ast.IsExported(name) {
			values[v] = append([]string{name}, values[v]...)
		} else {
			values[v] = append(values[v], name)
		}
	}
	return values
}

// defaultFailsLoudly reports whether a default clause panics, returns,
// or calls a fatal/exit function somewhere in its body.
func defaultFailsLoudly(pass *Pass, cc *ast.CaseClause) bool {
	loud := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				loud = true
			case *ast.CallExpr:
				switch fun := ast.Unparen(n.Fun).(type) {
				case *ast.Ident:
					if fun.Name == "panic" {
						loud = true
					}
				case *ast.SelectorExpr:
					if strings.HasPrefix(fun.Sel.Name, "Fatal") || fun.Sel.Name == "Exit" {
						loud = true
					}
				}
			}
			return !loud
		})
		if loud {
			return true
		}
	}
	return false
}
