// The determinism analyzer: simulator packages must be bit-for-bit
// replayable. The repo's hard invariant (ROADMAP, verify.sh) is that
// the same trace and configuration produce byte-identical results and
// event streams on every run, on every machine, at any -jobs level.
// Three things silently break that:
//
//   - ranging over a map: Go randomizes iteration order, so any map
//     walk whose results feed state, events, stats, or output is a
//     latent heisenbug;
//   - reading the wall clock (time.Now) or unseeded process-global
//     randomness (math/rand top-level functions): host-dependent
//     values leak into results;
//   - spawning goroutines: scheduling order is nondeterministic, so
//     concurrency belongs only in the approved worker-pool sites that
//     merge results in deterministic order.
//
// The pass flags all four constructs in packages named gsim, engine,
// experiments, proto, and cache. Order-independent map walks (pure
// copies, reductions into order-insensitive accumulators) and the
// sanctioned worker pool carry //lint:allow determinism directives
// with their justification.

package lint

import (
	"go/ast"
	"go/types"
)

// determinismPackages are the package names (not import paths, so test
// fixtures exercise the same rules) under the replayability contract.
var determinismPackages = map[string]bool{
	"gsim":        true,
	"engine":      true,
	"experiments": true,
	"proto":       true,
	"cache":       true,
}

// seededRandConstructors are math/rand functions that build explicitly
// seeded generators rather than reading process-global state.
var seededRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// AnalyzerDeterminism flags nondeterministic constructs in simulator
// packages.
var AnalyzerDeterminism = &Analyzer{
	Name: "determinism",
	Doc: "flag map-order iteration, wall-clock reads, unseeded randomness, " +
		"and goroutine spawns in simulator packages",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) []Diagnostic {
	if !determinismPackages[pass.Pkg.Name()] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if _, ok := pass.Info.TypeOf(n.X).Underlying().(*types.Map); ok {
					pass.report(&diags, "determinism", n.Pos(),
						"range over map %s iterates in randomized order; iterate a sorted key slice, "+
							"or annotate order-independent walks with //lint:allow determinism <reason>",
						typeName(pass.Info.TypeOf(n.X)))
				}
			case *ast.GoStmt:
				pass.report(&diags, "determinism", n.Pos(),
					"goroutine spawn in a simulator package; concurrency is only allowed at "+
						"approved worker-pool sites (//lint:allow determinism <reason>)")
			case *ast.CallExpr:
				fn := callee(pass.Info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if (fn.Name() == "Now" || fn.Name() == "Since") && recvNamed(fn) == nil {
						pass.report(&diags, "determinism", n.Pos(),
							"time.%s reads the wall clock; simulated time comes from engine.Now "+
								"(//lint:allow determinism <reason> for observability-only uses)", fn.Name())
					}
				case "math/rand", "math/rand/v2":
					if recvNamed(fn) == nil && !seededRandConstructors[fn.Name()] {
						pass.report(&diags, "determinism", n.Pos(),
							"%s.%s uses the process-global random source; use an explicitly seeded "+
								"generator (rand.New(rand.NewSource(seed)))",
							fn.Pkg().Name(), fn.Name())
					}
				}
			}
			return true
		})
	}
	return diags
}

// typeName renders a type compactly for messages.
func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
