package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hmg/internal/lint"
)

// loadFixture copies testdata/src/<name> into a fresh module and runs
// the selected analyzers over it, in the style of
// golang.org/x/tools/go/analysis/analysistest.
func loadFixture(t *testing.T, name, analyzers string) ([]lint.Diagnostic, string) {
	t.Helper()
	tmp := t.TempDir()
	src := filepath.Join("testdata", "src", name)
	if err := copyTree(src, tmp); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module fixture\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sel, err := lint.Select(analyzers)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(tmp, []string{"./..."}, sel)
	if err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return diags, tmp
}

// checkWants asserts the exact two-way correspondence between
// diagnostics and the fixture's `// want "regexp"` comments: every
// diagnostic matches a want on its line, every want is matched.
func checkWants(t *testing.T, diags []lint.Diagnostic, root string) {
	t.Helper()
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "relfile:line" → expectations
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, path)
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, q := range wantRE.FindAllString(line[idx:], -1) {
				var pat string
				if q[0] == '`' {
					pat = q[1 : len(q)-1]
				} else {
					var err error
					pat, err = strconv.Unquote(q)
					if err != nil {
						return fmt.Errorf("%s:%d: bad want pattern %s", rel, i+1, q)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return fmt.Errorf("%s:%d: bad want regexp: %v", rel, i+1, err)
				}
				key := fmt.Sprintf("%s:%d", rel, i+1)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, d := range diags {
		rel, _ := filepath.Rel(root, d.Position.Filename)
		key := fmt.Sprintf("%s:%d", rel, d.Position.Line)
		found := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s (%s)", key, d.Message, d.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing expected diagnostic at %s matching %q", key, w.re)
			}
		}
	}
}

// wantRE captures one quoted or backquoted want pattern.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

func TestDeterminismFixture(t *testing.T) {
	diags, root := loadFixture(t, "determinism", "determinism")
	checkWants(t, diags, root)
}

func TestEventEmitFixture(t *testing.T) {
	diags, root := loadFixture(t, "eventemit", "eventemit")
	checkWants(t, diags, root)
}

func TestExhaustiveFixture(t *testing.T) {
	diags, root := loadFixture(t, "exhaustive", "exhaustive")
	checkWants(t, diags, root)
}

func TestReadonlyHooksFixture(t *testing.T) {
	diags, root := loadFixture(t, "readonlyhooks", "readonlyhooks")
	checkWants(t, diags, root)
}

// TestHotAllocFixture exercises the interprocedural reachability pass:
// wants live in both fixture packages because Handle-rooted findings
// cross the package boundary through the FnFact call graph.
func TestHotAllocFixture(t *testing.T) {
	diags, root := loadFixture(t, "hotalloc", "hotalloc")
	checkWants(t, diags, root)
}

// TestSpecCoverFixture exercises both directions of the spec↔arm
// cross-check: the dead rule is reported in the spec package, the
// silent Rogue arm in the proto package.
func TestSpecCoverFixture(t *testing.T) {
	diags, root := loadFixture(t, "speccover", "speccover")
	checkWants(t, diags, root)
}

// TestDirectiveValidation: malformed directives are findings and do
// not suppress; a well-formed directive does. (Assertions are explicit
// because a want comment cannot share a line with the directive under
// test.)
func TestDirectiveValidation(t *testing.T) {
	diags, _ := loadFixture(t, "directives", "determinism")
	var gotMissingReason, gotUnknown int
	var ranges []int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "missing its mandatory reason"):
			gotMissingReason++
		case strings.Contains(d.Message, "unknown analyzer \"nosuchpass\""):
			gotUnknown++
		case strings.Contains(d.Message, "range over map"):
			ranges = append(ranges, d.Position.Line)
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if gotMissingReason != 1 {
		t.Errorf("missing-reason directive findings = %d, want 1", gotMissingReason)
	}
	if gotUnknown != 1 {
		t.Errorf("unknown-analyzer directive findings = %d, want 1", gotUnknown)
	}
	// The two malformed directives suppress nothing (2 range findings);
	// the well-formed one in good() suppresses its range.
	if len(ranges) != 2 {
		t.Errorf("unsuppressed range findings = %d (lines %v), want 2", len(ranges), ranges)
	}
}

// TestSelectUnknown mirrors proto.ParseKind: an unknown name lists the
// known set.
func TestSelectUnknown(t *testing.T) {
	_, err := lint.Select("bogus")
	if err == nil {
		t.Fatal("Select(bogus) succeeded")
	}
	for _, a := range lint.Analyzers() {
		if !strings.Contains(err.Error(), a.Name) {
			t.Errorf("error %q does not list analyzer %s", err, a.Name)
		}
	}
}

// TestRepoClean is the acceptance criterion as a test: the full suite
// over the whole repository, zero findings.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module")
	}
	diags, err := lint.Run("../..", []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
