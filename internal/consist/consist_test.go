package consist

import (
	"math/rand"
	"testing"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

func coherent() []proto.Kind {
	return []proto.Kind{proto.NoRemoteCache, proto.SWNonHier, proto.SWHier, proto.NHCC, proto.HMG}
}

// TestMessagePassingLitmus runs the canonical MP litmus at both scopes
// under every coherent protocol: a late acquire that observes the flag
// must observe the data.
func TestMessagePassingLitmus(t *testing.T) {
	const data, flag = 0x100, 0x200
	for _, k := range coherent() {
		for _, tc := range []struct {
			scope  trace.Scope
			reader int
		}{
			{trace.ScopeGPU, 1}, // same-GPU reader
			{trace.ScopeSys, 3}, // other-GPU reader
		} {
			prog := New("mp").
				Thread(0,
					trace.Op{Kind: trace.Store, Addr: data, Val: 42},
					trace.Op{Kind: trace.StoreRel, Scope: tc.scope, Addr: flag, Val: 1}).
				Thread(tc.reader,
					trace.Op{Kind: trace.LoadAcq, Scope: tc.scope, Addr: flag, Gap: 2_000_000},
					trace.Op{Kind: trace.Load, Addr: data}).
				Warmup(tc.reader, data, flag).
				Build()
			r, err := Run(SmallConfig(k), prog)
			if err != nil {
				t.Fatalf("%v/%v: %v", k, tc.scope, err)
			}
			f, ok := r.Value(1, 0)
			if !ok || f != 1 {
				t.Fatalf("%v/%v: flag = %d (observed %v), want 1", k, tc.scope, f, ok)
			}
			d, ok := r.Value(1, 1)
			if !ok || d != 42 {
				t.Fatalf("%v/%v: data after acquire = %d, want 42", k, tc.scope, d)
			}
		}
	}
}

// TestStaleReadAllowed: without synchronization, a plain load may return
// the stale (initial) value even after a remote store — the
// non-multi-copy-atomic relaxation the protocols exploit. We only check
// that whatever is read was actually written at some point (no
// fabricated values).
func TestStaleReadAllowed(t *testing.T) {
	const addr = 0x300
	for _, k := range coherent() {
		prog := New("stale").
			Thread(0, trace.Op{Kind: trace.Store, Addr: addr, Val: 7}).
			Thread(3, trace.Op{Kind: trace.Load, Addr: addr}).
			Warmup(3, addr).
			Build()
		r, err := Run(SmallConfig(k), prog)
		if err != nil {
			t.Fatal(err)
		}
		v, ok := r.Value(1, 0)
		if !ok {
			t.Fatalf("%v: load unobserved", k)
		}
		if legal := WrittenValues(prog, addr); !legal[v] {
			t.Fatalf("%v: load fabricated value %d", k, v)
		}
	}
}

// TestAtomicSumLitmus: concurrent .sys atomics from every GPM sum
// exactly.
func TestAtomicSumLitmus(t *testing.T) {
	const addr = 0x400
	for _, k := range coherent() {
		b := New("atomsum").Home(2)
		for slot := 0; slot < 4; slot++ {
			var ops []trace.Op
			for i := 0; i < 6; i++ {
				ops = append(ops, trace.Op{Kind: trace.Atomic, Scope: trace.ScopeSys, Addr: addr, Val: 1})
			}
			b.Thread(slot, ops...)
		}
		r, err := Run(SmallConfig(k), b.Build())
		if err != nil {
			t.Fatal(err)
		}
		if r.Results().Atomics != 24 {
			t.Fatalf("%v: ran %d atomics, want 24", k, r.Results().Atomics)
		}
	}
}

// TestRandomizedNoFabrication: random programs of plain loads and
// stores with unique values never observe a value nobody wrote.
func TestRandomizedNoFabrication(t *testing.T) {
	for _, k := range coherent() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(k) + 99))
			addrs := []topo.Addr{0x100, 0x180, 0x200, 0x1000, 0x2000}
			b := New("rand")
			val := uint64(1)
			for slot := 0; slot < 4; slot++ {
				var ops []trace.Op
				for i := 0; i < 20; i++ {
					a := addrs[rng.Intn(len(addrs))]
					if rng.Intn(2) == 0 {
						ops = append(ops, trace.Op{Kind: trace.Load, Addr: a, Gap: uint32(rng.Intn(50))})
					} else {
						ops = append(ops, trace.Op{Kind: trace.Store, Addr: a, Val: val, Gap: uint32(rng.Intn(50))})
						val++
					}
				}
				b.Thread(slot, ops...)
			}
			prog := b.Build()
			r, err := Run(SmallConfig(k), prog)
			if err != nil {
				t.Fatal(err)
			}
			legal := map[topo.Addr]map[uint64]bool{}
			for _, a := range addrs {
				legal[a] = WrittenValues(prog, a)
			}
			for _, o := range r.Observations() {
				if !legal[o.Op.Addr][o.Value] {
					t.Fatalf("load of %#x observed fabricated value %d", uint64(o.Op.Addr), o.Value)
				}
			}
		})
	}
}

// TestRunRejectsBadSlot: out-of-range slots error cleanly.
func TestRunRejectsBadSlot(t *testing.T) {
	prog := New("bad").Thread(99, trace.Op{Kind: trace.Load, Addr: 0}).Build()
	if _, err := Run(SmallConfig(proto.HMG), prog); err == nil {
		t.Fatal("bad slot accepted")
	}
}

// TestRunHooksSeeSystem: hooks passed to Run receive the constructed
// system before execution and can attach event sinks.
func TestRunHooksSeeSystem(t *testing.T) {
	prog := New("hook").Thread(0, trace.Op{Kind: trace.Load, Addr: 0x100}).Build()
	events := 0
	_, err := Run(SmallConfig(proto.HMG), prog, func(sys *gsim.System) {
		sys.OnEvent = func(gsim.Event) { events++ }
	})
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("hook-attached event sink saw no events")
	}
}

// TestGPMScopeLitmus exercises the Section VII-D extension scope:
// message passing between two warps of the same GPM at .gpm scope works
// under every coherent protocol, with the GPM-local L2 slice as the
// coherence point.
func TestGPMScopeLitmus(t *testing.T) {
	const data, flag = 0x500, 0x600
	for _, k := range coherent() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			// Eight slots on four GPMs: slots 0 and 1 share GPM 0. Data
			// lives on the other GPU (home GPM 3).
			prog := New("gpm-mp").Slots(8).Home(3).
				Thread(0,
					trace.Op{Kind: trace.Store, Addr: data, Val: 33},
					trace.Op{Kind: trace.StoreRel, Scope: trace.ScopeGPM, Addr: flag, Val: 1}).
				Thread(1,
					trace.Op{Kind: trace.LoadAcq, Scope: trace.ScopeGPM, Addr: flag, Gap: 2_000_000},
					trace.Op{Kind: trace.Load, Addr: data}).
				Build()
			r, err := Run(SmallConfig(k), prog)
			if err != nil {
				t.Fatal(err)
			}
			f, ok := r.Value(1, 0)
			if !ok || f != 1 {
				t.Fatalf("late .gpm acquire read flag %d (ok=%v), want 1", f, ok)
			}
			d, ok := r.Value(1, 1)
			if !ok || d != 33 {
				t.Fatalf("data after .gpm acquire = %d, want 33", d)
			}
		})
	}
}

// TestGPMAtomicsSerializeWithinGPM: .gpm atomics from two warps of one
// GPM serialize at the local slice.
func TestGPMAtomicsSerializeWithinGPM(t *testing.T) {
	const addr = 0x700
	b := New("gpm-atom").Slots(8).Home(3)
	for slot := 0; slot < 2; slot++ { // both on GPM 0 (8 slots, 4 GPMs)
		var ops []trace.Op
		for i := 0; i < 5; i++ {
			ops = append(ops, trace.Op{Kind: trace.Atomic, Scope: trace.ScopeGPM, Addr: addr, Val: 1})
		}
		b.Thread(slot, ops...)
	}
	r, err := Run(SmallConfig(proto.HMG), b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if r.Results().Atomics != 10 {
		t.Fatalf("atomics = %d, want 10", r.Results().Atomics)
	}
	// The final value reaches the home DRAM via the write-throughs; the
	// last write-through carries the serialized sum.
}

// TestIRIWNonMultiCopyAtomicity documents the model's headline
// relaxation (Section III-B): with two independent writers and two
// unsynchronized readers, the readers may observe the writes in opposite
// orders — memory does not behave as a single atomic unit. The test runs
// many timing variations and only requires that every observed value was
// actually written; it additionally reports (not asserts) whether the
// IRIW-forbidden-under-MCA outcome was observed.
func TestIRIWNonMultiCopyAtomicity(t *testing.T) {
	const x, y = 0x900, 0xA00
	for _, k := range []proto.Kind{proto.NHCC, proto.HMG} {
		sawSplit := false
		for _, d := range []uint32{0, 500, 1500, 4000, 9000} {
			prog := New("iriw").
				Thread(0, trace.Op{Kind: trace.Store, Addr: x, Val: 1}).
				Thread(3, trace.Op{Kind: trace.Store, Addr: y, Val: 1}).
				Thread(1,
					trace.Op{Kind: trace.Load, Addr: x, Gap: d},
					trace.Op{Kind: trace.Load, Addr: y}).
				Thread(2,
					trace.Op{Kind: trace.Load, Addr: y, Gap: d},
					trace.Op{Kind: trace.Load, Addr: x}).
				Warmup(1, x, y).
				Build()
			r, err := Run(SmallConfig(k), prog)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range r.Observations() {
				if o.Value != 0 && o.Value != 1 {
					t.Fatalf("fabricated value %d", o.Value)
				}
			}
			r1x, _ := r.Value(2, 0)
			r1y, _ := r.Value(2, 1)
			r2y, _ := r.Value(3, 0)
			r2x, _ := r.Value(3, 1)
			if r1x == 1 && r1y == 0 && r2y == 1 && r2x == 0 {
				sawSplit = true
			}
		}
		t.Logf("%v: IRIW split observation seen = %v (permitted either way under non-MCA)", k, sawSplit)
	}
}

// TestCausalityChain is a randomized monotonic message-passing checker:
// one writer repeatedly stores data[j] = v for every data address, then
// release-stores flag = v. A reader acquire-loads the flag and then
// reads the data addresses: whenever it observed flag == v, every data
// value it subsequently reads must be >= v (the writer wrote them before
// releasing v, and values only grow). Runs across protocols, scopes, and
// random timings.
func TestCausalityChain(t *testing.T) {
	const flagAddr = 0x2000
	dataAddrs := []topo.Addr{0x100, 0x180, 0x1000}
	for _, k := range coherent() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			for _, tc := range []struct {
				scope  trace.Scope
				reader int
			}{
				{trace.ScopeGPU, 1},
				{trace.ScopeSys, 2},
				{trace.ScopeSys, 3},
			} {
				rng := rand.New(rand.NewSource(int64(k)*31 + int64(tc.reader)))
				var wops []trace.Op
				const rounds = 6
				for v := uint64(1); v <= rounds; v++ {
					for _, a := range dataAddrs {
						wops = append(wops, trace.Op{Kind: trace.Store, Addr: a, Val: v, Gap: uint32(rng.Intn(300))})
					}
					wops = append(wops, trace.Op{Kind: trace.StoreRel, Scope: tc.scope, Addr: flagAddr, Val: v})
				}
				var rops []trace.Op
				for i := 0; i < rounds; i++ {
					rops = append(rops, trace.Op{Kind: trace.LoadAcq, Scope: tc.scope, Addr: flagAddr, Gap: uint32(rng.Intn(4000))})
					for _, a := range dataAddrs {
						rops = append(rops, trace.Op{Kind: trace.Load, Addr: a})
					}
				}
				prog := New("causal").
					Home(topo.GPMID(rng.Intn(4))).
					Thread(0, wops...).
					Thread(tc.reader, rops...).
					Build()
				r, err := Run(SmallConfig(k), prog)
				if err != nil {
					t.Fatal(err)
				}
				// Replay the reader's observations in order.
				var lastFlag uint64
				for _, o := range r.Observations() {
					if o.Thread != 1 {
						continue
					}
					if o.Op.Addr == flagAddr {
						if o.Value < lastFlag {
							t.Fatalf("%v/%v: flag went backwards: %d after %d", k, tc.scope, o.Value, lastFlag)
						}
						lastFlag = o.Value
						continue
					}
					if o.Value < lastFlag {
						t.Fatalf("%v/%v reader %d: data %#x = %d after acquiring flag %d (causality violated)",
							k, tc.scope, tc.reader, uint64(o.Op.Addr), o.Value, lastFlag)
					}
				}
			}
		})
	}
}
