// Package consist is a litmus-test harness for the scoped memory model:
// it builds small multi-threaded programs (threads pinned to GPMs via
// CTA slots), executes them on the functional simulator with value
// tracking, and collects every load's observed value so tests can check
// the visibility rules the protocols must enforce — and the relaxations
// (stale reads without synchronization) they are allowed.
package consist

import (
	"fmt"

	"hmg/internal/gsim"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// Thread is one litmus thread: a warp of ops on a chosen CTA slot.
// Under contiguous scheduling with one CTA slot per GPM, slot i runs on
// GPM i.
type Thread struct {
	Slot int
	Ops  []trace.Op
}

// Program is a single-kernel litmus program.
type Program struct {
	Name string
	// Slots is the number of CTA slots (defaults to the total GPM count
	// so slot i → GPM i).
	Slots   int
	Threads []Thread
	// HomeGPM owns every page the program touches (default GPM 0).
	HomeGPM topo.GPMID
	// Warmup, when set, prepends a kernel in which the given slot loads
	// each listed address, seeding stale copies in its caches.
	Warmup     []topo.Addr
	WarmupSlot int
}

// Observation records one load's result.
type Observation struct {
	Thread int
	Index  int // op index within the thread
	Op     trace.Op
	Value  uint64
}

// Run executes the program under the configuration (value tracking is
// forced on) and returns all load observations in completion order.
func Run(cfg gsim.Config, prog Program) ([]Observation, *gsim.Results, error) {
	cfg.TrackValues = true
	sys, err := gsim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	slots := prog.Slots
	if slots == 0 {
		slots = cfg.Topo.TotalGPMs()
	}
	tr := &trace.Trace{Name: "litmus-" + prog.Name}
	if len(prog.Warmup) > 0 {
		k := trace.Kernel{CTAs: make([]trace.CTA, slots)}
		var ops []trace.Op
		for _, a := range prog.Warmup {
			ops = append(ops, trace.Op{Kind: trace.Load, Addr: a})
		}
		k.CTAs[prog.WarmupSlot] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
		tr.Kernels = append(tr.Kernels, k)
	}
	main := trace.Kernel{CTAs: make([]trace.CTA, slots)}
	type key struct{ slot, warp, idx int }
	owners := make(map[key]int) // op position → thread id
	warpOf := make(map[int]int) // thread → warp index within its CTA
	for ti, th := range prog.Threads {
		if th.Slot < 0 || th.Slot >= slots {
			return nil, nil, fmt.Errorf("consist: thread %d slot %d out of range", ti, th.Slot)
		}
		w := len(main.CTAs[th.Slot].Warps)
		warpOf[ti] = w
		main.CTAs[th.Slot].Warps = append(main.CTAs[th.Slot].Warps, trace.Warp{Ops: th.Ops})
		for oi := range th.Ops {
			owners[key{th.Slot, w, oi}] = ti
		}
	}
	tr.Kernels = append(tr.Kernels, main)
	// Place every touched page on the home GPM.
	seen := map[topo.Page]bool{}
	for _, k := range tr.Kernels {
		for _, c := range k.CTAs {
			for _, w := range c.Warps {
				for _, op := range w.Ops {
					pg := cfg.Topo.PageOf(op.Addr)
					if !seen[pg] {
						seen[pg] = true
						tr.Placement = append(tr.Placement, trace.PlacementHint{Page: pg, GPM: prog.HomeGPM})
					}
				}
			}
		}
	}
	// Match observations back to threads: track per-(slot,warp) progress
	// through load ops.
	var obs []Observation
	progress := make(map[int]int) // thread → next load-op cursor
	sys.OnLoadValue = func(smID topo.SMID, op trace.Op, v uint64) {
		// Identify the thread by matching the op identity: the same SM
		// may host several litmus warps, so match on (kind, scope, addr)
		// against each candidate thread's next unobserved load.
		for ti, th := range prog.Threads {
			gpm := trace.AssignCTA(th.Slot, slots, cfg.Topo.TotalGPMs())
			if cfg.Topo.GPMOfSM(smID) != gpm {
				continue
			}
			cur := progress[ti]
			for oi := cur; oi < len(th.Ops); oi++ {
				o := th.Ops[oi]
				if !o.Kind.IsLoad() {
					continue
				}
				if o.Kind == op.Kind && o.Scope == op.Scope && o.Addr == op.Addr {
					obs = append(obs, Observation{Thread: ti, Index: oi, Op: op, Value: v})
					progress[ti] = oi + 1
					return
				}
				break
			}
		}
	}
	res, err := sys.Run(tr)
	if err != nil {
		return nil, nil, err
	}
	return obs, res, nil
}

// Value returns the observed value of thread ti's op at index oi, or
// false if it was never observed.
func Value(obs []Observation, ti, oi int) (uint64, bool) {
	for _, o := range obs {
		if o.Thread == ti && o.Index == oi {
			return o.Value, true
		}
	}
	return 0, false
}

// WrittenValues extracts every value any thread stores to addr
// (including 0, the initial memory value) — the candidate set a load of
// addr may legally observe in a data-race-free-or-not program.
func WrittenValues(prog Program, addr topo.Addr) map[uint64]bool {
	vals := map[uint64]bool{0: true}
	for _, th := range prog.Threads {
		for _, op := range th.Ops {
			if op.Addr != addr {
				continue
			}
			switch op.Kind {
			case trace.Store, trace.StoreRel:
				vals[op.Val] = true
			case trace.Atomic:
				// Atomics produce sums; callers with atomics should
				// check bounds instead.
			}
		}
	}
	return vals
}
