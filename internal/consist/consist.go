// Package consist is a litmus-test harness for the scoped memory model:
// it builds small multi-threaded programs (threads pinned to GPMs via
// CTA slots), executes them on the functional simulator with value
// tracking, and collects every load's observed value so tests can check
// the visibility rules the protocols must enforce — and the relaxations
// (stale reads without synchronization) they are allowed.
package consist

import (
	"fmt"

	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
)

// Thread is one litmus thread: a warp of ops on a chosen CTA slot.
// Under contiguous scheduling with one CTA slot per GPM, slot i runs on
// GPM i.
type Thread struct {
	Slot int
	Ops  []trace.Op
}

// Program is a single-kernel litmus program. Construct one directly or
// through the New builder.
type Program struct {
	Name string
	// Slots is the number of CTA slots (defaults to the total GPM count
	// so slot i → GPM i).
	Slots   int
	Threads []Thread
	// HomeGPM owns every page the program touches (default GPM 0).
	HomeGPM topo.GPMID
	// Warmup, when set, prepends a kernel in which the given slot loads
	// each listed address, seeding stale copies in its caches.
	Warmup     []topo.Addr
	WarmupSlot int
}

// Builder assembles a Program fluently:
//
//	prog := consist.New("mp").
//		Thread(0, storeData, releaseFlag).
//		Thread(3, acquireFlag, loadData).
//		Build()
type Builder struct {
	prog Program
}

// New starts a program builder.
func New(name string) *Builder {
	return &Builder{prog: Program{Name: name}}
}

// Slots sets the CTA slot count (0 = one slot per GPM).
func (b *Builder) Slots(n int) *Builder {
	b.prog.Slots = n
	return b
}

// Home places every page the program touches on GPM g.
func (b *Builder) Home(g topo.GPMID) *Builder {
	b.prog.HomeGPM = g
	return b
}

// Warmup prepends a kernel in which slot loads each address, seeding
// potentially-stale copies in that slot's caches.
func (b *Builder) Warmup(slot int, addrs ...topo.Addr) *Builder {
	b.prog.WarmupSlot = slot
	b.prog.Warmup = append(b.prog.Warmup, addrs...)
	return b
}

// Thread appends a thread running ops on the given CTA slot.
func (b *Builder) Thread(slot int, ops ...trace.Op) *Builder {
	b.prog.Threads = append(b.prog.Threads, Thread{Slot: slot, Ops: ops})
	return b
}

// Build returns the assembled program.
func (b *Builder) Build() Program { return b.prog }

// Observation records one load's result.
type Observation struct {
	Thread int
	Index  int // op index within the thread
	Op     trace.Op
	Value  uint64
}

// Result holds a completed litmus run: the program, every load
// observation in completion order, and the simulation results.
type Result struct {
	prog Program
	obs  []Observation
	res  *gsim.Results
}

// Observations returns every load observation in completion order.
func (r *Result) Observations() []Observation { return r.obs }

// Value returns the value thread's op at index op observed, or false if
// that op never completed a load.
func (r *Result) Value(thread, op int) (uint64, bool) {
	for _, o := range r.obs {
		if o.Thread == thread && o.Index == op {
			return o.Value, true
		}
	}
	return 0, false
}

// Results returns the underlying simulation results.
func (r *Result) Results() *gsim.Results { return r.res }

// Program returns the program that produced this result.
func (r *Result) Program() Program { return r.prog }

// SmallConfig is the conformance-testing configuration: a 2 GPU × 2 GPM
// × 2 SM system with small caches and a small directory (so capacity
// evictions actually happen in short programs), value tracking on. The
// litmus suites, fuzzer, and mutation tests all run on it.
func SmallConfig(k proto.Kind) gsim.Config {
	cfg := gsim.DefaultConfig(2, k)
	cfg.Topo = topo.Topology{
		NumGPUs: 2, GPMsPerGPU: 2, SMsPerGPM: 2,
		LineSize: 128, PageSize: 4096,
	}
	cfg.DRAM.BandwidthGBs = 250
	cfg.DRAM.Latency = 100
	cfg.L1.CapacityBytes = 8 * 1024
	cfg.L1.Ways = 4
	cfg.L2Slice.CapacityBytes = 64 * 1024
	cfg.L2Slice.Ways = 8
	cfg.Dir.Entries = 256
	cfg.Dir.Ways = 8
	cfg.Dir.GranLines = 4
	cfg.L1Latency = 10
	cfg.L2Latency = 30
	cfg.MaxWarpInflight = 4
	cfg.MaxSMInflight = 16
	cfg.TrackValues = true
	return cfg
}

// Run executes the program under the configuration (value tracking is
// forced on) and returns the collected result. Each hook is invoked on
// the constructed system before execution — the conformance harness
// uses this to attach its invariant checker.
func Run(cfg gsim.Config, prog Program, hooks ...func(*gsim.System)) (*Result, error) {
	cfg.TrackValues = true
	sys, err := gsim.New(cfg)
	if err != nil {
		return nil, err
	}
	slots := prog.Slots
	if slots == 0 {
		slots = cfg.Topo.TotalGPMs()
	}
	tr := &trace.Trace{Name: "litmus-" + prog.Name}
	if len(prog.Warmup) > 0 {
		k := trace.Kernel{CTAs: make([]trace.CTA, slots)}
		var ops []trace.Op
		for _, a := range prog.Warmup {
			ops = append(ops, trace.Op{Kind: trace.Load, Addr: a})
		}
		k.CTAs[prog.WarmupSlot] = trace.CTA{Warps: []trace.Warp{{Ops: ops}}}
		tr.Kernels = append(tr.Kernels, k)
	}
	main := trace.Kernel{CTAs: make([]trace.CTA, slots)}
	for ti, th := range prog.Threads {
		if th.Slot < 0 || th.Slot >= slots {
			return nil, fmt.Errorf("consist: thread %d slot %d out of range", ti, th.Slot)
		}
		main.CTAs[th.Slot].Warps = append(main.CTAs[th.Slot].Warps, trace.Warp{Ops: th.Ops})
	}
	tr.Kernels = append(tr.Kernels, main)
	// Place every touched page on the home GPM.
	seen := map[topo.Page]bool{}
	for _, k := range tr.Kernels {
		for _, c := range k.CTAs {
			for _, w := range c.Warps {
				for _, op := range w.Ops {
					pg := cfg.Topo.PageOf(op.Addr)
					if !seen[pg] {
						seen[pg] = true
						tr.Placement = append(tr.Placement, trace.PlacementHint{Page: pg, GPM: prog.HomeGPM})
					}
				}
			}
		}
	}
	// Match observations back to threads: track per-thread progress
	// through load ops.
	r := &Result{prog: prog}
	progress := make(map[int]int) // thread → next load-op cursor
	sys.OnLoadValue = func(smID topo.SMID, op trace.Op, v uint64) {
		// Identify the thread by matching the op identity: the same SM
		// may host several litmus warps, so match on (kind, scope, addr)
		// against each candidate thread's next unobserved load.
		for ti, th := range prog.Threads {
			gpm := trace.AssignCTA(th.Slot, slots, cfg.Topo.TotalGPMs())
			if cfg.Topo.GPMOfSM(smID) != gpm {
				continue
			}
			cur := progress[ti]
			for oi := cur; oi < len(th.Ops); oi++ {
				o := th.Ops[oi]
				if !o.Kind.IsLoad() {
					continue
				}
				if o.Kind == op.Kind && o.Scope == op.Scope && o.Addr == op.Addr {
					r.obs = append(r.obs, Observation{Thread: ti, Index: oi, Op: op, Value: v})
					progress[ti] = oi + 1
					return
				}
				break
			}
		}
	}
	for _, h := range hooks {
		h(sys)
	}
	res, err := sys.Run(tr)
	if err != nil {
		return nil, err
	}
	r.res = res
	return r, nil
}

// WrittenValues extracts every value any thread stores to addr
// (including 0, the initial memory value) — the candidate set a load of
// addr may legally observe in a data-race-free-or-not program.
func WrittenValues(prog Program, addr topo.Addr) map[uint64]bool {
	vals := map[uint64]bool{0: true}
	for _, th := range prog.Threads {
		for _, op := range th.Ops {
			if op.Addr != addr {
				continue
			}
			switch op.Kind {
			case trace.Store, trace.StoreRel:
				vals[op.Val] = true
			case trace.Atomic:
				// Atomics produce sums; callers with atomics should
				// check bounds instead.
			case trace.Load, trace.LoadAcq:
				// Loads write nothing.
			}
		}
	}
	return vals
}
