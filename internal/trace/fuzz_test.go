package trace

import (
	"bytes"
	"testing"
)

// FuzzDecode throws arbitrary bytes at the trace decoder: it must never
// panic, and anything it accepts must re-encode and decode to the same
// structure.
func FuzzDecode(f *testing.F) {
	// Seed with a valid trace and a few corruptions of it.
	valid := &Trace{
		Name:           "seed",
		FootprintBytes: 4096,
		Placement:      []PlacementHint{{Page: 1, GPM: 2}},
		Kernels: []Kernel{{CTAs: []CTA{{Warps: []Warp{{Ops: []Op{
			{Kind: Load, Addr: 0x100, Gap: 3},
			{Kind: StoreRel, Scope: ScopeSys, Addr: 0x104, Val: 9},
		}}}}}}},
	}
	var buf bytes.Buffer
	if err := Encode(&buf, valid); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte("HMGT"))
	f.Add([]byte{})
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		var out bytes.Buffer
		if err := Encode(&out, tr); err != nil {
			t.Fatalf("accepted trace failed to re-encode: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded trace failed to decode: %v", err)
		}
		if tr.Ops() != tr2.Ops() || tr.Name != tr2.Name || len(tr.Kernels) != len(tr2.Kernels) {
			t.Fatalf("round trip mismatch: %+v vs %+v", tr, tr2)
		}
	})
}
