package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"hmg/internal/topo"
)

// Binary trace format:
//
//	magic "HMGT" | version u8 | name (uvarint len + bytes)
//	footprint uvarint
//	placement count uvarint, then (page uvarint, gpm uvarint)*
//	kernel count uvarint, then per kernel:
//	  CTA count uvarint, then per CTA:
//	    warp count uvarint, then per warp:
//	      op count uvarint, then per op:
//	        kind u8 | scope u8 | addr-delta zigzag-uvarint | gap uvarint
//
// Addresses are delta-encoded per warp because warp streams are mostly
// sequential, which keeps traces compact.

var magic = [4]byte{'H', 'M', 'G', 'T'}

const version = 1

type writer struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
}

func (w *writer) uvarint(v uint64) error {
	n := binary.PutUvarint(w.buf[:], v)
	_, err := w.w.Write(w.buf[:n])
	return err
}

func (w *writer) byte(b byte) error { return w.w.WriteByte(b) }

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Encode writes the trace in binary form.
func Encode(out io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	w := &writer{w: bufio.NewWriter(out)}
	if _, err := w.w.Write(magic[:]); err != nil {
		return err
	}
	if err := w.byte(version); err != nil {
		return err
	}
	if err := w.uvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := w.w.WriteString(t.Name); err != nil {
		return err
	}
	if err := w.uvarint(uint64(t.FootprintBytes)); err != nil {
		return err
	}
	if err := w.uvarint(uint64(len(t.Placement))); err != nil {
		return err
	}
	for _, p := range t.Placement {
		if err := w.uvarint(uint64(p.Page)); err != nil {
			return err
		}
		if err := w.uvarint(uint64(p.GPM)); err != nil {
			return err
		}
	}
	if err := w.uvarint(uint64(len(t.Kernels))); err != nil {
		return err
	}
	for _, k := range t.Kernels {
		if err := w.uvarint(uint64(len(k.CTAs))); err != nil {
			return err
		}
		for _, c := range k.CTAs {
			if err := w.uvarint(uint64(len(c.Warps))); err != nil {
				return err
			}
			for _, wp := range c.Warps {
				if err := w.uvarint(uint64(len(wp.Ops))); err != nil {
					return err
				}
				prev := int64(0)
				for _, op := range wp.Ops {
					if err := w.byte(byte(op.Kind)); err != nil {
						return err
					}
					if err := w.byte(byte(op.Scope)); err != nil {
						return err
					}
					if err := w.uvarint(zigzag(int64(op.Addr) - prev)); err != nil {
						return err
					}
					prev = int64(op.Addr)
					if err := w.uvarint(uint64(op.Gap)); err != nil {
						return err
					}
					if err := w.uvarint(op.Val); err != nil {
						return err
					}
				}
			}
		}
	}
	return w.w.Flush()
}

type reader struct {
	r *bufio.Reader
}

func (r *reader) uvarint() (uint64, error) { return binary.ReadUvarint(r.r) }

// limit guards against hostile or corrupt length fields.
const limit = 1 << 28

func (r *reader) count(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > limit {
		return 0, fmt.Errorf("trace: %s count %d exceeds limit", what, v)
	}
	return int(v), nil
}

// Decode reads a binary trace.
func Decode(in io.Reader) (*Trace, error) {
	r := &reader{r: bufio.NewReader(in)}
	var m [4]byte
	if _, err := io.ReadFull(r.r, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("trace: bad magic %q", m)
	}
	ver, err := r.r.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("trace: unsupported version %d", ver)
	}
	nameLen, err := r.count("name")
	if err != nil {
		return nil, err
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r.r, name); err != nil {
		return nil, err
	}
	t := &Trace{Name: string(name)}
	fp, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	t.FootprintBytes = int64(fp)
	np, err := r.count("placement")
	if err != nil {
		return nil, err
	}
	for i := 0; i < np; i++ {
		pg, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		gpm, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		t.Placement = append(t.Placement, PlacementHint{Page: topo.Page(pg), GPM: topo.GPMID(gpm)})
	}
	nk, err := r.count("kernel")
	if err != nil {
		return nil, err
	}
	for ki := 0; ki < nk; ki++ {
		var k Kernel
		nc, err := r.count("cta")
		if err != nil {
			return nil, err
		}
		for ci := 0; ci < nc; ci++ {
			var c CTA
			nw, err := r.count("warp")
			if err != nil {
				return nil, err
			}
			for wi := 0; wi < nw; wi++ {
				no, err := r.count("op")
				if err != nil {
					return nil, err
				}
				var wp Warp
				if no > 0 {
					wp.Ops = make([]Op, no)
				}
				prev := int64(0)
				for oi := 0; oi < no; oi++ {
					kind, err := r.r.ReadByte()
					if err != nil {
						return nil, err
					}
					scope, err := r.r.ReadByte()
					if err != nil {
						return nil, err
					}
					delta, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					addr := prev + unzigzag(delta)
					prev = addr
					gap, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					if gap > 1<<32-1 {
						return nil, fmt.Errorf("trace: gap %d overflows", gap)
					}
					val, err := r.uvarint()
					if err != nil {
						return nil, err
					}
					wp.Ops[oi] = Op{Kind: OpKind(kind), Scope: Scope(scope), Addr: topo.Addr(addr), Gap: uint32(gap), Val: val}
				}
				c.Warps = append(c.Warps, wp)
			}
			k.CTAs = append(k.CTAs, c)
		}
		t.Kernels = append(t.Kernels, k)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
