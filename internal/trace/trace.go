// Package trace defines the program representation the simulator
// executes: kernels of CTAs of warps, each warp an ordered stream of
// scoped memory operations (the PTX-style .cta/.gpu/.sys scopes of the
// NVIDIA memory model the paper builds on), plus page-placement hints, a
// compact binary encoding, and the contiguous CTA-scheduling function
// shared between trace analysis and the timing model.
package trace

import (
	"fmt"

	"hmg/internal/topo"
)

// Scope is a synchronization scope from the scoped GPU memory model.
type Scope uint8

const (
	// ScopeNone marks a non-synchronizing access.
	ScopeNone Scope = iota
	// ScopeCTA synchronizes threads of one CTA (handled at the L1).
	ScopeCTA
	// ScopeGPM synchronizes threads on one GPU module (handled at the
	// GPM-local L2 slice). This scope is NOT part of the production
	// memory model; it is the Section VII-D extension the paper
	// speculates about ("adding scopes in between .cta and .gpu") and
	// concludes is probably not worth its programmer burden. It exists
	// here so that conclusion can be measured.
	ScopeGPM
	// ScopeGPU synchronizes threads anywhere on one GPU (handled at the
	// GPU home node).
	ScopeGPU
	// ScopeSys synchronizes the whole system (handled at the system home
	// node).
	ScopeSys
)

var scopeNames = [...]string{"none", ".cta", ".gpm", ".gpu", ".sys"}

// String implements fmt.Stringer.
func (s Scope) String() string {
	if int(s) < len(scopeNames) {
		return scopeNames[s]
	}
	return fmt.Sprintf("Scope(%d)", uint8(s))
}

// OpKind is the kind of a memory operation.
type OpKind uint8

const (
	// Load is a plain load.
	Load OpKind = iota
	// Store is a plain (write-through) store.
	Store
	// Atomic is a read-modify-write performed at the home node of the
	// operation's scope.
	Atomic
	// LoadAcq is a load-acquire: it applies the protocol's acquire
	// actions before loading at the scope's coherence point.
	LoadAcq
	// StoreRel is a store-release: it drains prior writes and
	// invalidations for the scope's domain before completing.
	StoreRel
)

var opNames = [...]string{"Ld", "St", "Atom", "LdAcq", "StRel"}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// IsLoad reports whether the op reads memory (loads and atomics).
func (k OpKind) IsLoad() bool { return k == Load || k == LoadAcq || k == Atomic }

// IsStore reports whether the op writes memory (stores and atomics).
func (k OpKind) IsStore() bool { return k == Store || k == StoreRel || k == Atomic }

// IsSync reports whether the op carries acquire or release semantics.
func (k OpKind) IsSync() bool { return k == LoadAcq || k == StoreRel || k == Atomic }

// Op is one memory operation in a warp's stream. Addresses are
// word-aligned (4 bytes).
type Op struct {
	Kind  OpKind
	Scope Scope
	Addr  topo.Addr
	// Gap is the number of compute cycles between this op becoming
	// eligible and its issue, modeling the instructions between memory
	// accesses.
	Gap uint32
	// Val is the value a store writes (or an atomic adds) when the
	// simulator runs in functional value-tracking mode; timing-only runs
	// and loads ignore it.
	Val uint64
}

// Warp is an in-order stream of operations.
type Warp struct {
	Ops []Op
}

// CTA is a cooperative thread array: a set of warps co-scheduled on one
// SM.
type CTA struct {
	Warps []Warp
}

// Kernel is one grid launch. Kernels of a trace execute in order, with
// an implicit .sys release/acquire pair at every boundary (dependent
// kernel launches, the paper's inter-kernel communication pattern).
type Kernel struct {
	CTAs []CTA
}

// PlacementHint pre-places a page on a GPM, standing in for the page
// placement a real first-touch run would produce; pages without hints
// are placed by first touch during simulation.
type PlacementHint struct {
	Page topo.Page
	GPM  topo.GPMID
}

// Trace is a complete program.
type Trace struct {
	Name           string
	FootprintBytes int64
	Kernels        []Kernel
	Placement      []PlacementHint
}

// Ops returns the total operation count.
func (t *Trace) Ops() int {
	n := 0
	for ki := range t.Kernels {
		for ci := range t.Kernels[ki].CTAs {
			for wi := range t.Kernels[ki].CTAs[ci].Warps {
				n += len(t.Kernels[ki].CTAs[ci].Warps[wi].Ops)
			}
		}
	}
	return n
}

// Validate checks structural sanity: word-aligned addresses, sync ops
// with scopes, and non-empty kernels.
func (t *Trace) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("trace: empty name")
	}
	for ki, k := range t.Kernels {
		if len(k.CTAs) == 0 {
			return fmt.Errorf("trace %s: kernel %d has no CTAs", t.Name, ki)
		}
		for ci, c := range k.CTAs {
			for wi, w := range c.Warps {
				for oi, op := range w.Ops {
					if op.Addr%4 != 0 {
						return fmt.Errorf("trace %s: k%d c%d w%d op%d: unaligned addr %#x", t.Name, ki, ci, wi, oi, uint64(op.Addr))
					}
					if op.Kind.IsSync() && op.Scope == ScopeNone {
						return fmt.Errorf("trace %s: k%d c%d w%d op%d: sync op without scope", t.Name, ki, ci, wi, oi)
					}
					if op.Kind > StoreRel {
						return fmt.Errorf("trace %s: k%d c%d w%d op%d: bad kind %d", t.Name, ki, ci, wi, oi, op.Kind)
					}
					if op.Scope > ScopeSys {
						return fmt.Errorf("trace %s: k%d c%d w%d op%d: bad scope %d", t.Name, ki, ci, wi, oi, op.Scope)
					}
				}
			}
		}
	}
	return nil
}

// AssignCTA implements contiguous CTA scheduling (inherited from the
// MCM-GPU and NUMA-aware multi-GPU work the paper cites): consecutive
// CTAs map to the same GPM so that adjacent CTAs' data locality stays on
// package. CTA i of n maps to one of g GPMs in contiguous blocks.
func AssignCTA(i, n, g int) topo.GPMID {
	if n <= 0 || g <= 0 || i < 0 || i >= n {
		panic(fmt.Sprintf("trace: AssignCTA(%d, %d, %d) out of range", i, n, g))
	}
	return topo.GPMID(i * g / n)
}
