package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"hmg/internal/topo"
)

func sampleTrace() *Trace {
	return &Trace{
		Name:           "sample",
		FootprintBytes: 1 << 20,
		Placement: []PlacementHint{
			{Page: 0, GPM: 2},
			{Page: 1, GPM: 5},
		},
		Kernels: []Kernel{
			{CTAs: []CTA{
				{Warps: []Warp{
					{Ops: []Op{
						{Kind: Load, Addr: 0x1000, Gap: 10},
						{Kind: Store, Addr: 0x1004, Gap: 2},
						{Kind: LoadAcq, Scope: ScopeGPU, Addr: 0x2000, Gap: 0},
						{Kind: StoreRel, Scope: ScopeSys, Addr: 0x2004, Gap: 5},
						{Kind: Atomic, Scope: ScopeGPU, Addr: 0x3000, Gap: 1},
					}},
					{Ops: []Op{{Kind: Load, Addr: 0x100, Gap: 3}}},
				}},
				{Warps: []Warp{{Ops: []Op{{Kind: Store, Addr: 0x4000}}}}},
			}},
			{CTAs: []CTA{{Warps: []Warp{{Ops: []Op{{Kind: Load, Addr: 0}}}}}}},
		},
	}
}

func TestScopeAndKindStrings(t *testing.T) {
	if ScopeGPU.String() != ".gpu" || ScopeSys.String() != ".sys" || ScopeCTA.String() != ".cta" || ScopeNone.String() != "none" {
		t.Error("scope names wrong")
	}
	if Load.String() != "Ld" || StoreRel.String() != "StRel" {
		t.Error("op kind names wrong")
	}
	if !strings.Contains(Scope(9).String(), "9") || !strings.Contains(OpKind(9).String(), "9") {
		t.Error("unknown enum strings wrong")
	}
}

func TestKindPredicates(t *testing.T) {
	cases := []struct {
		k                       OpKind
		isLoad, isStore, isSync bool
	}{
		{Load, true, false, false},
		{Store, false, true, false},
		{Atomic, true, true, true},
		{LoadAcq, true, false, true},
		{StoreRel, false, true, true},
	}
	for _, c := range cases {
		if c.k.IsLoad() != c.isLoad || c.k.IsStore() != c.isStore || c.k.IsSync() != c.isSync {
			t.Errorf("%v predicates wrong", c.k)
		}
	}
}

func TestOpsCount(t *testing.T) {
	if got := sampleTrace().Ops(); got != 8 {
		t.Fatalf("Ops = %d, want 8", got)
	}
}

func TestValidate(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatalf("sample invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Trace)
	}{
		{"empty name", func(tr *Trace) { tr.Name = "" }},
		{"empty kernel", func(tr *Trace) { tr.Kernels[0].CTAs = nil }},
		{"unaligned addr", func(tr *Trace) { tr.Kernels[0].CTAs[0].Warps[0].Ops[0].Addr = 3 }},
		{"sync no scope", func(tr *Trace) { tr.Kernels[0].CTAs[0].Warps[0].Ops[2].Scope = ScopeNone }},
		{"bad kind", func(tr *Trace) { tr.Kernels[0].CTAs[0].Warps[0].Ops[0].Kind = 99 }},
		{"bad scope", func(tr *Trace) { tr.Kernels[0].CTAs[0].Warps[0].Ops[0].Scope = 99 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := sampleTrace()
			c.mut(tr)
			if tr.Validate() == nil {
				t.Error("Validate accepted corrupt trace")
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", tr, got)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("Decode accepted garbage")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("Decode accepted empty input")
	}
	// Right magic, wrong version.
	if _, err := Decode(bytes.NewReader([]byte{'H', 'M', 'G', 'T', 99})); err == nil {
		t.Error("Decode accepted bad version")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 10, len(full) / 2, len(full) - 1} {
		if _, err := Decode(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Decode accepted truncation at %d", cut)
		}
	}
}

// Property: random well-formed traces round-trip exactly.
func TestRoundTripProperty(t *testing.T) {
	gen := func(seed int64) *Trace {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{Name: "prop", FootprintBytes: rng.Int63n(1 << 30)}
		for p := 0; p < rng.Intn(4); p++ {
			tr.Placement = append(tr.Placement, PlacementHint{Page: topo.Page(rng.Intn(100)), GPM: topo.GPMID(rng.Intn(16))})
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			var kern Kernel
			for c := 0; c < 1+rng.Intn(3); c++ {
				var cta CTA
				for w := 0; w < rng.Intn(3); w++ {
					var wp Warp
					for o := 0; o < rng.Intn(10); o++ {
						op := Op{
							Kind: OpKind(rng.Intn(5)),
							Addr: topo.Addr(rng.Intn(1<<20)) &^ 3,
							Gap:  uint32(rng.Intn(100)),
						}
						if op.Kind.IsSync() {
							op.Scope = Scope(1 + rng.Intn(3))
						} else if rng.Intn(2) == 0 {
							op.Scope = ScopeCTA
						}
						wp.Ops = append(wp.Ops, op)
					}
					cta.Warps = append(cta.Warps, wp)
				}
				kern.CTAs = append(kern.CTAs, cta)
			}
			tr.Kernels = append(tr.Kernels, kern)
		}
		return tr
	}
	prop := func(seed int64) bool {
		tr := gen(seed)
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(tr, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAssignCTAContiguous(t *testing.T) {
	// 16 CTAs on 4 GPMs: blocks of 4.
	for i := 0; i < 16; i++ {
		want := topo.GPMID(i / 4)
		if got := AssignCTA(i, 16, 4); got != want {
			t.Fatalf("AssignCTA(%d) = %d, want %d", i, got, want)
		}
	}
	// Monotone non-decreasing and covering all GPMs when n >= g.
	prev := topo.GPMID(0)
	seen := map[topo.GPMID]bool{}
	for i := 0; i < 37; i++ {
		g := AssignCTA(i, 37, 8)
		if g < prev {
			t.Fatal("AssignCTA not monotone")
		}
		if g < 0 || g >= 8 {
			t.Fatalf("AssignCTA out of range: %d", g)
		}
		prev = g
		seen[g] = true
	}
	if len(seen) != 8 {
		t.Fatalf("AssignCTA covered %d of 8 GPMs", len(seen))
	}
}

func TestAssignCTAPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("AssignCTA out of range did not panic")
		}
	}()
	AssignCTA(5, 5, 4)
}

func BenchmarkEncode(b *testing.B) {
	tr := sampleTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// failWriter errors after n bytes, exercising Encode's error paths.
type failWriter struct{ left int }

func (w *failWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return 0, errWrite
	}
	n := len(p)
	if n > w.left {
		n = w.left
	}
	w.left -= n
	if n < len(p) {
		return n, errWrite
	}
	return n, nil
}

var errWrite = &writeErr{}

type writeErr struct{}

func (*writeErr) Error() string { return "synthetic write failure" }

func TestEncodeWriteErrors(t *testing.T) {
	tr := sampleTrace()
	var full bytes.Buffer
	if err := Encode(&full, tr); err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < full.Len(); cut += 7 {
		if err := Encode(&failWriter{left: cut}, tr); err == nil {
			t.Fatalf("Encode succeeded with writer failing after %d bytes", cut)
		}
	}
}

func TestEncodeRejectsInvalidTrace(t *testing.T) {
	tr := sampleTrace()
	tr.Name = ""
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err == nil {
		t.Fatal("Encode accepted invalid trace")
	}
}
