// Package cache implements the set-associative caches used for GPU L1s
// and the distributed L2 slices: LRU replacement, write-through or
// write-back policies, predicate-based bulk invalidation (for software
// coherence's acquire semantics), and optional sparse per-word values so
// that the coherence protocols can be checked functionally, not just for
// timing.
package cache

import (
	"fmt"

	"hmg/internal/topo"
)

// WordSize is the granularity of value tracking, in bytes.
const WordSize = 4

// WordOf returns the line-relative word index of an address.
func WordOf(a topo.Addr, lineSize int) uint16 {
	return uint16((uint64(a) % uint64(lineSize)) / WordSize)
}

// Entry is one cache line's metadata. Data is nil unless value tracking
// is enabled and a word of the line has been written or filled.
type Entry struct {
	Line  topo.Line
	Valid bool
	Dirty bool
	// Data maps line-relative word index to value. Sparse: absent words
	// take the backing store's value.
	Data map[uint16]uint64
	lru  uint64
}

// Value returns the tracked value of a word, if present.
func (e *Entry) Value(word uint16) (uint64, bool) {
	if e.Data == nil {
		return 0, false
	}
	v, ok := e.Data[word]
	return v, ok
}

// SetValue records a word value on the line.
//
//lint:allow hotalloc sparse value-tracking map; allocated on the first tracked write to a line
func (e *Entry) SetValue(word uint16, v uint64) {
	if e.Data == nil {
		e.Data = make(map[uint16]uint64, 4)
	}
	e.Data[word] = v
}

// MergeFrom copies all tracked words of src into e, overwriting e's view.
// Fill responses use it to install home-node data.
//
//lint:allow hotalloc sparse value-tracking map; allocated on the first tracked fill of a line
func (e *Entry) MergeFrom(src map[uint16]uint64) {
	if len(src) == 0 {
		return
	}
	if e.Data == nil {
		e.Data = make(map[uint16]uint64, len(src))
	}
	//lint:allow determinism word-keyed map copy; every word lands on its own key, so order cannot matter
	for w, v := range src {
		e.Data[w] = v
	}
}

// Config sizes a cache.
type Config struct {
	CapacityBytes int
	LineSize      int
	Ways          int
}

// Validate reports whether the configuration describes a realizable
// cache.
func (c Config) Validate() error {
	switch {
	case c.LineSize <= 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache: LineSize %d must be a positive power of two", c.LineSize)
	case c.Ways <= 0:
		return fmt.Errorf("cache: Ways %d must be positive", c.Ways)
	case c.CapacityBytes < c.LineSize*c.Ways:
		return fmt.Errorf("cache: capacity %d smaller than one set (%d)", c.CapacityBytes, c.LineSize*c.Ways)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Hits, Misses   uint64
	Fills, Evicts  uint64
	Invalidations  uint64 // lines invalidated individually
	BulkInvalLines uint64 // lines invalidated by bulk (acquire) flushes
	WriteHits      uint64
	WriteMisses    uint64
}

// Cache is a set-associative cache with true-LRU replacement within each
// set. It is a passive structure: timing is applied by its controller.
type Cache struct {
	cfg     Config
	sets    [][]Entry
	numSets uint64
	clock   uint64 // LRU timestamp source
	filled  int

	Stats Stats
}

// New builds a cache; it panics on an invalid configuration because
// configurations are validated at system construction.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	numSets := cfg.CapacityBytes / (cfg.LineSize * cfg.Ways)
	c := &Cache{cfg: cfg, numSets: uint64(numSets)}
	c.sets = make([][]Entry, numSets)
	for i := range c.sets {
		c.sets[i] = make([]Entry, cfg.Ways)
	}
	return c
}

// Config returns the cache's geometry.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return len(c.sets) }

// Lines returns the number of currently valid lines.
func (c *Cache) Lines() int { return c.filled }

func (c *Cache) setOf(l topo.Line) []Entry { return c.sets[uint64(l)%c.numSets] }

// Lookup probes the cache. On a hit it refreshes LRU state and returns
// the entry; the pointer stays valid until the next Fill or invalidation
// touching its set.
func (c *Cache) Lookup(l topo.Line) (*Entry, bool) {
	set := c.setOf(l)
	for i := range set {
		if set[i].Valid && set[i].Line == l {
			c.clock++
			set[i].lru = c.clock
			c.Stats.Hits++
			return &set[i], true
		}
	}
	c.Stats.Misses++
	return nil, false
}

// Peek probes without touching LRU or stats, for profiling and tests.
func (c *Cache) Peek(l topo.Line) (*Entry, bool) {
	set := c.setOf(l)
	for i := range set {
		if set[i].Valid && set[i].Line == l {
			return &set[i], true
		}
	}
	return nil, false
}

// Fill inserts a line, evicting the LRU way of its set if necessary. It
// returns the entry for the new line and, when a valid line was
// displaced, a copy of the victim. Filling an already-present line just
// refreshes it.
func (c *Cache) Fill(l topo.Line) (*Entry, *Entry) {
	set := c.setOf(l)
	c.clock++
	for i := range set {
		if set[i].Valid && set[i].Line == l {
			set[i].lru = c.clock
			return &set[i], nil
		}
	}
	// Choose an invalid way first, else the LRU valid way.
	victimIdx := -1
	for i := range set {
		if !set[i].Valid {
			victimIdx = i
			break
		}
	}
	var victim *Entry
	if victimIdx == -1 {
		victimIdx = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victimIdx].lru {
				victimIdx = i
			}
		}
		v := set[victimIdx] // copy out before overwrite
		victim = &v
		c.Stats.Evicts++
		c.filled--
	}
	set[victimIdx] = Entry{Line: l, Valid: true, lru: c.clock}
	c.filled++
	c.Stats.Fills++
	return &set[victimIdx], victim
}

// Invalidate drops a single line if present, returning whether it was.
func (c *Cache) Invalidate(l topo.Line) bool {
	set := c.setOf(l)
	for i := range set {
		if set[i].Valid && set[i].Line == l {
			set[i] = Entry{}
			c.filled--
			c.Stats.Invalidations++
			return true
		}
	}
	return false
}

// InvalidateRegion drops every cached line in [first, first+n), the
// fan-out of a coarse-grained directory invalidation. It returns the
// number of lines dropped.
func (c *Cache) InvalidateRegion(first topo.Line, n int) int {
	dropped := 0
	for i := 0; i < n; i++ {
		if c.Invalidate(first + topo.Line(i)) {
			dropped++
		}
	}
	return dropped
}

// InvalidateWhere drops every valid line satisfying pred, returning the
// count. Software coherence's bulk acquire invalidation uses it (pred ==
// nil drops everything).
func (c *Cache) InvalidateWhere(pred func(topo.Line) bool) int {
	dropped := 0
	for s := range c.sets {
		set := c.sets[s]
		for i := range set {
			if set[i].Valid && (pred == nil || pred(set[i].Line)) {
				set[i] = Entry{}
				c.filled--
				dropped++
			}
		}
	}
	c.Stats.BulkInvalLines += uint64(dropped)
	return dropped
}

// FlushDirty clears the dirty bit of every dirty entry and hands a copy
// of each to fn — the release-operation flush of write-back
// configurations. Entries stay valid (clean) in the cache.
func (c *Cache) FlushDirty(fn func(Entry)) int {
	n := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].Valid && c.sets[s][i].Dirty {
				c.sets[s][i].Dirty = false
				n++
				fn(c.sets[s][i])
			}
		}
	}
	return n
}

// DirtyLines returns copies of all dirty entries, used by release
// operations under write-back configurations.
func (c *Cache) DirtyLines() []Entry {
	var out []Entry
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].Valid && c.sets[s][i].Dirty {
				out = append(out, c.sets[s][i])
			}
		}
	}
	return out
}

// ForEach visits every valid entry.
func (c *Cache) ForEach(fn func(*Entry)) {
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].Valid {
				fn(&c.sets[s][i])
			}
		}
	}
}
