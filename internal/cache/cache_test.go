package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hmg/internal/topo"
)

func smallCfg() Config {
	return Config{CapacityBytes: 8 * 128 * 4, LineSize: 128, Ways: 4} // 8 sets × 4 ways
}

func TestConfigValidate(t *testing.T) {
	if err := smallCfg().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{CapacityBytes: 4096, LineSize: 100, Ways: 4}, // non-pow2 line
		{CapacityBytes: 4096, LineSize: 128, Ways: 0}, // zero ways
		{CapacityBytes: 128, LineSize: 128, Ways: 4},  // smaller than a set
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted: %+v", i, c)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{CapacityBytes: 1, LineSize: 128, Ways: 1})
}

func TestLookupMissThenFillHit(t *testing.T) {
	c := New(smallCfg())
	if _, ok := c.Lookup(42); ok {
		t.Fatal("hit in empty cache")
	}
	c.Fill(42)
	e, ok := c.Lookup(42)
	if !ok || e.Line != 42 {
		t.Fatal("miss after Fill")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || c.Stats.Fills != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if c.Lines() != 1 {
		t.Fatalf("Lines = %d", c.Lines())
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallCfg())
	numSets := topo.Line(c.Sets())
	// Four lines mapping to set 0.
	lines := []topo.Line{0, numSets, 2 * numSets, 3 * numSets}
	for _, l := range lines {
		c.Fill(l)
	}
	c.Lookup(lines[0]) // refresh line 0; LRU is now lines[1]
	_, victim := c.Fill(4 * numSets)
	if victim == nil || victim.Line != lines[1] {
		t.Fatalf("victim = %+v, want line %d", victim, lines[1])
	}
	if _, ok := c.Peek(lines[0]); !ok {
		t.Fatal("recently used line evicted")
	}
	if _, ok := c.Peek(lines[1]); ok {
		t.Fatal("victim still present")
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	c := New(smallCfg())
	e1, _ := c.Fill(7)
	e1.Dirty = true
	e1.SetValue(3, 99)
	e2, victim := c.Fill(7)
	if victim != nil {
		t.Fatal("refill of present line reported a victim")
	}
	if !e2.Dirty {
		t.Fatal("refill cleared dirty bit")
	}
	if v, ok := e2.Value(3); !ok || v != 99 {
		t.Fatal("refill lost data")
	}
	if c.Lines() != 1 {
		t.Fatalf("Lines = %d after double fill", c.Lines())
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallCfg())
	c.Fill(5)
	if !c.Invalidate(5) {
		t.Fatal("Invalidate missed present line")
	}
	if c.Invalidate(5) {
		t.Fatal("Invalidate hit absent line")
	}
	if c.Lines() != 0 {
		t.Fatalf("Lines = %d", c.Lines())
	}
	if c.Stats.Invalidations != 1 {
		t.Fatalf("Invalidations = %d", c.Stats.Invalidations)
	}
}

func TestInvalidateRegion(t *testing.T) {
	c := New(smallCfg())
	c.Fill(8)
	c.Fill(9)
	c.Fill(11)
	if got := c.InvalidateRegion(8, 4); got != 3 {
		t.Fatalf("InvalidateRegion dropped %d, want 3", got)
	}
	if c.Lines() != 0 {
		t.Fatalf("Lines = %d", c.Lines())
	}
}

func TestInvalidateWhere(t *testing.T) {
	c := New(smallCfg())
	for l := topo.Line(0); l < 16; l++ {
		c.Fill(l)
	}
	odd := c.InvalidateWhere(func(l topo.Line) bool { return l%2 == 1 })
	if odd != 8 {
		t.Fatalf("dropped %d odd lines, want 8", odd)
	}
	rest := c.InvalidateWhere(nil)
	if rest != 8 {
		t.Fatalf("bulk dropped %d, want 8", rest)
	}
	if c.Stats.BulkInvalLines != 16 {
		t.Fatalf("BulkInvalLines = %d", c.Stats.BulkInvalLines)
	}
}

func TestDirtyLines(t *testing.T) {
	c := New(smallCfg())
	e, _ := c.Fill(3)
	e.Dirty = true
	c.Fill(4)
	dirty := c.DirtyLines()
	if len(dirty) != 1 || dirty[0].Line != 3 {
		t.Fatalf("DirtyLines = %+v", dirty)
	}
}

func TestEntryValues(t *testing.T) {
	var e Entry
	if _, ok := e.Value(0); ok {
		t.Fatal("value present on fresh entry")
	}
	e.SetValue(2, 77)
	if v, ok := e.Value(2); !ok || v != 77 {
		t.Fatal("SetValue lost value")
	}
	e.MergeFrom(map[uint16]uint64{2: 100, 5: 50})
	if v, _ := e.Value(2); v != 100 {
		t.Fatal("MergeFrom did not overwrite")
	}
	if v, ok := e.Value(5); !ok || v != 50 {
		t.Fatal("MergeFrom did not add")
	}
	e.MergeFrom(nil) // no-op
}

func TestWordOf(t *testing.T) {
	if WordOf(0, 128) != 0 {
		t.Fatal("WordOf(0)")
	}
	if WordOf(4, 128) != 1 {
		t.Fatal("WordOf(4)")
	}
	if WordOf(128+12, 128) != 3 {
		t.Fatal("WordOf(140)")
	}
}

func TestPeekDoesNotPerturb(t *testing.T) {
	c := New(smallCfg())
	c.Fill(1)
	h, m := c.Stats.Hits, c.Stats.Misses
	c.Peek(1)
	c.Peek(999)
	if c.Stats.Hits != h || c.Stats.Misses != m {
		t.Fatal("Peek changed stats")
	}
}

// Property: the number of valid lines never exceeds capacity, and a
// filled line is always immediately findable.
func TestFillInvariants(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(smallCfg())
		maxLines := c.Sets() * c.Config().Ways
		for i := 0; i < 500; i++ {
			l := topo.Line(rng.Intn(100))
			switch rng.Intn(3) {
			case 0:
				c.Fill(l)
				if _, ok := c.Peek(l); !ok {
					return false
				}
			case 1:
				c.Lookup(l)
			case 2:
				c.Invalidate(l)
			}
			if c.Lines() > maxLines || c.Lines() < 0 {
				return false
			}
		}
		// Recount valid entries and compare with the running counter.
		count := 0
		c.ForEach(func(*Entry) { count++ })
		return count == c.Lines()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: with W ways, the W most recently touched lines of one set
// are always resident.
func TestLRUWorkingSetProperty(t *testing.T) {
	c := New(smallCfg())
	ways := c.Config().Ways
	sets := topo.Line(c.Sets())
	rng := rand.New(rand.NewSource(7))
	var recent []topo.Line
	touch := func(l topo.Line) {
		if _, ok := c.Lookup(l); !ok {
			c.Fill(l)
		}
		for i, r := range recent {
			if r == l {
				recent = append(recent[:i], recent[i+1:]...)
				break
			}
		}
		recent = append(recent, l)
		if len(recent) > ways {
			recent = recent[1:]
		}
	}
	for i := 0; i < 2000; i++ {
		touch(topo.Line(rng.Intn(32)) * sets) // all map to set 0
		for _, r := range recent {
			if _, ok := c.Peek(r); !ok {
				t.Fatalf("recently used line %d not resident (recent=%v)", r, recent)
			}
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(Config{CapacityBytes: 3 << 20, LineSize: 128, Ways: 16})
	for l := topo.Line(0); l < 1024; l++ {
		c.Fill(l)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(topo.Line(i & 1023))
	}
}

func BenchmarkFillEvict(b *testing.B) {
	c := New(Config{CapacityBytes: 3 << 20, LineSize: 128, Ways: 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(topo.Line(i))
	}
}
