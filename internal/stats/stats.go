// Package stats provides the small statistical toolkit used across the
// simulator: counters, running means, ratio helpers, geometric means for
// speedup aggregation, and the correlation coefficient used by the
// simulator-calibration experiment (paper Fig. 7).
package stats

import "math"

// Mean accumulates a running arithmetic mean without storing samples.
type Mean struct {
	n   uint64
	sum float64
}

// Add records one sample.
func (m *Mean) Add(x float64) { m.n++; m.sum += x }

// AddN records a sample with weight n.
func (m *Mean) AddN(x float64, n uint64) { m.n += n; m.sum += x * float64(n) }

// N returns the number of samples.
func (m *Mean) N() uint64 { return m.n }

// Sum returns the sample total.
func (m *Mean) Sum() float64 { return m.sum }

// Value returns the mean, or 0 when no samples were recorded.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return 0
	}
	return m.sum / float64(m.n)
}

// GeoMean returns the geometric mean of xs, ignoring non-positive values
// the way speedup aggregations conventionally do. It returns 0 when no
// usable samples exist.
func GeoMean(xs []float64) float64 {
	var logSum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			logSum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Correlation returns the Pearson correlation coefficient of paired
// samples. It returns 0 if fewer than two pairs exist or either series is
// constant.
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MeanAbsRelError returns mean(|x-y| / y) over pairs with y != 0, the
// "average absolute error" metric the paper reports for its simulator.
func MeanAbsRelError(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	var m Mean
	for i := 0; i < n; i++ {
		if ys[i] != 0 {
			m.Add(math.Abs(xs[i]-ys[i]) / math.Abs(ys[i]))
		}
	}
	return m.Value()
}

// Ratio returns num/den, or 0 when den is 0, a convenience for rate
// reporting from raw counters.
func Ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}
