package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	var m Mean
	if m.Value() != 0 {
		t.Fatal("empty mean not 0")
	}
	m.Add(2)
	m.Add(4)
	if m.Value() != 3 || m.N() != 2 || m.Sum() != 6 {
		t.Fatalf("mean = %v n=%d sum=%v", m.Value(), m.N(), m.Sum())
	}
	m.AddN(10, 2)
	if m.N() != 4 || m.Value() != (2+4+20)/4.0 {
		t.Fatalf("after AddN: %v", m.Value())
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{5}); math.Abs(g-5) > 1e-12 {
		t.Fatalf("GeoMean(5) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
	// Non-positive values are ignored.
	if g := GeoMean([]float64{0, -1, 4}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean with junk = %v", g)
	}
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	prop := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		min, max := xs[0], xs[0]
		for _, v := range xs {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if c := Correlation(xs, []float64{2, 4, 6, 8}); math.Abs(c-1) > 1e-12 {
		t.Fatalf("perfect correlation = %v", c)
	}
	if c := Correlation(xs, []float64{8, 6, 4, 2}); math.Abs(c+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %v", c)
	}
	if c := Correlation(xs, []float64{5, 5, 5, 5}); c != 0 {
		t.Fatalf("constant series correlation = %v", c)
	}
	if c := Correlation([]float64{1}, []float64{2}); c != 0 {
		t.Fatalf("single-pair correlation = %v", c)
	}
}

func TestMeanAbsRelError(t *testing.T) {
	got := MeanAbsRelError([]float64{11, 18}, []float64{10, 20})
	want := (0.1 + 0.1) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MARE = %v, want %v", got, want)
	}
	if MeanAbsRelError([]float64{1}, []float64{0}) != 0 {
		t.Fatal("zero reference not skipped")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio(6,3)")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("Ratio(1,0) should be 0")
	}
}
