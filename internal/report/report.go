// Package report formats experiment results as aligned ASCII tables, the
// textual equivalent of the paper's figures.
package report

import (
	"fmt"
	"strings"

	"hmg/internal/stats"
)

// Row is one labeled row of numeric cells.
type Row struct {
	Label string
	Cells []float64
}

// Table is a titled grid of rows. The zeroth column holds row labels.
type Table struct {
	Title   string
	Columns []string // column headers, excluding the label column
	Rows    []Row
	Notes   []string
	// Precision is the number of decimal places (default 2).
	Precision int
}

// Add appends a row.
func (t *Table) Add(label string, cells ...float64) {
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddGeoMeanRow appends a row holding the per-column geometric mean of
// all current rows.
func (t *Table) AddGeoMeanRow(label string) {
	if len(t.Rows) == 0 {
		return
	}
	n := len(t.Columns)
	cells := make([]float64, n)
	for c := 0; c < n; c++ {
		var col []float64
		for _, r := range t.Rows {
			if c < len(r.Cells) {
				col = append(col, r.Cells[c])
			}
		}
		cells[c] = stats.GeoMean(col)
	}
	t.Add(label, cells...)
}

// Column returns all cell values of column c in row order.
func (t *Table) Column(c int) []float64 {
	var out []float64
	for _, r := range t.Rows {
		if c < len(r.Cells) {
			out = append(out, r.Cells[c])
		}
	}
	return out
}

// Cell returns the value at (row label, column header), or false.
func (t *Table) Cell(label, column string) (float64, bool) {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
			break
		}
	}
	if ci < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == label && ci < len(r.Cells) {
			return r.Cells[ci], true
		}
	}
	return 0, false
}

// String renders the table.
func (t *Table) String() string {
	prec := t.Precision
	if prec == 0 {
		prec = 2
	}
	labelW := 4
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c)
		for _, r := range t.Rows {
			if i < len(r.Cells) {
				if w := len(formatCell(r.Cells[i], prec)); w > colW[i] {
					colW[i] = w
				}
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	fmt.Fprintf(&b, "%-*s", labelW, "")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colW[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW, r.Label)
		for i := range t.Columns {
			if i < len(r.Cells) {
				fmt.Fprintf(&b, "  %*s", colW[i], formatCell(r.Cells[i], prec))
			} else {
				fmt.Fprintf(&b, "  %*s", colW[i], "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func formatCell(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}
