package report

import (
	"math"
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{Title: "Fig X", Columns: []string{"A", "B"}}
	t.Add("one", 1.0, 2.0)
	t.Add("two", 4.0, 8.0)
	return t
}

func TestStringLayout(t *testing.T) {
	s := sample().String()
	if !strings.Contains(s, "Fig X") {
		t.Error("missing title")
	}
	for _, want := range []string{"one", "two", "1.00", "8.00", "A", "B"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, rule, header, two rows
		t.Errorf("got %d lines:\n%s", len(lines), s)
	}
}

func TestGeoMeanRow(t *testing.T) {
	tab := sample()
	tab.AddGeoMeanRow("GeoMean")
	last := tab.Rows[len(tab.Rows)-1]
	if last.Label != "GeoMean" {
		t.Fatal("geomean row not added")
	}
	if math.Abs(last.Cells[0]-2.0) > 1e-9 || math.Abs(last.Cells[1]-4.0) > 1e-9 {
		t.Fatalf("geomean cells = %v", last.Cells)
	}
}

func TestCell(t *testing.T) {
	tab := sample()
	if v, ok := tab.Cell("two", "B"); !ok || v != 8.0 {
		t.Fatalf("Cell = %v, %v", v, ok)
	}
	if _, ok := tab.Cell("two", "Z"); ok {
		t.Error("Cell found unknown column")
	}
	if _, ok := tab.Cell("zzz", "A"); ok {
		t.Error("Cell found unknown row")
	}
}

func TestColumn(t *testing.T) {
	tab := sample()
	col := tab.Column(1)
	if len(col) != 2 || col[0] != 2.0 || col[1] != 8.0 {
		t.Fatalf("Column = %v", col)
	}
}

func TestNotesAndMissingCells(t *testing.T) {
	tab := &Table{Columns: []string{"A", "B"}}
	tab.Add("short", 1.0) // missing second cell
	tab.AddNote("n=%d", 5)
	s := tab.String()
	if !strings.Contains(s, "note: n=5") {
		t.Error("missing note")
	}
	if !strings.Contains(s, "-") {
		t.Error("missing-cell placeholder absent")
	}
}

func TestPrecision(t *testing.T) {
	tab := &Table{Columns: []string{"A"}, Precision: 1}
	tab.Add("r", 1.25)
	if !strings.Contains(tab.String(), "1.2") {
		t.Error("precision not applied")
	}
}

func TestEmptyGeoMean(t *testing.T) {
	tab := &Table{Columns: []string{"A"}}
	tab.AddGeoMeanRow("G") // no rows: no-op
	if len(tab.Rows) != 0 {
		t.Error("geomean added to empty table")
	}
}

func TestCSV(t *testing.T) {
	tab := sample()
	tab.AddNote("hello")
	csv := tab.CSV()
	want := "name,A,B\none,1.00,2.00\ntwo,4.00,8.00\n# hello\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := &Table{Columns: []string{`a,b`, `q"t`}}
	tab.Add("r,1", 1, 2)
	csv := tab.CSV()
	if !strings.Contains(csv, `"a,b"`) || !strings.Contains(csv, `"q""t"`) || !strings.Contains(csv, `"r,1"`) {
		t.Fatalf("CSV escaping wrong: %q", csv)
	}
}

func TestMarkdown(t *testing.T) {
	tab := sample()
	tab.AddNote("n1")
	md := tab.Markdown()
	for _, want := range []string{"### Fig X", "| one | 1.00 | 2.00 |", "|---|---:|---:|", "- n1"} {
		if !strings.Contains(md, want) {
			t.Fatalf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestMarkdownMissingCell(t *testing.T) {
	tab := &Table{Columns: []string{"A", "B"}}
	tab.Add("r", 1)
	if !strings.Contains(tab.Markdown(), "| - |") {
		t.Fatal("missing-cell placeholder absent in markdown")
	}
}
