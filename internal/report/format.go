package report

import (
	"fmt"
	"strings"
)

// CSV renders the table as comma-separated values with a header row.
// Notes are emitted as trailing comment lines ("# ...").
func (t *Table) CSV() string {
	prec := t.Precision
	if prec == 0 {
		prec = 2
	}
	var b strings.Builder
	b.WriteString("name")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(csvEscape(r.Label))
		for i := range t.Columns {
			b.WriteByte(',')
			if i < len(r.Cells) {
				fmt.Fprintf(&b, "%.*f", prec, r.Cells[i])
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Markdown renders the table as a GitHub-flavored markdown table with
// the title as a heading and notes as a trailing list.
func (t *Table) Markdown() string {
	prec := t.Precision
	if prec == 0 {
		prec = 2
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| |")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, " %s |", c)
	}
	b.WriteString("\n|---|")
	for range t.Columns {
		b.WriteString("---:|")
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "| %s |", r.Label)
		for i := range t.Columns {
			if i < len(r.Cells) {
				fmt.Fprintf(&b, " %.*f |", prec, r.Cells[i])
			} else {
				b.WriteString(" - |")
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Notes) > 0 {
		b.WriteByte('\n')
		for _, n := range t.Notes {
			fmt.Fprintf(&b, "- %s\n", n)
		}
	}
	return b.String()
}
