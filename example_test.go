package hmg_test

import (
	"fmt"
	"log"

	"hmg"
	"hmg/internal/trace"
)

// ExampleNewSystem runs a small benchmark slice under HMG and reports
// deterministic facts about the run.
func ExampleNewSystem() {
	cfg := hmg.DefaultConfig(hmg.ProtocolHMG)
	sys, err := hmg.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := hmg.GenerateBenchmark("overfeat", cfg, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("benchmark:", res.Name)
	fmt.Println("kernels:", len(res.KernelCycles))
	fmt.Println("finished:", res.Cycles > 0)
	// Output:
	// benchmark: overfeat
	// kernels: 2
	// finished: true
}

// ExampleHardwareCost reproduces the paper's Section VII-C analysis.
func ExampleHardwareCost() {
	rep := hmg.HardwareCost(hmg.DefaultConfig(hmg.ProtocolHMG))
	fmt.Println("sharers:", rep.MaxSharers)
	fmt.Println("bits/entry:", rep.BitsPerEntry)
	fmt.Printf("fraction of L2: %.1f%%\n", 100*rep.L2Fraction)
	// Output:
	// sharers: 6
	// bits/entry: 55
	// fraction of L2: 2.7%
}

// ExampleRunLitmus demonstrates scoped message passing on the
// functional simulator.
func ExampleRunLitmus() {
	cfg := hmg.DefaultConfig(hmg.ProtocolHMG)
	prog := hmg.NewLitmus("mp").
		Thread(0,
			trace.Op{Kind: trace.Store, Addr: 0x100, Val: 42},
			trace.Op{Kind: trace.StoreRel, Scope: trace.ScopeSys, Addr: 0x200, Val: 1}).
		Thread(12,
			trace.Op{Kind: trace.LoadAcq, Scope: trace.ScopeSys, Addr: 0x200, Gap: 5_000_000},
			trace.Op{Kind: trace.Load, Addr: 0x100}).
		Build()
	res, err := hmg.RunLitmus(cfg, prog, hmg.WithInvariantChecks())
	if err != nil {
		log.Fatal(err)
	}
	flag, _ := res.Value(1, 0)
	data, _ := res.Value(1, 1)
	fmt.Println("flag:", flag, "data:", data)
	// Output:
	// flag: 1 data: 42
}
