// Command hmgsim runs one benchmark (or a trace file) on the simulator
// under a chosen coherence protocol and prints a result summary.
//
// Usage:
//
//	hmgsim -bench nw-16K -protocol HMG
//	hmgsim -bench lstm -protocol SW-NonHier -scale 0.5 -compare
//	hmgsim -trace prog.hmgt -protocol NHCC
//
// With -compare, the benchmark also runs under the no-remote-caching
// baseline and the normalized speedup is reported (the paper's metric).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hmg"
	"hmg/internal/experiments"
	"hmg/internal/proto"
	"hmg/internal/topo"
	"hmg/internal/trace"
	"hmg/internal/workload"
)

func main() {
	bench := flag.String("bench", "", "Table III benchmark to run (see hmgtrace list)")
	traceFile := flag.String("trace", "", "binary trace file to run instead of a benchmark")
	protoName := flag.String("protocol", "HMG", "coherence protocol: "+strings.Join(protocolNames(), ", "))
	scale := flag.Float64("scale", 1.0, "workload scale in (0,1]")
	compare := flag.Bool("compare", false, "also run the no-remote-caching baseline and report speedup")
	sms := flag.Int("sms", 8, "modeled SMs per GPM")
	topoFlag := flag.String("topo", "", topo.SpecFlagUsage)
	check := flag.Bool("check", false, "attach the protocol conformance checker; exit non-zero on invariant violations")
	flag.Parse()

	kind, err := hmg.ParseProtocol(*protoName)
	if err != nil {
		fatal(err)
	}
	spec, err := topo.ParseSpec(*topoFlag)
	if err != nil {
		fatal(err)
	}
	r, err := experiments.NewRunner(experiments.Options{SMsPerGPM: *sms, Scale: *scale, Topo: spec})
	if err != nil {
		fatal(err)
	}
	cfg := r.Config(kind, experiments.Variant{})

	var tr *hmg.Trace
	switch {
	case *traceFile != "":
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err = trace.Decode(f)
		if err != nil {
			fatal(err)
		}
	case *bench != "":
		p, err := workload.Get(*bench)
		if err != nil {
			fatal(err)
		}
		tr = p.Generate(cfg.Topo, *scale)
	default:
		fatal(fmt.Errorf("one of -bench or -trace is required"))
	}

	var opts []hmg.Option
	if *check {
		// The checker's value invariants need value tracking.
		cfg.TrackValues = true
		opts = append(opts, hmg.WithInvariantChecks())
	}
	sys, err := hmg.NewSystem(cfg, opts...)
	if err != nil {
		fatal(err)
	}
	res, err := sys.Run(tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark:         %s\n", tr.Name)
	fmt.Printf("protocol:          %v\n", kind)
	fmt.Printf("topology:          %v (%d GPMs)\n", cfg.Topo, cfg.Topo.TotalGPMs())
	fmt.Printf("ops:               %d (%d loads, %d stores, %d atomics)\n", res.Ops, res.Loads, res.Stores, res.Atomics)
	fmt.Printf("cycles:            %d (%.3f ms at 1.3 GHz)\n", res.Cycles, res.Seconds*1e3)
	fmt.Printf("L1 hit rate:       %.3f\n", res.L1HitRate())
	fmt.Printf("L2 hit rate:       %.3f\n", res.L2HitRate())
	fmt.Printf("inter-GPU traffic: %.2f GB/s\n", res.InterGPUGBs())
	fmt.Printf("intra-GPU traffic: %d bytes\n", res.IntraGPUBytes)
	fmt.Printf("avg load latency:  %.0f cycles\n", res.AvgLoadLatency())
	fmt.Printf("DRAM accesses:     %d reads, %d writes\n", res.DRAMReads, res.DRAMWrites)
	if res.DirStoresSeen > 0 {
		fmt.Printf("dir: %d stores seen, %.2f inv lines/store, %d evictions (%.2f lines each), %.2f GB/s inv traffic\n",
			res.DirStoresSeen, res.InvLinesPerStore(), res.DirEvicts, res.InvLinesPerDirEvict(), res.InvBandwidthGBs())
	}
	if *compare && *bench != "" {
		p, _ := workload.Get(*bench)
		base, err := r.Run(p, proto.NoRemoteCache, experiments.Variant{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("speedup vs no-remote-caching baseline: %.2fx (%d / %d cycles)\n",
			float64(base.Cycles)/float64(res.Cycles), base.Cycles, res.Cycles)
	}
	if *check {
		if err := sys.CheckErr(); err != nil {
			fatal(err)
		}
		fmt.Printf("conformance:       %d invariant violations\n", len(sys.Violations()))
	}
}

func protocolNames() []string {
	var out []string
	for _, k := range hmg.Protocols() {
		out = append(out, k.String())
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hmgsim: %v\n", err)
	os.Exit(1)
}
