// Command hmgspec certifies the executable Table I spec against both
// the paper's structural claims and the implementation: it validates
// the NHCC and HMG rule tables, exhaustively enumerates every
// reachable directory state of the small model (certifying zero
// transient states and full-sharer-set invalidation), and diffs the
// spec against proto.DirCtrl over generated event sequences. Any
// violation or divergence exits non-zero.
//
// Usage:
//
//	hmgspec                  # validate + enumerate + diff both tables
//	hmgspec -seed 7 -ops 65536
//	hmgspec -mutate 1        # self-test: inject a DirCtrl bug, expect divergences
//	hmgspec -render          # print the DESIGN.md Table I fragment and exit
//
// The -mutate flag injects deliberate proto.Mutation bugs into the
// implementation side of the differ and is how the spec tier proves it
// has teeth: a mutated diff must report divergences.
package main

import (
	"flag"
	"fmt"
	"os"

	"hmg/internal/proto"
	"hmg/internal/proto/spec"
)

func main() {
	seed := flag.Uint64("seed", 1, "differ sequence seed")
	ops := flag.Int("ops", 4096, "differ events per table")
	mutate := flag.Int("mutate", 0, "inject Table I mutation bits into the implementation (self-test)")
	render := flag.Bool("render", false, "print the DESIGN.md Table I fragment and exit")
	verbose := flag.Bool("v", false, "print every violation and divergence, not just the first")
	flag.Parse()

	if *render {
		fmt.Print(spec.RenderDoc())
		return
	}

	failed := false
	for _, tab := range []spec.Table{spec.NHCC(), spec.HMG()} {
		rep, err := spec.Enumerate(tab)
		if err != nil {
			fatal(err)
		}
		cfg := spec.DefaultDiffConfig(tab)
		cfg.Seed = *seed
		cfg.Ops = *ops
		cfg.Mutation = proto.Mutation(*mutate)
		divs, err := spec.Diff(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hmgspec: %s: %d states, %d transitions, %d violations; diff: %d ops, %d divergences\n",
			tab.Name, rep.States, rep.Transitions, len(rep.Violations), cfg.Ops, len(divs))
		for i, v := range rep.Violations {
			if !*verbose && i > 0 {
				break
			}
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", tab.Name, v)
		}
		for i, d := range divs {
			if !*verbose && i > 0 {
				break
			}
			fmt.Fprintf(os.Stderr, "FAIL %s: %v\n", tab.Name, d)
		}
		if len(rep.Violations) > 0 || len(divs) > 0 {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "hmgspec: FAILED")
		os.Exit(1)
	}
	fmt.Println("hmgspec: Table I spec certified against the implementation")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hmgspec: %v\n", err)
	os.Exit(1)
}
