// Package cmd_test smoke-tests the command-line tools end to end: each
// binary is built with the local toolchain and driven through its main
// flows.
package cmd_test

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"hmg/internal/experiments"
)

// build compiles one tool into a temp dir and returns the binary path.
func build(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestHmgtraceFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgtrace")
	list := run(t, bin, "list")
	if !strings.Contains(list, "nw-16K") || !strings.Contains(list, "mst") {
		t.Fatalf("list output missing benchmarks:\n%s", list)
	}
	file := filepath.Join(t.TempDir(), "t.hmgt")
	gen := run(t, bin, "gen", "-bench", "overfeat", "-scale", "0.1", "-o", file)
	if !strings.Contains(gen, "wrote") {
		t.Fatalf("gen output: %s", gen)
	}
	if fi, err := os.Stat(file); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
	info := run(t, bin, "info", file)
	if !strings.Contains(info, "overfeat") || !strings.Contains(info, "kernels:   2") {
		t.Fatalf("info output:\n%s", info)
	}
	fig3 := run(t, bin, "fig3", "-bench", "lstm", "-scale", "0.1")
	if !strings.Contains(fig3, "%") {
		t.Fatalf("fig3 output: %s", fig3)
	}
}

func TestHmgsimFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgsim")
	out := run(t, bin, "-bench", "overfeat", "-protocol", "HMG", "-scale", "0.1", "-sms", "4")
	for _, want := range []string{"benchmark:", "cycles:", "L2 hit rate:", "inter-GPU traffic:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hmgsim output missing %q:\n%s", want, out)
		}
	}
	// Unknown protocol errors out, listing the registry's names.
	out2, err := exec.Command(bin, "-bench", "overfeat", "-protocol", "nope").CombinedOutput()
	if err == nil {
		t.Fatal("hmgsim accepted unknown protocol")
	}
	if !strings.Contains(string(out2), "known:") || !strings.Contains(string(out2), "NoRemoteCaching") {
		t.Fatalf("unknown-protocol error does not list known protocols:\n%s", out2)
	}
	// Unknown benchmark errors out, listing the registry's names.
	out2, err = exec.Command(bin, "-bench", "nosuch", "-protocol", "HMG").CombinedOutput()
	if err == nil {
		t.Fatal("hmgsim accepted unknown benchmark")
	}
	if !strings.Contains(string(out2), "known:") || !strings.Contains(string(out2), "nw-16K") {
		t.Fatalf("unknown-benchmark error does not list known benchmarks:\n%s", out2)
	}
	// -check attaches the conformance checker and reports a clean run.
	out3 := run(t, bin, "-bench", "overfeat", "-protocol", "HMG", "-scale", "0.1", "-sms", "2", "-check")
	if !strings.Contains(out3, "conformance:       0 invariant violations") {
		t.Fatalf("hmgsim -check output missing conformance line:\n%s", out3)
	}
}

func TestHmgtraceUnknownBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgtrace")
	for _, args := range [][]string{
		{"gen", "-bench", "nosuch", "-o", filepath.Join(t.TempDir(), "x.hmgt")},
		{"fig3", "-bench", "nosuch"},
	} {
		out, err := exec.Command(bin, args...).CombinedOutput()
		if err == nil {
			t.Fatalf("hmgtrace %v accepted unknown benchmark", args)
		}
		if !strings.Contains(string(out), "known:") || !strings.Contains(string(out), "nw-16K") {
			t.Fatalf("hmgtrace %v error does not list known benchmarks:\n%s", args, out)
		}
	}
}

// TestHmgcheckFlow drives the conformance sweep end to end: a small
// trunk sweep must pass, and the same sweep with an injected Table I
// mutation must fail — the harness proving its own teeth.
func TestHmgcheckFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgcheck")
	out := run(t, bin, "-seeds", "24", "-bench", "nw-16K", "-scale", "0.1")
	if !strings.Contains(out, "cases passed") {
		t.Fatalf("hmgcheck output:\n%s", out)
	}
	// The spec tier (enumerate + diff per table instantiation) rides
	// along in every sweep.
	if !strings.Contains(out, "4 spec)") {
		t.Fatalf("hmgcheck summary missing the spec tier:\n%s", out)
	}
	mutated, err := exec.Command(bin, "-seeds", "64", "-bench", "nw-16K", "-scale", "0.1", "-mutate", "1").CombinedOutput()
	if err == nil {
		t.Fatalf("hmgcheck passed with an injected protocol bug:\n%s", mutated)
	}
	if !strings.Contains(string(mutated), "FAILED") {
		t.Fatalf("mutated sweep did not report failures:\n%s", mutated)
	}
	// Unknown names reuse the registry-derived errors.
	if out, err := exec.Command(bin, "-protocol", "nope").CombinedOutput(); err == nil || !strings.Contains(string(out), "known:") {
		t.Fatalf("hmgcheck unknown protocol: err=%v out=%s", err, out)
	}
	if out, err := exec.Command(bin, "-bench", "nosuch").CombinedOutput(); err == nil || !strings.Contains(string(out), "known:") {
		t.Fatalf("hmgcheck unknown benchmark: err=%v out=%s", err, out)
	}
}

// TestHmgspecFlow drives the Table I spec certifier end to end: the
// trunk run certifies both instantiations, -render emits the DESIGN.md
// fragment, and each deliberate proto.Mutation bit must make the
// spec↔implementation diff fail — the spec tier proving its own teeth.
func TestHmgspecFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgspec")
	out := run(t, bin)
	for _, want := range []string{
		"NHCC: 9 states, 104 transitions, 0 violations",
		"HMG: 9 states, 93 transitions, 0 violations",
		"0 divergences",
		"certified",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("hmgspec output missing %q:\n%s", want, out)
		}
	}
	rendered := run(t, bin, "-render")
	for _, want := range []string{
		"| State | Event | Guard | Next | Sharer set | Invalidations |",
		"| V | Invalidation | always | I | clear sharers | inv full sharer set |",
	} {
		if !strings.Contains(rendered, want) {
			t.Fatalf("hmgspec -render missing %q:\n%s", want, rendered)
		}
	}
	for _, bit := range []string{"1", "2", "4"} {
		mutated, err := exec.Command(bin, "-mutate", bit).CombinedOutput()
		if err == nil {
			t.Fatalf("hmgspec -mutate %s passed with an injected protocol bug:\n%s", bit, mutated)
		}
		if !strings.Contains(string(mutated), "FAILED") || !strings.Contains(string(mutated), "divergences") {
			t.Fatalf("hmgspec -mutate %s did not report divergences:\n%s", bit, mutated)
		}
	}
}

func TestHmgbenchSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgbench")
	out := run(t, bin, "-fig", "cost")
	if !strings.Contains(out, "55.00") {
		t.Fatalf("hmgbench cost output:\n%s", out)
	}
	md := run(t, bin, "-fig", "cost", "-format", "md")
	if !strings.Contains(md, "| bits per entry | 55.00 |") {
		t.Fatalf("markdown output:\n%s", md)
	}
	csv := run(t, bin, "-fig", "cost", "-format", "csv")
	if !strings.Contains(csv, "bits per entry,55.00") {
		t.Fatalf("csv output:\n%s", csv)
	}
	if _, err := exec.Command(bin, "-fig", "nosuch").CombinedOutput(); err == nil {
		t.Fatal("hmgbench accepted unknown figure")
	}
}

// TestHmgbenchFigureRegistrySync pins hmgbench's user-facing figure
// lists to the experiments.Figures registry: the unknown-figure error
// (which prints the known set), the -fig flag usage, and the package
// doc comment must all name exactly the registry's figures.
func TestHmgbenchFigureRegistrySync(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	names := experiments.FigureNames()
	if len(names) != 22 {
		t.Fatalf("registry has %d figures, want 22", len(names))
	}

	bin := build(t, "cmd/hmgbench")
	out, err := exec.Command(bin, "-fig", "nosuch").CombinedOutput()
	if err == nil {
		t.Fatal("hmgbench accepted unknown figure")
	}
	_, known, ok := strings.Cut(string(out), "known: ")
	if !ok {
		t.Fatalf("unknown-figure error does not list known figures:\n%s", out)
	}
	got := strings.Split(strings.TrimSuffix(strings.TrimSpace(known), ")"), ",")
	want := append(append([]string{}, names...), "all")
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("known-figure list out of sync with registry:\n got %v\nwant %v", got, want)
	}

	usage, _ := exec.Command(bin, "-help").CombinedOutput()
	src, err := os.ReadFile(filepath.Join("hmgbench", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	doc, _, ok := strings.Cut(string(src), "package main")
	if !ok {
		t.Fatal("no package clause in hmgbench/main.go")
	}
	for _, n := range names {
		if !strings.Contains(string(usage), n) {
			t.Errorf("-fig flag usage does not mention figure %q", n)
		}
		if !strings.Contains(doc, n+",") && !strings.Contains(doc, n+".") {
			t.Errorf("hmgbench doc comment does not list figure %q", n)
		}
	}
}

// TestHmgbenchJobsDeterminism: parallel prewarming must not change the
// tables — -jobs 8 output is byte-identical to -jobs 1.
func TestHmgbenchJobsDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgbench")
	serial := run(t, bin, "-fig", "9", "-scale", "0.1", "-sms", "4", "-jobs", "1")
	parallel := run(t, bin, "-fig", "9", "-scale", "0.1", "-sms", "4", "-jobs", "8")
	if !bytes.Equal([]byte(serial), []byte(parallel)) {
		t.Fatalf("-jobs 8 output differs from -jobs 1:\n--- jobs=1\n%s\n--- jobs=8\n%s", serial, parallel)
	}
}

// TestHmgbenchStoreFlow drives the persistent result store end to end:
// a cold campaign populates -cachedir, a warm rerun must serve every
// run from disk (zero simulations) with byte-identical tables, and a
// deliberately truncated record must be re-simulated — again to
// identical bytes — never trusted. scripts/verify.sh repeats this flow
// at the full acceptance scale (-fig all -scale 0.25); this test keeps
// the same contract cheap enough for the tier-1 suite.
func TestHmgbenchStoreFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgbench")
	store := filepath.Join(t.TempDir(), "store")
	campaign := func() (string, string) {
		t.Helper()
		cmd := exec.Command(bin, "-fig", "9", "-scale", "0.1", "-sms", "4", "-cachedir", store, "-v")
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("hmgbench -cachedir: %v\n%s", err, stderr.String())
		}
		return stdout.String(), stderr.String()
	}

	cold, coldLog := campaign()
	if !strings.Contains(coldLog, "disk misses") || strings.Contains(coldLog, " 0 disk writes") {
		t.Fatalf("cold campaign did not populate the store:\n%s", coldLog)
	}
	warm, warmLog := campaign()
	if warm != cold {
		t.Fatalf("warm tables differ from cold:\n--- cold\n%s\n--- warm\n%s", cold, warm)
	}
	if !strings.Contains(warmLog, "campaign: 0 unique runs") {
		t.Fatalf("warm campaign simulated runs the store should have served:\n%s", warmLog)
	}
	if strings.Contains(warmLog, " 0 disk hits") || !strings.Contains(warmLog, "0 disk misses") {
		t.Fatalf("warm campaign not fully disk-served:\n%s", warmLog)
	}

	// Damage one record: exactly that run re-simulates, and the output
	// bytes still match the cold campaign's.
	victims, err := filepath.Glob(filepath.Join(store, "*", "*", "*.res"))
	if err != nil || len(victims) == 0 {
		t.Fatalf("no store records found: %v", err)
	}
	fi, err := os.Stat(victims[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victims[0], fi.Size()-1); err != nil {
		t.Fatal(err)
	}
	healed, healedLog := campaign()
	if healed != cold {
		t.Fatalf("re-simulated tables differ from cold:\n--- cold\n%s\n--- healed\n%s", cold, healed)
	}
	if !strings.Contains(healedLog, "campaign: 1 unique runs") {
		t.Fatalf("truncated record was not re-simulated (or more than one run was):\n%s", healedLog)
	}

	// -storeversion prints the stamp that scopes the store — the CI
	// cache key.
	if got := strings.TrimSpace(run(t, bin, "-storeversion")); got != experiments.ModelVersion() {
		t.Fatalf("-storeversion = %q, want %q", got, experiments.ModelVersion())
	}
}

// TestHmglintFlow drives the linter through its exit-code contract:
// a clean module exits 0, an injected violation exits nonzero with the
// finding on the output, and an unknown analyzer name lists the known
// set (mirroring the registry errors of the other tools).
func TestHmglintFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmglint")

	// A tiny module using the simulator package names, once clean and
	// once with a wall-clock read injected into the engine package.
	writeModule := func(engineSrc string) string {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module probe\n\ngo 1.22\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Join(dir, "engine"), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "engine", "engine.go"), []byte(engineSrc), 0o644); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	runIn := func(dir string, args ...string) (string, error) {
		cmd := exec.Command(bin, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return string(out), err
	}

	clean := writeModule("package engine\n\nfunc Tick(now uint64) uint64 { return now + 1 }\n")
	if out, err := runIn(clean, "./..."); err != nil {
		t.Fatalf("hmglint on a clean module: %v\n%s", err, out)
	}

	dirty := writeModule("package engine\n\nimport \"time\"\n\nfunc Tick() int64 { return time.Now().UnixNano() }\n")
	out, err := runIn(dirty, "./...")
	if err == nil {
		t.Fatalf("hmglint passed a wall-clock read in package engine:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("violation exit = %v, want exit status 2\n%s", err, out)
	}
	if !strings.Contains(out, "time.Now reads the wall clock") || !strings.Contains(out, "determinism") {
		t.Fatalf("finding not reported:\n%s", out)
	}

	// Unknown analyzer selection mirrors proto.ParseKind: the error
	// names every registered analyzer.
	out, err = runIn(clean, "-analyzers", "bogus", "./...")
	if err == nil {
		t.Fatalf("hmglint accepted unknown analyzer:\n%s", out)
	}
	for _, name := range []string{"determinism", "eventemit", "exhaustive", "hotalloc", "readonlyhooks", "speccover"} {
		if !strings.Contains(out, name) {
			t.Fatalf("unknown-analyzer error does not list %q:\n%s", name, out)
		}
	}

	// -list names the same set for discoverability.
	listOut, err := runIn(clean, "-list")
	if err != nil {
		t.Fatalf("hmglint -list: %v\n%s", err, listOut)
	}
	for _, name := range []string{"determinism", "eventemit", "exhaustive", "hotalloc", "readonlyhooks", "speccover"} {
		if !strings.Contains(listOut, name) {
			t.Fatalf("-list output missing %q:\n%s", name, listOut)
		}
	}

	// -json emits one machine-readable object per finding on stdout
	// (the count line stays on stderr, so stdout is pure JSON).
	jsonCmd := exec.Command(bin, "-json", "./...")
	jsonCmd.Dir = dirty
	var stdout, stderr bytes.Buffer
	jsonCmd.Stdout, jsonCmd.Stderr = &stdout, &stderr
	err = jsonCmd.Run()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 2 {
		t.Fatalf("-json violation exit = %v, want exit status 2\n%s%s", err, stdout.String(), stderr.String())
	}
	sawJSON := false
	for _, line := range strings.Split(strings.TrimSpace(stdout.String()), "\n") {
		var f struct{ Analyzer, Position, Message string }
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("-json emitted a non-JSON line %q: %v", line, err)
		}
		if f.Analyzer == "determinism" &&
			strings.Contains(f.Position, "engine.go") &&
			strings.Contains(f.Message, "time.Now reads the wall clock") {
			sawJSON = true
		}
	}
	if !sawJSON {
		t.Fatalf("-json output missing the determinism finding:\n%s", stdout.String())
	}
}

// TestHmglintVettool drives the go vet unitchecker protocol end to
// end: `go vet -vettool=hmglint` over a throwaway module must relay
// the finding text and the nonzero exit.
func TestHmglintVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmglint")

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module probe\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "engine"), 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package engine\n\nimport \"time\"\n\nfunc Tick() int64 { return time.Now().UnixNano() }\n"
	if err := os.WriteFile(filepath.Join(dir, "engine", "engine.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed a wall-clock read:\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now reads the wall clock") {
		t.Fatalf("vettool finding not relayed by go vet:\n%s", out)
	}
}
