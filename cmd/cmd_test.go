// Package cmd_test smoke-tests the command-line tools end to end: each
// binary is built with the local toolchain and driven through its main
// flows.
package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// build compiles one tool into a temp dir and returns the binary path.
func build(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, "./"+pkg)
	cmd.Dir = ".."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

func TestHmgtraceFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgtrace")
	list := run(t, bin, "list")
	if !strings.Contains(list, "nw-16K") || !strings.Contains(list, "mst") {
		t.Fatalf("list output missing benchmarks:\n%s", list)
	}
	file := filepath.Join(t.TempDir(), "t.hmgt")
	gen := run(t, bin, "gen", "-bench", "overfeat", "-scale", "0.1", "-o", file)
	if !strings.Contains(gen, "wrote") {
		t.Fatalf("gen output: %s", gen)
	}
	if fi, err := os.Stat(file); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file missing: %v", err)
	}
	info := run(t, bin, "info", file)
	if !strings.Contains(info, "overfeat") || !strings.Contains(info, "kernels:   2") {
		t.Fatalf("info output:\n%s", info)
	}
	fig3 := run(t, bin, "fig3", "-bench", "lstm", "-scale", "0.1")
	if !strings.Contains(fig3, "%") {
		t.Fatalf("fig3 output: %s", fig3)
	}
}

func TestHmgsimFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgsim")
	out := run(t, bin, "-bench", "overfeat", "-protocol", "HMG", "-scale", "0.1", "-sms", "4")
	for _, want := range []string{"benchmark:", "cycles:", "L2 hit rate:", "inter-GPU traffic:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hmgsim output missing %q:\n%s", want, out)
		}
	}
	// Unknown protocol errors out.
	if _, err := exec.Command(bin, "-bench", "overfeat", "-protocol", "nope").CombinedOutput(); err == nil {
		t.Fatal("hmgsim accepted unknown protocol")
	}
}

func TestHmgbenchSingleFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI build in -short mode")
	}
	bin := build(t, "cmd/hmgbench")
	out := run(t, bin, "-fig", "cost")
	if !strings.Contains(out, "55.00") {
		t.Fatalf("hmgbench cost output:\n%s", out)
	}
	md := run(t, bin, "-fig", "cost", "-format", "md")
	if !strings.Contains(md, "| bits per entry | 55.00 |") {
		t.Fatalf("markdown output:\n%s", md)
	}
	csv := run(t, bin, "-fig", "cost", "-format", "csv")
	if !strings.Contains(csv, "bits per entry,55.00") {
		t.Fatalf("csv output:\n%s", csv)
	}
	if _, err := exec.Command(bin, "-fig", "nosuch").CombinedOutput(); err == nil {
		t.Fatal("hmgbench accepted unknown figure")
	}
}
