// Command hmglint runs the repo's static-analysis suite
// (internal/lint): determinism, eventemit, exhaustive, hotalloc,
// readonlyhooks, and speccover. It works standalone —
//
//	hmglint ./...
//	hmglint -analyzers determinism,exhaustive ./internal/gsim
//	hmglint -json ./...
//
// — or as a go vet tool:
//
//	go vet -vettool=$(go env GOBIN)/hmglint ./...
//
// Exit status: 0 clean, 1 usage or internal error, 2 findings.
package main

import (
	"os"

	"hmg/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:]))
}
