// Command hmgperf is the reproducible performance harness behind the
// repo's committed BENCH_*.json trajectory: it runs a fixed
// benchmark×protocol matrix at a pinned scale and writes one JSON
// snapshot per invocation (simulated cycles, events, allocs/event,
// ns/event, Mevents/s per cell). Simulated cycles and event counts are
// byte-identical run-to-run and machine-to-machine — the simulator is
// deterministic — so a baseline snapshot doubles as a regression gate:
//
//	hmgperf                              # run matrix, write BENCH_<date>.json
//	hmgperf -o BENCH_baseline.json       # explicit output path
//	hmgperf -against BENCH_baseline.json # compare mode: exit 1 on regression
//
// Compare mode fails hard on any drift in simulated cycles or event
// counts (an optimization changed behavior — the determinism contract
// is broken) and on allocs/event growth beyond a small noise floor (the
// zero-alloc hot path regressed). Wall-clock metrics (ns/event,
// Mevents/s) are advisory only: hmgperf warns past -wall-threshold but
// never fails on them, so the gate stays green on slow or noisy CI
// machines while still recording the trajectory.
//
// -cachedir makes the matrix store-aware: every cell still simulates
// (the wall-clock and allocation windows cannot come from a cache), but
// its results are cross-checked against the persistent campaign store
// (internal/resstore) — the same store `hmgbench -cachedir` fills at
// scale 0.25, since the key spaces coincide — failing hard if a cell's
// cycles or events drift from the stored record, and written back so
// perf runs warm the campaign cache as a side effect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hmg/internal/experiments"
	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/resstore"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

// The pinned matrix: three workloads with distinct sharing behavior
// (dense ML, adaptive-mesh HPC, irregular graph) under the software
// hierarchical, flat hardware, and hierarchical hardware (HMG)
// protocols. Changing the matrix invalidates committed baselines, so it
// is code, not flags.
var (
	matrixBenches   = []string{"lstm", "MiniAMR", "bfs"}
	matrixProtocols = []proto.Kind{proto.SWHier, proto.NHCC, proto.HMG}
)

// pinned matrix scale: large enough that steady-state behavior
// dominates, small enough for a CI tier.
const matrixScale = 0.25

// Snapshot is one BENCH_*.json file.
type Snapshot struct {
	Schema    string  `json:"schema"`
	Created   string  `json:"created"`
	GoVersion string  `json:"go_version"`
	Scale     float64 `json:"scale"`
	SMsPerGPM int     `json:"sms_per_gpm"`
	// Topo is the machine shape ("GxM") the matrix ran on. Snapshots
	// from before the field existed are read as the then-only 4x4 shape.
	Topo string `json:"topo,omitempty"`
	Runs []Run  `json:"runs"`
}

// defaultTopo is the shape assumed for baselines written before the
// topo field existed.
const defaultTopo = "4x4"

// topoLabel normalizes a snapshot's shape for comparison.
func topoLabel(s *Snapshot) string {
	if s.Topo == "" {
		return defaultTopo
	}
	return s.Topo
}

// Run is one cell of the matrix. Cycles, Events, and Allocs are
// deterministic; the wall-clock fields vary by machine and are
// advisory.
type Run struct {
	Bench    string `json:"bench"`
	Protocol string `json:"protocol"`

	Cycles uint64 `json:"cycles"`
	Events uint64 `json:"events"`
	Allocs uint64 `json:"allocs"`

	AllocsPerEvent float64 `json:"allocs_per_event"`
	WallMS         float64 `json:"wall_ms"`
	NsPerEvent     float64 `json:"ns_per_event"`
	MEventsPerSec  float64 `json:"mevents_per_sec"`
}

func main() {
	out := flag.String("o", "", "output file (default BENCH_<date>.json; empty in compare mode)")
	against := flag.String("against", "", "baseline BENCH_*.json to compare against (compare mode)")
	allocTol := flag.Float64("alloc-threshold", 0.02, "relative allocs/event growth tolerated before failing")
	wallTol := flag.Float64("wall-threshold", 1.5, "ns/event ratio over baseline that triggers an advisory warning")
	sms := flag.Int("sms", 8, "modeled SMs per GPM (must match the baseline)")
	topoFlag := flag.String("topo", "", topo.SpecFlagUsage+" (must match the baseline)")
	cachedir := flag.String("cachedir", "", "campaign result store to cross-check cells against and write them back to")
	flag.Parse()

	shape, err := topo.ParseSpec(*topoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmgperf: %v\n", err)
		os.Exit(2)
	}
	var store *resstore.Store
	if *cachedir != "" {
		store, err = experiments.OpenStore(*cachedir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmgperf: %v\n", err)
			os.Exit(2)
		}
	}
	snap, err := runMatrix(*sms, shape, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmgperf: %v\n", err)
		os.Exit(2)
	}

	path := *out
	if path == "" && *against == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	if path != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmgperf: %v\n", err)
			os.Exit(2)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hmgperf: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d runs)\n", path, len(snap.Runs))
	}

	if *against != "" {
		base, err := readSnapshot(*against)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmgperf: %v\n", err)
			os.Exit(2)
		}
		if failed := compare(base, snap, *allocTol, *wallTol); failed {
			os.Exit(1)
		}
	}
}

// runMatrix executes every matrix cell once and measures it. Each cell
// isolates simulation allocations by reading memory statistics after
// system construction and trace generation (setup) and again after the
// run. With a store attached, each cell is cross-checked against and
// written back to the campaign result store.
func runMatrix(sms int, shape topo.Spec, store *resstore.Store) (*Snapshot, error) {
	r, err := experiments.NewRunner(experiments.Options{Scale: matrixScale, SMsPerGPM: sms, Topo: shape})
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{
		Schema:    "hmgperf/v1",
		Created:   time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Scale:     matrixScale,
		SMsPerGPM: sms,
		Topo:      r.Config(proto.HMG, experiments.Variant{}).Topo.String(),
	}
	for _, abbrev := range matrixBenches {
		bench, err := workload.Get(abbrev)
		if err != nil {
			return nil, err
		}
		for _, kind := range matrixProtocols {
			cell, err := runCell(r, bench, kind, store)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "  %-10s %-12v %10d cycles %9d events  %6.3f allocs/ev  %7.1f ns/ev  %5.2f Mev/s\n",
				cell.Bench, cell.Protocol, cell.Cycles, cell.Events,
				cell.AllocsPerEvent, cell.NsPerEvent, cell.MEventsPerSec)
			snap.Runs = append(snap.Runs, cell)
		}
	}
	return snap, nil
}

func runCell(r *experiments.Runner, bench workload.Params, kind proto.Kind, store *resstore.Store) (Run, error) {
	cfg := r.Config(kind, experiments.Variant{})
	sys, err := gsim.New(cfg)
	if err != nil {
		return Run{}, err
	}
	tr := bench.Generate(cfg.Topo, matrixScale)

	// Setup (system construction, trace generation) is excluded from the
	// allocation and wall-clock windows: the gate tracks the steady-state
	// simulation loop, not one-time warm-up.
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := sys.Run(tr)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Run{}, err
	}

	allocs := after.Mallocs - before.Mallocs
	cell := Run{
		Bench:    bench.Abbrev,
		Protocol: kind.String(),
		Cycles:   uint64(res.Cycles),
		Events:   res.EventsExecuted,
		Allocs:   allocs,
		WallMS:   float64(wall.Nanoseconds()) / 1e6,
	}
	if res.EventsExecuted > 0 {
		cell.AllocsPerEvent = float64(allocs) / float64(res.EventsExecuted)
		cell.NsPerEvent = float64(wall.Nanoseconds()) / float64(res.EventsExecuted)
	}
	if wall > 0 {
		cell.MEventsPerSec = float64(res.EventsExecuted) / wall.Seconds() / 1e6
	}
	if store != nil {
		// The matrix runs the campaign's own key space (zero variant,
		// base shape), so a stored record — written by hmgbench or a
		// previous hmgperf — must agree exactly with this fresh run.
		k := r.StoreKey(bench, kind, experiments.Variant{}, topo.Spec{})
		if prev, ok := store.Get(k); ok {
			if uint64(prev.Cycles) != cell.Cycles || prev.EventsExecuted != cell.Events {
				return Run{}, fmt.Errorf("%s/%v: fresh run (%d cycles, %d events) disagrees with store record %s (%d cycles, %d events) — determinism broke or the model-version stamp is stale",
					cell.Bench, kind, cell.Cycles, cell.Events, k, prev.Cycles, prev.EventsExecuted)
			}
		}
		if err := store.Put(k, res); err != nil {
			return Run{}, err
		}
	}
	return cell, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != "hmgperf/v1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, s.Schema)
	}
	return &s, nil
}

// compare gates the current snapshot against a baseline. Hard failures:
// missing cells, any cycle or event-count drift (the optimization
// changed simulated behavior), and allocs/event growth beyond allocTol
// (plus a 0.01 absolute noise floor). Advisory: ns/event beyond wallTol
// times the baseline.
func compare(base, cur *Snapshot, allocTol, wallTol float64) (failed bool) {
	if base.Scale != cur.Scale || base.SMsPerGPM != cur.SMsPerGPM {
		fmt.Fprintf(os.Stderr, "FAIL: matrix mismatch: baseline scale=%v sms=%d, current scale=%v sms=%d\n",
			base.Scale, base.SMsPerGPM, cur.Scale, cur.SMsPerGPM)
		return true
	}
	if topoLabel(base) != topoLabel(cur) {
		fmt.Fprintf(os.Stderr, "FAIL: topology mismatch: baseline ran at %s, current at %s — cycles are not comparable across machine shapes\n",
			topoLabel(base), topoLabel(cur))
		return true
	}
	current := make(map[string]Run, len(cur.Runs))
	for _, r := range cur.Runs {
		current[r.Bench+"/"+r.Protocol] = r
	}
	for _, want := range base.Runs {
		key := want.Bench + "/" + want.Protocol
		got, ok := current[key]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL: %s: in baseline but not in current matrix\n", key)
			failed = true
			continue
		}
		if got.Cycles != want.Cycles {
			fmt.Fprintf(os.Stderr, "FAIL: %s: simulated cycles drifted: baseline %d, current %d\n",
				key, want.Cycles, got.Cycles)
			failed = true
		}
		if got.Events != want.Events {
			fmt.Fprintf(os.Stderr, "FAIL: %s: event count drifted: baseline %d, current %d\n",
				key, want.Events, got.Events)
			failed = true
		}
		if got.AllocsPerEvent > want.AllocsPerEvent*(1+allocTol)+0.01 {
			fmt.Fprintf(os.Stderr, "FAIL: %s: allocs/event regressed: baseline %.4f, current %.4f\n",
				key, want.AllocsPerEvent, got.AllocsPerEvent)
			failed = true
		}
		if want.NsPerEvent > 0 && got.NsPerEvent > want.NsPerEvent*wallTol {
			fmt.Fprintf(os.Stderr, "WARN: %s: ns/event %.1f vs baseline %.1f (advisory only)\n",
				key, got.NsPerEvent, want.NsPerEvent)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "hmgperf: regression against", baseLabel(base))
	} else {
		fmt.Printf("hmgperf: %d cells match %s (cycles, events, allocs/event)\n",
			len(base.Runs), baseLabel(base))
	}
	return failed
}

func baseLabel(s *Snapshot) string {
	if s.Created != "" {
		return "baseline of " + s.Created
	}
	return "baseline"
}
