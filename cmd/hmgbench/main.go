// Command hmgbench regenerates the paper's tables and figures on the
// simulator.
//
// Usage:
//
//	hmgbench -fig 8                 # one figure
//	hmgbench -fig all               # everything (the EXPERIMENTS.md run)
//	hmgbench -fig 12 -scale 0.5 -v  # faster sweep with progress output
//	hmgbench -fig all -jobs 8       # prewarm runs on 8 parallel workers
//	hmgbench -fig all -cachedir ~/.cache/hmg  # persistent result store
//
// Figures: 2, 3, 7, 8, 9, 10, 11, 12, 13, 14, granularity, downgrade,
// writeback, gpmscope, scaling, toposcale, carve, locality, mca,
// tableII, tableIII, cost.
//
// The figure set is defined by the experiments.Figures registry; every
// simulation is memoized by (benchmark, protocol, variant), so -jobs
// only changes wall-clock time — table output is byte-identical at any
// parallelism.
//
// -cachedir backs the memo cache with an on-disk content-addressed
// store (internal/resstore): runs already on disk under the current
// model version are served without simulating, so re-running a
// campaign after a one-figure change only simulates the delta — and
// because the simulator is deterministic, warm output is byte-identical
// to cold. Damaged or stale records are re-simulated, never trusted.
// -storeversion prints the model-version stamp that scopes the store
// (CI keys its store cache on it) and exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"hmg/internal/experiments"
	"hmg/internal/topo"
)

func main() {
	names := strings.Join(experiments.FigureNames(), ",")
	fig := flag.String("fig", "all", "figure to regenerate ("+names+",all)")
	scale := flag.Float64("scale", 1.0, "workload scale in (0,1]")
	sms := flag.Int("sms", 8, "modeled SMs per GPM")
	topoFlag := flag.String("topo", "", topo.SpecFlagUsage+" (reshapes the campaign's base machine)")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel simulation workers for the campaign prewarm")
	cachedir := flag.String("cachedir", "", "directory of the persistent content-addressed result store (empty disables the disk tier)")
	storeVersion := flag.Bool("storeversion", false, "print the campaign store's model-version stamp and exit")
	verbose := flag.Bool("v", false, "log each simulation run and the campaign summary")
	format := flag.String("format", "text", "output format: text, csv, or md")
	flag.Parse()

	if *storeVersion {
		fmt.Println(experiments.ModelVersion())
		return
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.SMsPerGPM = *sms
	opts.Jobs = *jobs
	spec, err := topo.ParseSpec(*topoFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmgbench: %v\n", err)
		os.Exit(2)
	}
	opts.Topo = spec
	if *cachedir != "" {
		st, err := experiments.OpenStore(*cachedir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmgbench: %v\n", err)
			os.Exit(2)
		}
		opts.Store = st
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	r, err := experiments.NewRunner(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hmgbench: %v\n", err)
		os.Exit(2)
	}

	want := strings.ToLower(*fig)
	var selected []experiments.Figure
	for _, f := range experiments.Figures() {
		if want == "all" || want == strings.ToLower(f.Name) {
			selected = append(selected, f)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "hmgbench: unknown figure %q (known: %s,all)\n", *fig, names)
		os.Exit(2)
	}

	// Prewarm the union of the selected figures' runs across the worker
	// pool; generation below then reads the warm cache in order.
	if err := r.Prewarm(experiments.PlanUnion(selected)); err != nil {
		fmt.Fprintf(os.Stderr, "hmgbench: prewarm: %v\n", err)
		os.Exit(1)
	}

	for _, f := range selected {
		t, err := f.Gen(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmgbench: figure %s: %v\n", f.Name, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Println(t.CSV())
		case "md":
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
	}
	if *verbose {
		s := r.Summary()
		mevps := 0.0
		if s.RunWall > 0 {
			mevps = float64(s.Events) / s.RunWall.Seconds() / 1e6
		}
		disk := ""
		if *cachedir != "" {
			disk = fmt.Sprintf(", %d disk hits, %d disk misses, %d disk writes", s.DiskHits, s.DiskMisses, s.DiskWrites)
		}
		fmt.Fprintf(os.Stderr, "campaign: %d unique runs, %d memo hits%s, %.1f Mcycles simulated, %.1f M events/s of run wall (%.1fs summed)\n",
			s.UniqueRuns, s.MemoHits, disk, float64(s.SimCycles)/1e6, mevps, s.RunWall.Seconds())
	}
}
