// Command hmgbench regenerates the paper's tables and figures on the
// simulator.
//
// Usage:
//
//	hmgbench -fig 8                 # one figure
//	hmgbench -fig all               # everything (the EXPERIMENTS.md run)
//	hmgbench -fig 12 -scale 0.5 -v  # faster sweep with progress output
//
// Figures: 2, 3, 7, 8, 9, 10, 11, 12, 13, 14, granularity, tableII,
// tableIII, cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hmg/internal/experiments"
	"hmg/internal/report"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2,3,7,8,9,10,11,12,13,14,granularity,downgrade,writeback,gpmscope,scaling,carve,locality,mca,tableII,tableIII,cost,all)")
	scale := flag.Float64("scale", 1.0, "workload scale in (0,1]")
	sms := flag.Int("sms", 8, "modeled SMs per GPM")
	verbose := flag.Bool("v", false, "log each simulation run")
	format := flag.String("format", "text", "output format: text, csv, or md")
	flag.Parse()

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.SMsPerGPM = *sms
	if *verbose {
		opts.Log = os.Stderr
	}
	r := experiments.NewRunner(opts)

	type gen struct {
		name string
		run  func(*experiments.Runner) (*report.Table, error)
	}
	gens := []gen{
		{"tableII", func(r *experiments.Runner) (*report.Table, error) { return experiments.TableII(r), nil }},
		{"tableIII", func(r *experiments.Runner) (*report.Table, error) { return experiments.TableIII(r), nil }},
		{"cost", func(r *experiments.Runner) (*report.Table, error) { return experiments.HardwareCost(r), nil }},
		{"3", experiments.Fig3},
		{"7", experiments.Fig7},
		{"2", experiments.Fig2},
		{"8", experiments.Fig8},
		{"9", experiments.Fig9},
		{"10", experiments.Fig10},
		{"11", experiments.Fig11},
		{"12", experiments.Fig12},
		{"13", experiments.Fig13},
		{"14", experiments.Fig14},
		{"granularity", experiments.Granularity},
		{"downgrade", experiments.DowngradeAblation},
		{"writeback", experiments.WriteBackAblation},
		{"gpmscope", experiments.GPMScopeStudy},
		{"scaling", experiments.ScalingStudy},
		{"carve", experiments.RelatedProtocols},
		{"locality", experiments.LocalityAblation},
		{"mca", experiments.MCAStudy},
	}
	want := strings.ToLower(*fig)
	ran := false
	for _, g := range gens {
		if want != "all" && want != strings.ToLower(g.name) {
			continue
		}
		ran = true
		t, err := g.run(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hmgbench: figure %s: %v\n", g.name, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			fmt.Println(t.CSV())
		case "md":
			fmt.Println(t.Markdown())
		default:
			fmt.Println(t.String())
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "hmgbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}
