// Command hmgtrace generates, inspects, and profiles workload traces.
//
// Usage:
//
//	hmgtrace list                         # Table III benchmark inventory
//	hmgtrace gen -bench lstm -o lstm.hmgt # write a binary trace
//	hmgtrace info lstm.hmgt               # summarize a trace file
//	hmgtrace fig3 -bench lstm             # inter-GPU redundancy profile
package main

import (
	"flag"
	"fmt"
	"os"

	"hmg"
	"hmg/internal/trace"
	"hmg/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		list()
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "fig3":
		fig3(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hmgtrace {list | gen -bench NAME -o FILE | info FILE | fig3 -bench NAME} [-scale S]")
	os.Exit(2)
}

func list() {
	fmt.Printf("%-12s  %-22s  %-10s  %-8s  %s\n", "abbrev", "name", "footprint", "kernels", "sync")
	for _, p := range workload.Suite() {
		sync := "-"
		if p.SyncScope != trace.ScopeNone {
			sync = p.SyncScope.String()
		}
		fmt.Printf("%-12s  %-22s  %-10s  %-8d  %s\n", p.Abbrev, p.Name, p.TableIIIFootprint, p.Kernels, sync)
	}
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark abbreviation")
	out := fs.String("o", "", "output file")
	scale := fs.Float64("scale", 1.0, "workload scale")
	fs.Parse(args)
	if *bench == "" || *out == "" {
		usage()
	}
	p, err := workload.Get(*bench)
	if err != nil {
		fatal(err)
	}
	cfg := hmg.DefaultConfig(hmg.ProtocolHMG)
	tr := p.Generate(cfg.Topo, *scale)
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := trace.Encode(f, tr); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d ops, %d kernels, %d placement hints\n", *out, tr.Ops(), len(tr.Kernels), len(tr.Placement))
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	tr, err := trace.Decode(f)
	if err != nil {
		fatal(err)
	}
	cfg := hmg.DefaultConfig(hmg.ProtocolHMG)
	st := workload.Summarize(tr, cfg.Topo)
	fmt.Printf("name:      %s\n", tr.Name)
	fmt.Printf("footprint: %d bytes\n", tr.FootprintBytes)
	fmt.Printf("kernels:   %d\n", st.Kernels)
	fmt.Printf("ops:       %d (%d loads, %d stores, %d atomics, %d sync)\n",
		st.Ops, st.Loads, st.Stores, st.Atomics, st.Syncs)
	fmt.Printf("placement: %d pages hinted\n", len(tr.Placement))
}

func fig3(args []string) {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	bench := fs.String("bench", "", "benchmark abbreviation")
	scale := fs.Float64("scale", 1.0, "workload scale")
	fs.Parse(args)
	if *bench == "" {
		usage()
	}
	p, err := workload.Get(*bench)
	if err != nil {
		fatal(err)
	}
	cfg := hmg.DefaultConfig(hmg.ProtocolHMG)
	tr := p.Generate(cfg.Topo, *scale)
	red := workload.InterGPURedundancy(tr, cfg.Topo)
	fmt.Printf("%s: %.1f%% of inter-GPU loads target lines also accessed by a sibling GPM\n", p.Abbrev, 100*red)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hmgtrace: %v\n", err)
	os.Exit(1)
}
