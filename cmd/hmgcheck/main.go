// Command hmgcheck is the protocol conformance sweep: it runs seeded
// litmus cases and the full Table III benchmark suite under every
// coherence protocol with the runtime invariant checker attached, and
// exits non-zero on any oracle or invariant violation.
//
// Usage:
//
//	hmgcheck                      # full sweep: litmus seeds + benchmarks × protocols
//	hmgcheck -seeds 512           # more litmus cases
//	hmgcheck -bench nw-16K        # restrict the benchmark tier
//	hmgcheck -protocol HMG        # restrict both tiers to one protocol
//	hmgcheck -mutate 1 -seeds 64  # self-test: inject a Table I bug, expect failures
//
// The -mutate flag injects deliberate protocol bugs (proto.Mutation
// bits) and is how the harness proves it has teeth: a mutated sweep
// must fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"hmg"
	"hmg/internal/check"
	"hmg/internal/consist"
	"hmg/internal/gsim"
	"hmg/internal/proto"
	"hmg/internal/proto/spec"
	"hmg/internal/topo"
	"hmg/internal/workload"
)

type task struct {
	name string
	run  func() error
}

func main() {
	seeds := flag.Int("seeds", 128, "number of seeded litmus cases")
	scale := flag.Float64("scale", 0.25, "benchmark workload scale in (0,1]")
	protoName := flag.String("protocol", "", "restrict the sweep to one protocol")
	benchName := flag.String("bench", "", "restrict the benchmark tier to one benchmark")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel workers")
	topoFlag := flag.String("topo", "", topo.SpecFlagUsage+" (reshapes the benchmark tier's conformance machine)")
	mutate := flag.Int("mutate", 0, "inject Table I mutation bits (self-test; a clean run must fail)")
	verbose := flag.Bool("v", false, "print every case, not just failures")
	flag.Parse()

	shape, err := topo.ParseSpec(*topoFlag)
	if err != nil {
		fatal(err)
	}

	var only proto.Kind
	restrict := *protoName != ""
	if restrict {
		k, err := hmg.ParseProtocol(*protoName)
		if err != nil {
			fatal(err)
		}
		only = k
	}
	if *benchName != "" {
		if _, err := workload.Get(*benchName); err != nil {
			fatal(err)
		}
	}
	mu := proto.Mutation(*mutate)

	var tasks []task
	for seed := uint64(0); seed < uint64(*seeds); seed++ {
		cs := check.CaseFromSeed(seed)
		if restrict && cs.Protocol != only {
			continue
		}
		tasks = append(tasks, task{
			name: "litmus " + cs.Name(),
			run:  func() error { return cs.RunMutated(mu) },
		})
	}
	for _, k := range hmg.Protocols() {
		if restrict && k != only {
			continue
		}
		for _, name := range workload.Names() {
			if *benchName != "" && name != *benchName {
				continue
			}
			k, name := k, name
			tasks = append(tasks, task{
				name: fmt.Sprintf("bench %v/%s", k, name),
				run:  func() error { return runBench(k, name, *scale, mu, shape) },
			})
		}
	}

	// Spec tier: exhaustive small-model enumeration plus the spec↔DirCtrl
	// differ, per table instantiation. The -mutate bits reach the differ's
	// implementation side, so a mutated sweep fails here even when no
	// litmus or benchmark trace happens to exercise the broken arm.
	for _, tab := range []spec.Table{spec.NHCC(), spec.HMG()} {
		if restrict && only.String() != tab.Name {
			continue
		}
		tab := tab
		tasks = append(tasks, task{
			name: "spec enumerate " + tab.Name,
			run: func() error {
				rep, err := spec.Enumerate(tab)
				if err != nil {
					return err
				}
				return rep.Err()
			},
		})
		tasks = append(tasks, task{
			name: "spec diff " + tab.Name,
			run: func() error {
				cfg := spec.DefaultDiffConfig(tab)
				cfg.Mutation = mu
				divs, err := spec.Diff(cfg)
				if err != nil {
					return err
				}
				if len(divs) > 0 {
					return fmt.Errorf("%d divergences from Table I spec, first: %v", len(divs), divs[0])
				}
				return nil
			},
		})
	}

	failures := sweep(tasks, *jobs, *verbose)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "hmgcheck: %d/%d cases FAILED\n", len(failures), len(tasks))
		os.Exit(1)
	}
	fmt.Printf("hmgcheck: %d cases passed (%d litmus, %d bench, %d spec)\n",
		len(tasks), countPrefix(tasks, "litmus "), countPrefix(tasks, "bench "), countPrefix(tasks, "spec "))
}

// runBench executes one benchmark under one protocol on the conformance
// machine (reshaped by -topo) with the invariant checker attached.
func runBench(k proto.Kind, name string, scale float64, mu proto.Mutation, sp topo.Spec) error {
	cfg := consist.SmallConfig(k)
	cfg.Topo = sp.Apply(cfg.Topo)
	cfg.Mutation = mu
	sys, err := gsim.New(cfg)
	if err != nil {
		return err
	}
	ck := check.Attach(sys)
	p, err := workload.Get(name)
	if err != nil {
		return err
	}
	if _, err := sys.Run(p.Generate(cfg.Topo, scale)); err != nil {
		return err
	}
	return ck.Err()
}

// sweep runs the tasks on a worker pool and returns the failures in
// task order (output is deterministic regardless of -jobs).
func sweep(tasks []task, jobs int, verbose bool) []string {
	if jobs < 1 {
		jobs = 1
	}
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				errs[i] = tasks[i].run()
			}
		}()
	}
	for i := range tasks {
		work <- i
	}
	close(work)
	wg.Wait()

	var failures []string
	for i, t := range tasks {
		if errs[i] != nil {
			failures = append(failures, t.name)
			fmt.Fprintf(os.Stderr, "FAIL %s\n     %v\n", t.name, errs[i])
		} else if verbose {
			fmt.Printf("ok   %s\n", t.name)
		}
	}
	sort.Strings(failures)
	return failures
}

func countPrefix(tasks []task, prefix string) int {
	n := 0
	for _, t := range tasks {
		if strings.HasPrefix(t.name, prefix) {
			n++
		}
	}
	return n
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "hmgcheck: %v\n", err)
	os.Exit(1)
}
