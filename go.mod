module hmg

go 1.22
