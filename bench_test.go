package hmg

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper. Each iteration regenerates the corresponding result on a
// fresh Runner at a reduced scale (the cmd/hmgbench tool runs the
// full-scale versions recorded in EXPERIMENTS.md). The benchmarks
// report simulator throughput (simulated cycles and events per second
// of wall time) alongside Go's usual metrics.

import (
	"testing"

	"hmg/internal/experiments"
	"hmg/internal/report"
)

const benchScale = 0.25

func benchRunner() *experiments.Runner {
	r, err := experiments.NewRunner(experiments.Options{Scale: benchScale, SMsPerGPM: 8})
	if err != nil {
		panic(err)
	}
	return r
}

// runFig times memo-cold figure regeneration only: runner construction
// happens with the timer stopped, so b.N iterations measure simulation
// plus table generation, and the simulator-throughput metrics promised
// above (events/s, ns/event) are derived from the runner's campaign
// accounting and reported alongside Go's defaults.
func runFig(b *testing.B, fig func(*experiments.Runner) (*report.Table, error)) {
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := benchRunner()
		b.StartTimer()
		tab, err := fig(r)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
		events += r.Summary().Events
	}
	b.StopTimer()
	if events > 0 && b.Elapsed() > 0 {
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(events), "ns/event")
	}
}

// BenchmarkFig2 regenerates the remote-caching motivation study.
func BenchmarkFig2(b *testing.B) { runFig(b, experiments.Fig2) }

// BenchmarkFig3 regenerates the inter-GPU redundancy profile.
func BenchmarkFig3(b *testing.B) { runFig(b, experiments.Fig3) }

// BenchmarkFig7 regenerates the simulator calibration sweep.
func BenchmarkFig7(b *testing.B) { runFig(b, experiments.Fig7) }

// BenchmarkFig8 regenerates the main five-protocol comparison.
func BenchmarkFig8(b *testing.B) { runFig(b, experiments.Fig8) }

// BenchmarkFig9 regenerates the store-invalidation profile.
func BenchmarkFig9(b *testing.B) { runFig(b, experiments.Fig9) }

// BenchmarkFig10 regenerates the eviction-invalidation profile.
func BenchmarkFig10(b *testing.B) { runFig(b, experiments.Fig10) }

// BenchmarkFig11 regenerates the invalidation-bandwidth profile.
func BenchmarkFig11(b *testing.B) { runFig(b, experiments.Fig11) }

// BenchmarkFig12 regenerates the inter-GPU bandwidth sensitivity sweep.
func BenchmarkFig12(b *testing.B) { runFig(b, experiments.Fig12) }

// BenchmarkFig13 regenerates the L2 capacity sensitivity sweep.
func BenchmarkFig13(b *testing.B) { runFig(b, experiments.Fig13) }

// BenchmarkFig14 regenerates the directory size sensitivity sweep.
func BenchmarkFig14(b *testing.B) { runFig(b, experiments.Fig14) }

// BenchmarkGranularity regenerates the §VII-B granularity study.
func BenchmarkGranularity(b *testing.B) { runFig(b, experiments.Granularity) }

// BenchmarkTableIII regenerates the benchmark inventory (trace
// generation only).
func BenchmarkTableIII(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r := benchRunner()
		b.StartTimer()
		if tab := experiments.TableIII(r); len(tab.Rows) != 20 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (the
// Fig. 7 wall-clock axis): simulated cycles and events per wall second
// on one mid-size workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := DefaultConfig(ProtocolHMG)
	b.ReportAllocs()
	var cycles, events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := NewSystem(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tr, err := GenerateBenchmark("lstm", cfg, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := sys.Run(tr)
		if err != nil {
			b.Fatal(err)
		}
		cycles += uint64(res.Cycles)
		events += res.EventsExecuted
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	if events > 0 {
		b.ReportMetric(b.Elapsed().Seconds()*1e9/float64(events), "ns/event")
	}
}

// BenchmarkDowngradeAblation regenerates the Section IV downgrade-option
// ablation.
func BenchmarkDowngradeAblation(b *testing.B) { runFig(b, experiments.DowngradeAblation) }

// BenchmarkWriteBackAblation regenerates the write-back vs write-through
// design-option ablation.
func BenchmarkWriteBackAblation(b *testing.B) { runFig(b, experiments.WriteBackAblation) }

// BenchmarkGPMScope regenerates the Section VII-D .gpm-scope study.
func BenchmarkGPMScope(b *testing.B) { runFig(b, experiments.GPMScopeStudy) }

// BenchmarkScaling regenerates the Section VII-D GPU-count scaling study.
func BenchmarkScaling(b *testing.B) { runFig(b, experiments.ScalingStudy) }

// BenchmarkRelatedProtocols regenerates the CARVE comparison.
func BenchmarkRelatedProtocols(b *testing.B) { runFig(b, experiments.RelatedProtocols) }

// BenchmarkLocalityAblation regenerates the locality-policy ablation.
func BenchmarkLocalityAblation(b *testing.B) { runFig(b, experiments.LocalityAblation) }

// BenchmarkMCAStudy regenerates the Section III-B multi-copy-atomicity
// cost study.
func BenchmarkMCAStudy(b *testing.B) { runFig(b, experiments.MCAStudy) }
